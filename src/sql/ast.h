#ifndef FLOCK_SQL_AST_H_
#define FLOCK_SQL_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace flock::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,       // SELECT * or COUNT(*)
  kBinary,
  kUnary,
  kFunction,   // scalar or aggregate call, incl. PREDICT(model, ...)
  kCase,       // children: [when1, then1, ..., else?]; see has_else
  kIn,         // children: [needle, option1, option2, ...]
  kBetween,    // children: [value, low, high]
  kCast,
  kIsNull,     // children: [value]; negated => IS NOT NULL
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNotEq,
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kAnd,
  kOr,
  kLike,
};

enum class UnaryOp { kNeg, kNot };

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One node in an expression tree.
///
/// A single struct (rather than a class hierarchy) keeps the rewriting
/// optimizer — including Flock's SQLxML cross-optimizer, which pattern-matches
/// and rebuilds these trees — straightforward: Clone/compare/mutate without
/// visitors.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  storage::Value literal;

  // kColumnRef
  std::string table_name;   // optional qualifier
  std::string column_name;
  int column_index = -1;    // resolved by the planner; -1 = unbound
  storage::DataType resolved_type = storage::DataType::kInt64;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNeg;

  // kFunction
  std::string function_name;  // upper-cased
  bool distinct = false;

  // kCase
  bool has_else = false;

  // kCast
  storage::DataType cast_type = storage::DataType::kInt64;

  // kIsNull
  bool negated = false;  // also reused by NOT IN / NOT BETWEEN / NOT LIKE

  std::vector<ExprPtr> children;

  ExprPtr Clone() const;
  std::string ToString() const;

  /// Structural equality (ignores resolved column indexes).
  bool Equals(const Expr& other) const;

  // -- constructors ---------------------------------------------------------
  static ExprPtr MakeLiteral(storage::Value v);
  static ExprPtr MakeColumnRef(std::string table, std::string column);
  static ExprPtr MakeStar();
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeCast(ExprPtr operand, storage::DataType type);
  static ExprPtr MakeIsNull(ExprPtr operand, bool negated);
};

/// True if `name` is one of COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& upper_name);

/// True if the tree contains an aggregate call.
bool ContainsAggregate(const Expr& e);

/// Invokes `fn` on every node in the tree (pre-order).
void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn);
void VisitExprMutable(Expr* e, const std::function<void(Expr*)>& fn);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kCreateModel,
  kDropModel,
  kExplain,
};

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
};
using StatementPtr = std::unique_ptr<Statement>;

struct TableRef {
  std::string table_name;
  std::string alias;  // empty = none
};

enum class JoinType { kInner, kLeft, kCross };

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr condition;  // null for CROSS
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derive from expression
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement : Statement {
  StatementKind kind() const override { return StatementKind::kSelect; }

  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::optional<TableRef> from;          // SELECT 1 has no FROM
  std::vector<JoinClause> joins;
  ExprPtr where;                         // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                        // may be null
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

struct InsertStatement : Statement {
  StatementKind kind() const override { return StatementKind::kInsert; }

  std::string table_name;
  std::vector<std::string> columns;           // empty = all, in order
  std::vector<std::vector<ExprPtr>> rows;     // VALUES rows (literal exprs)
  std::unique_ptr<SelectStatement> select;    // INSERT ... SELECT
};

struct UpdateStatement : Statement {
  StatementKind kind() const override { return StatementKind::kUpdate; }

  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement : Statement {
  StatementKind kind() const override { return StatementKind::kDelete; }

  std::string table_name;
  ExprPtr where;  // may be null
};

struct CreateTableStatement : Statement {
  StatementKind kind() const override { return StatementKind::kCreateTable; }

  std::string table_name;
  storage::Schema schema;
};

struct DropTableStatement : Statement {
  StatementKind kind() const override { return StatementKind::kDropTable; }

  std::string table_name;
};

/// CREATE MODEL name FROM 'serialized-pipeline-text'
/// Deploys a model as a first-class database object (paper §4.1).
struct CreateModelStatement : Statement {
  StatementKind kind() const override { return StatementKind::kCreateModel; }

  std::string model_name;
  std::string definition;  // serialized ml::Pipeline text
};

struct DropModelStatement : Statement {
  StatementKind kind() const override { return StatementKind::kDropModel; }

  std::string model_name;
};

struct ExplainStatement : Statement {
  StatementKind kind() const override { return StatementKind::kExplain; }

  StatementPtr inner;
  bool analyze = false;  // EXPLAIN ANALYZE: execute and report metrics
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_AST_H_
