#include "sql/physical_planner.h"

#include <utility>

#include "sql/optimizer.h"

namespace flock::sql {

using storage::ColumnDef;
using storage::DataType;
using storage::Schema;

namespace {

/// Extracted equi-join keys: pairs of (left column expr, right column expr),
/// with right-side indexes rebased to the right child's schema.
struct JoinKeys {
  std::vector<ExprPtr> left;
  std::vector<ExprPtr> right;
  std::vector<ExprPtr> residual;  // bound against joined row (left++right)
};

JoinKeys ExtractJoinKeys(const Expr* condition, size_t left_width) {
  JoinKeys keys;
  if (condition == nullptr) return keys;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(condition->Clone());
  for (auto& conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary &&
        conjunct->bin_op == BinaryOp::kEq) {
      Expr* a = conjunct->children[0].get();
      Expr* b = conjunct->children[1].get();
      auto side = [&](const Expr& e) -> int {
        // 0 = left-only, 1 = right-only, -1 = mixed/none.
        bool has_left = false, has_right = false;
        VisitExpr(e, [&](const Expr& node) {
          if (node.kind == ExprKind::kColumnRef) {
            if (node.column_index < static_cast<int>(left_width)) {
              has_left = true;
            } else {
              has_right = true;
            }
          }
        });
        if (has_left && !has_right) return 0;
        if (has_right && !has_left) return 1;
        return -1;
      };
      auto rebase_right = [&](Expr* e) {
        VisitExprMutable(e, [&](Expr* node) {
          if (node->kind == ExprKind::kColumnRef) {
            node->column_index -= static_cast<int>(left_width);
          }
        });
      };
      int sa = side(*a);
      int sb = side(*b);
      if (sa == 0 && sb == 1) {
        keys.left.push_back(std::move(conjunct->children[0]));
        keys.right.push_back(std::move(conjunct->children[1]));
        rebase_right(keys.right.back().get());
        continue;
      }
      if (sa == 1 && sb == 0) {
        keys.left.push_back(std::move(conjunct->children[1]));
        keys.right.push_back(std::move(conjunct->children[0]));
        rebase_right(keys.right.back().get());
        continue;
      }
    }
    keys.residual.push_back(std::move(conjunct));
  }
  return keys;
}

/// Replaces every subtree of `*e` structurally equal to one of `calls` with
/// a column reference to the corresponding appended score column.
void ReplaceScoringCalls(ExprPtr* e, const std::vector<ExprPtr>& calls,
                         size_t base, const std::vector<DataType>& types) {
  for (size_t i = 0; i < calls.size(); ++i) {
    if ((*e)->Equals(*calls[i])) {
      auto ref = std::make_unique<Expr>();
      ref->kind = ExprKind::kColumnRef;
      ref->column_name = calls[i]->ToString();
      ref->column_index = static_cast<int>(base + i);
      ref->resolved_type = types[i];
      *e = std::move(ref);
      return;
    }
  }
  for (auto& c : (*e)->children) {
    if (c) ReplaceScoringCalls(&c, calls, base, types);
  }
}

/// Maps a scan-output column index through the scan's projection to the
/// underlying table column index; -1 when out of range.
int ScanOutputToTableColumn(const TableScanOp& scan, int output_index) {
  if (output_index < 0) return -1;
  if (scan.projection.empty()) {
    if (static_cast<size_t>(output_index) >=
        scan.table->schema().num_columns()) {
      return -1;
    }
    return output_index;
  }
  if (static_cast<size_t>(output_index) >= scan.projection.size()) return -1;
  return static_cast<int>(scan.projection[static_cast<size_t>(output_index)]);
}

bool NumericLiteral(const Expr& e, double* out) {
  if (e.kind != ExprKind::kLiteral || e.literal.is_null() ||
      e.literal.type() == DataType::kString) {
    return false;
  }
  *out = e.literal.AsDouble();
  return true;
}

/// Collects prune-friendly conjuncts of the filter predicate that sits
/// directly above `scan` and resolves them to table column indexes. Only
/// shapes whose zone-map rejection is exact are accepted (column CMP
/// numeric literal, non-negated BETWEEN, IS [NOT] NULL); everything else
/// is simply not pushed — the Filter above re-checks every row either way.
void AttachPruneConjuncts(TableScanOp* scan, const Expr& predicate) {
  std::vector<ExprPtr> conjuncts = SplitConjuncts(predicate.Clone());
  for (const auto& conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kIsNull) {
      const Expr* arg = conjunct->children[0].get();
      if (arg->kind != ExprKind::kColumnRef) continue;
      int table_col = ScanOutputToTableColumn(*scan, arg->column_index);
      if (table_col < 0) continue;
      ScanPruneConjunct out;
      out.kind = conjunct->negated ? ScanPruneConjunct::Kind::kIsNotNull
                                   : ScanPruneConjunct::Kind::kIsNull;
      out.table_column = static_cast<size_t>(table_col);
      scan->prune_conjuncts.push_back(out);
      continue;
    }
    if (conjunct->kind == ExprKind::kBetween && !conjunct->negated) {
      const Expr* arg = conjunct->children[0].get();
      double lo = 0.0, hi = 0.0;
      if (arg->kind != ExprKind::kColumnRef ||
          !NumericLiteral(*conjunct->children[1], &lo) ||
          !NumericLiteral(*conjunct->children[2], &hi)) {
        continue;
      }
      int table_col = ScanOutputToTableColumn(*scan, arg->column_index);
      if (table_col < 0) continue;
      ScanPruneConjunct ge;
      ge.kind = ScanPruneConjunct::Kind::kCompare;
      ge.table_column = static_cast<size_t>(table_col);
      ge.op = BinaryOp::kGtEq;
      ge.literal = lo;
      scan->prune_conjuncts.push_back(ge);
      ScanPruneConjunct le = ge;
      le.op = BinaryOp::kLtEq;
      le.literal = hi;
      scan->prune_conjuncts.push_back(le);
      continue;
    }
    if (conjunct->kind != ExprKind::kBinary) continue;
    BinaryOp op = conjunct->bin_op;
    if (op != BinaryOp::kLt && op != BinaryOp::kLtEq && op != BinaryOp::kGt &&
        op != BinaryOp::kGtEq && op != BinaryOp::kEq) {
      continue;
    }
    const Expr* a = conjunct->children[0].get();
    const Expr* b = conjunct->children[1].get();
    double literal = 0.0;
    const Expr* col = nullptr;
    if (a->kind == ExprKind::kColumnRef && NumericLiteral(*b, &literal)) {
      col = a;
    } else if (b->kind == ExprKind::kColumnRef &&
               NumericLiteral(*a, &literal)) {
      col = b;
      // literal OP column: flip to column OP' literal.
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLtEq: op = BinaryOp::kGtEq; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGtEq: op = BinaryOp::kLtEq; break;
        default: break;
      }
    } else {
      continue;
    }
    int table_col = ScanOutputToTableColumn(*scan, col->column_index);
    if (table_col < 0) continue;
    ScanPruneConjunct out;
    out.kind = ScanPruneConjunct::Kind::kCompare;
    out.table_column = static_cast<size_t>(table_col);
    out.op = op;
    out.literal = literal;
    scan->prune_conjuncts.push_back(out);
  }
}

}  // namespace

void PhysicalPlanner::CollectScoringCalls(const Expr& e,
                                          std::vector<ExprPtr>* calls) const {
  if (e.kind == ExprKind::kFunction &&
      registry_->IsScoringFunction(e.function_name)) {
    for (const auto& existing : *calls) {
      if (existing->Equals(e)) return;
    }
    calls->push_back(e.Clone());
    return;  // maximal subtree: don't hoist nested calls separately
  }
  for (const auto& c : e.children) {
    if (c) CollectScoringCalls(*c, calls);
  }
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::InsertPredictScore(
    PhysicalOperatorPtr child, std::vector<ExprPtr> calls) const {
  Schema schema = child->output_schema();
  for (const auto& call : calls) {
    FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                           registry_->Lookup(call->function_name));
    schema.AddColumn(ColumnDef{call->ToString(), fn->return_type, true});
  }
  return PhysicalOperatorPtr(std::make_unique<PredictScoreOp>(
      std::move(child), std::move(calls), std::move(schema)));
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::Lower(
    const LogicalPlan& plan) const {
  switch (plan.kind) {
    case PlanKind::kScan:
      return PhysicalOperatorPtr(std::make_unique<TableScanOp>(
          plan.table_name, plan.table, plan.projection, plan.output_schema));
    case PlanKind::kFilter:
      return LowerFilter(plan);
    case PlanKind::kProject:
      return LowerProject(plan);
    case PlanKind::kJoin:
      return LowerJoin(plan);
    case PlanKind::kAggregate:
      return LowerAggregate(plan);
    case PlanKind::kSort: {
      FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child,
                             Lower(*plan.children[0]));
      std::vector<SortKey> keys;
      keys.reserve(plan.sort_keys.size());
      for (const auto& k : plan.sort_keys) {
        keys.push_back(SortKey{k.expr->Clone(), k.ascending});
      }
      return PhysicalOperatorPtr(
          std::make_unique<SortOp>(std::move(child), std::move(keys)));
    }
    case PlanKind::kDistinct: {
      FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child,
                             Lower(*plan.children[0]));
      return PhysicalOperatorPtr(
          std::make_unique<DistinctOp>(std::move(child)));
    }
    case PlanKind::kLimit: {
      FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child,
                             Lower(*plan.children[0]));
      return PhysicalOperatorPtr(std::make_unique<LimitOp>(
          std::move(child), plan.limit, plan.offset));
    }
  }
  return Status::Internal("unknown logical plan kind");
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::LowerFilter(
    const LogicalPlan& plan) const {
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child, Lower(*plan.children[0]));
  ExprPtr predicate = plan.predicate->Clone();

  // Filter directly over a scan: hand the scan the conjuncts it can test
  // against zone maps. Done before any scoring rewrite so the original
  // column references are still bound against the scan's output.
  if (child->kind() == PhysicalOperator::Kind::kTableScan) {
    AttachPruneConjuncts(static_cast<TableScanOp*>(child.get()),
                         *plan.predicate);
  }

  std::vector<ExprPtr> calls;
  CollectScoringCalls(*predicate, &calls);
  if (calls.empty()) {
    return PhysicalOperatorPtr(
        std::make_unique<FilterOp>(std::move(child), std::move(predicate)));
  }

  // Hoist scoring below the filter, rewrite the predicate to reference the
  // score columns, and narrow back to the original width on top so the
  // appended columns stay operator-internal.
  const size_t base = child->output_schema().num_columns();
  std::vector<DataType> types;
  types.reserve(calls.size());
  for (const auto& call : calls) {
    FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                           registry_->Lookup(call->function_name));
    types.push_back(fn->return_type);
  }
  std::vector<ExprPtr> hoisted;
  hoisted.reserve(calls.size());
  for (const auto& call : calls) hoisted.push_back(call->Clone());
  FLOCK_ASSIGN_OR_RETURN(
      child, InsertPredictScore(std::move(child), std::move(hoisted)));
  ReplaceScoringCalls(&predicate, calls, base, types);
  auto filter =
      std::make_unique<FilterOp>(std::move(child), std::move(predicate));

  std::vector<ExprPtr> narrow;
  narrow.reserve(base);
  for (size_t i = 0; i < base; ++i) {
    auto ref = std::make_unique<Expr>();
    ref->kind = ExprKind::kColumnRef;
    ref->column_name = plan.output_schema.column(i).name;
    ref->column_index = static_cast<int>(i);
    ref->resolved_type = plan.output_schema.column(i).type;
    narrow.push_back(std::move(ref));
  }
  return PhysicalOperatorPtr(std::make_unique<ProjectOp>(
      std::move(filter), std::move(narrow), plan.output_schema));
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::LowerProject(
    const LogicalPlan& plan) const {
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child, Lower(*plan.children[0]));

  std::vector<ExprPtr> exprs;
  exprs.reserve(plan.exprs.size());
  std::vector<ExprPtr> calls;
  for (const auto& e : plan.exprs) {
    exprs.push_back(e->Clone());
    CollectScoringCalls(*e, &calls);
  }
  if (!calls.empty()) {
    const size_t base = child->output_schema().num_columns();
    std::vector<DataType> types;
    types.reserve(calls.size());
    for (const auto& call : calls) {
      FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                             registry_->Lookup(call->function_name));
      types.push_back(fn->return_type);
    }
    std::vector<ExprPtr> hoisted;
    hoisted.reserve(calls.size());
    for (const auto& call : calls) hoisted.push_back(call->Clone());
    FLOCK_ASSIGN_OR_RETURN(
        child, InsertPredictScore(std::move(child), std::move(hoisted)));
    for (auto& e : exprs) ReplaceScoringCalls(&e, calls, base, types);
  }
  return PhysicalOperatorPtr(std::make_unique<ProjectOp>(
      std::move(child), std::move(exprs), plan.output_schema));
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::LowerJoin(
    const LogicalPlan& plan) const {
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr left, Lower(*plan.children[0]));
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr right, Lower(*plan.children[1]));
  const size_t left_width = left->output_schema().num_columns();

  JoinKeys keys = ExtractJoinKeys(plan.join_condition.get(), left_width);
  if (!keys.left.empty()) {
    auto build = std::make_unique<HashJoinBuildOp>(std::move(right),
                                                   std::move(keys.right));
    return PhysicalOperatorPtr(std::make_unique<HashJoinProbeOp>(
        std::move(left), std::move(build), std::move(keys.left),
        std::move(keys.residual), plan.join_type, plan.output_schema));
  }
  ExprPtr condition =
      plan.join_condition ? plan.join_condition->Clone() : nullptr;
  return PhysicalOperatorPtr(std::make_unique<NestedLoopJoinOp>(
      std::move(left), std::move(right), std::move(condition), plan.join_type,
      plan.output_schema));
}

StatusOr<PhysicalOperatorPtr> PhysicalPlanner::LowerAggregate(
    const LogicalPlan& plan) const {
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr child, Lower(*plan.children[0]));

  std::vector<ExprPtr> group_by;
  group_by.reserve(plan.group_by.size());
  std::vector<ExprPtr> aggregates;
  aggregates.reserve(plan.aggregates.size());
  std::vector<ExprPtr> calls;
  for (const auto& g : plan.group_by) {
    group_by.push_back(g->Clone());
    CollectScoringCalls(*g, &calls);
  }
  for (const auto& a : plan.aggregates) {
    aggregates.push_back(a->Clone());
    CollectScoringCalls(*a, &calls);
  }
  if (!calls.empty()) {
    const size_t base = child->output_schema().num_columns();
    std::vector<DataType> types;
    types.reserve(calls.size());
    for (const auto& call : calls) {
      FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                             registry_->Lookup(call->function_name));
      types.push_back(fn->return_type);
    }
    std::vector<ExprPtr> hoisted;
    hoisted.reserve(calls.size());
    for (const auto& call : calls) hoisted.push_back(call->Clone());
    FLOCK_ASSIGN_OR_RETURN(
        child, InsertPredictScore(std::move(child), std::move(hoisted)));
    for (auto& g : group_by) ReplaceScoringCalls(&g, calls, base, types);
    for (auto& a : aggregates) ReplaceScoringCalls(&a, calls, base, types);
  }
  return PhysicalOperatorPtr(std::make_unique<HashAggregateOp>(
      std::move(child), std::move(group_by), std::move(aggregates),
      plan.output_schema));
}

}  // namespace flock::sql
