#include "sql/evaluator.h"

#include <cmath>

#include "common/logging.h"

namespace flock::sql {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Value;

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kBool;
}

/// Output type of an arithmetic binary op.
DataType ArithmeticResultType(BinaryOp op, DataType lhs, DataType rhs) {
  if (op == BinaryOp::kDiv) return DataType::kDouble;
  if (lhs == DataType::kInt64 && rhs == DataType::kInt64) {
    return DataType::kInt64;
  }
  return DataType::kDouble;
}

StatusOr<ColumnVectorPtr> EvaluateArithmetic(BinaryOp op,
                                             const ColumnVector& lhs,
                                             const ColumnVector& rhs,
                                             size_t n) {
  DataType out_type = ArithmeticResultType(op, lhs.type(), rhs.type());
  auto out = std::make_shared<ColumnVector>(out_type);
  out->Reserve(n);
  if (out_type == DataType::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      if (lhs.IsNull(i) || rhs.IsNull(i)) {
        out->AppendNull();
        continue;
      }
      int64_t a = lhs.int_at(i);
      int64_t b = rhs.int_at(i);
      int64_t r = 0;
      switch (op) {
        case BinaryOp::kAdd:
          r = a + b;
          break;
        case BinaryOp::kSub:
          r = a - b;
          break;
        case BinaryOp::kMul:
          r = a * b;
          break;
        case BinaryOp::kMod:
          if (b == 0) {
            out->AppendNull();
            continue;
          }
          r = a % b;
          break;
        default:
          return Status::Internal("bad arithmetic op");
      }
      out->AppendInt(r);
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    double a = lhs.AsDouble(i);
    double b = rhs.AsDouble(i);
    double r = 0;
    switch (op) {
      case BinaryOp::kAdd:
        r = a + b;
        break;
      case BinaryOp::kSub:
        r = a - b;
        break;
      case BinaryOp::kMul:
        r = a * b;
        break;
      case BinaryOp::kDiv:
        if (b == 0.0) {
          out->AppendNull();
          continue;
        }
        r = a / b;
        break;
      case BinaryOp::kMod:
        if (b == 0.0) {
          out->AppendNull();
          continue;
        }
        r = std::fmod(a, b);
        break;
      default:
        return Status::Internal("bad arithmetic op");
    }
    out->AppendDouble(r);
  }
  return out;
}

StatusOr<ColumnVectorPtr> EvaluateComparison(BinaryOp op,
                                             const ColumnVector& lhs,
                                             const ColumnVector& rhs,
                                             size_t n) {
  auto out = std::make_shared<ColumnVector>(DataType::kBool);
  out->Reserve(n);
  bool string_cmp =
      lhs.type() == DataType::kString && rhs.type() == DataType::kString;
  bool numeric_cmp = IsNumeric(lhs.type()) && IsNumeric(rhs.type());
  if (!string_cmp && !numeric_cmp) {
    // Mixed string/number comparison: compare via string rendering for
    // equality, otherwise fail loudly.
    if (op != BinaryOp::kEq && op != BinaryOp::kNotEq) {
      return Status::InvalidArgument(
          "cannot order-compare string against numeric");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    int cmp;
    if (string_cmp) {
      cmp = lhs.string_at(i).compare(rhs.string_at(i));
    } else if (numeric_cmp) {
      double a = lhs.AsDouble(i);
      double b = rhs.AsDouble(i);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      cmp = lhs.GetValue(i).ToString().compare(rhs.GetValue(i).ToString());
    }
    bool r = false;
    switch (op) {
      case BinaryOp::kEq:
        r = cmp == 0;
        break;
      case BinaryOp::kNotEq:
        r = cmp != 0;
        break;
      case BinaryOp::kLt:
        r = cmp < 0;
        break;
      case BinaryOp::kLtEq:
        r = cmp <= 0;
        break;
      case BinaryOp::kGt:
        r = cmp > 0;
        break;
      case BinaryOp::kGtEq:
        r = cmp >= 0;
        break;
      default:
        return Status::Internal("bad comparison op");
    }
    out->AppendBool(r);
  }
  return out;
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer wildcard match: % = any run, _ = any one char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

StatusOr<ColumnVectorPtr> EvaluateExpr(const Expr& expr,
                                       const RecordBatch& input,
                                       const FunctionRegistry* registry) {
  const size_t n = input.num_rows();
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      DataType t = expr.literal.is_null() ? DataType::kInt64
                                          : expr.literal.type();
      auto out = std::make_shared<ColumnVector>(t);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        FLOCK_RETURN_NOT_OK(out->AppendValue(expr.literal));
      }
      return out;
    }
    case ExprKind::kColumnRef: {
      if (expr.column_index < 0 ||
          static_cast<size_t>(expr.column_index) >= input.num_columns()) {
        return Status::Internal("unbound column reference: " +
                                expr.ToString());
      }
      const ColumnVectorPtr& col =
          input.column(static_cast<size_t>(expr.column_index));
      if (!input.has_selection()) return col;
      // Late materialization: gather only the columns an expression
      // actually touches, so selected views coming out of filters never
      // copy untouched columns.
      auto gathered = std::make_shared<ColumnVector>(col->type());
      gathered->AppendSelected(*col, input.selection());
      return gathered;
    }
    case ExprKind::kStar:
      return Status::Internal("'*' cannot be evaluated as a scalar");
    case ExprKind::kBinary: {
      if (expr.bin_op == BinaryOp::kAnd || expr.bin_op == BinaryOp::kOr) {
        FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr lhs,
                               EvaluateExpr(*expr.children[0], input,
                                            registry));
        FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr rhs,
                               EvaluateExpr(*expr.children[1], input,
                                            registry));
        auto out = std::make_shared<ColumnVector>(DataType::kBool);
        out->Reserve(n);
        bool is_and = expr.bin_op == BinaryOp::kAnd;
        for (size_t i = 0; i < n; ++i) {
          bool lnull = lhs->IsNull(i), rnull = rhs->IsNull(i);
          bool lv = !lnull && lhs->AsDouble(i) != 0.0;
          bool rv = !rnull && rhs->AsDouble(i) != 0.0;
          if (is_and) {
            // Kleene AND: false dominates, then null.
            if ((!lnull && !lv) || (!rnull && !rv)) {
              out->AppendBool(false);
            } else if (lnull || rnull) {
              out->AppendNull();
            } else {
              out->AppendBool(true);
            }
          } else {
            if ((!lnull && lv) || (!rnull && rv)) {
              out->AppendBool(true);
            } else if (lnull || rnull) {
              out->AppendNull();
            } else {
              out->AppendBool(false);
            }
          }
        }
        return out;
      }
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr lhs,
          EvaluateExpr(*expr.children[0], input, registry));
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr rhs,
          EvaluateExpr(*expr.children[1], input, registry));
      switch (expr.bin_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvaluateArithmetic(expr.bin_op, *lhs, *rhs, n);
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
          return EvaluateComparison(expr.bin_op, *lhs, *rhs, n);
        case BinaryOp::kLike: {
          auto out = std::make_shared<ColumnVector>(DataType::kBool);
          out->Reserve(n);
          for (size_t i = 0; i < n; ++i) {
            if (lhs->IsNull(i) || rhs->IsNull(i)) {
              out->AppendNull();
              continue;
            }
            out->AppendBool(LikeMatch(lhs->GetValue(i).ToString(),
                                      rhs->GetValue(i).ToString()));
          }
          return out;
        }
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case ExprKind::kUnary: {
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr operand,
          EvaluateExpr(*expr.children[0], input, registry));
      if (expr.un_op == UnaryOp::kNot) {
        auto out = std::make_shared<ColumnVector>(DataType::kBool);
        out->Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (operand->IsNull(i)) {
            out->AppendNull();
          } else {
            out->AppendBool(operand->AsDouble(i) == 0.0);
          }
        }
        return out;
      }
      // Negation keeps the numeric type.
      DataType t = operand->type() == DataType::kInt64 ? DataType::kInt64
                                                       : DataType::kDouble;
      auto out = std::make_shared<ColumnVector>(t);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (operand->IsNull(i)) {
          out->AppendNull();
        } else if (t == DataType::kInt64) {
          out->AppendInt(-operand->int_at(i));
        } else {
          out->AppendDouble(-operand->AsDouble(i));
        }
      }
      return out;
    }
    case ExprKind::kFunction: {
      if (IsAggregateFunction(expr.function_name)) {
        return Status::Internal(
            "aggregate function reached scalar evaluator: " +
            expr.function_name);
      }
      if (registry == nullptr) {
        return Status::Internal("no function registry available");
      }
      FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                             registry->Lookup(expr.function_name));
      if (expr.children.size() < fn->min_args ||
          expr.children.size() > fn->max_args) {
        return Status::InvalidArgument("wrong argument count for " +
                                       expr.function_name);
      }
      std::vector<ColumnVectorPtr> args;
      args.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr arg,
                               EvaluateExpr(*child, input, registry));
        args.push_back(std::move(arg));
      }
      return fn->kernel(args, n);
    }
    case ExprKind::kCase: {
      size_t num_pairs = (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      std::vector<ColumnVectorPtr> whens(num_pairs), thens(num_pairs);
      for (size_t p = 0; p < num_pairs; ++p) {
        FLOCK_ASSIGN_OR_RETURN(
            whens[p], EvaluateExpr(*expr.children[2 * p], input, registry));
        FLOCK_ASSIGN_OR_RETURN(
            thens[p],
            EvaluateExpr(*expr.children[2 * p + 1], input, registry));
      }
      ColumnVectorPtr else_col;
      if (expr.has_else) {
        FLOCK_ASSIGN_OR_RETURN(
            else_col, EvaluateExpr(*expr.children.back(), input, registry));
      }
      // Output type: first THEN branch's type.
      DataType t = num_pairs > 0 ? thens[0]->type() : DataType::kInt64;
      auto out = std::make_shared<ColumnVector>(t);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool matched = false;
        for (size_t p = 0; p < num_pairs; ++p) {
          if (!whens[p]->IsNull(i) && whens[p]->AsDouble(i) != 0.0) {
            FLOCK_RETURN_NOT_OK(out->AppendValue(thens[p]->GetValue(i)));
            matched = true;
            break;
          }
        }
        if (!matched) {
          if (else_col) {
            FLOCK_RETURN_NOT_OK(out->AppendValue(else_col->GetValue(i)));
          } else {
            out->AppendNull();
          }
        }
      }
      return out;
    }
    case ExprKind::kIn: {
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr needle,
          EvaluateExpr(*expr.children[0], input, registry));
      std::vector<ColumnVectorPtr> options;
      for (size_t c = 1; c < expr.children.size(); ++c) {
        FLOCK_ASSIGN_OR_RETURN(
            ColumnVectorPtr option,
            EvaluateExpr(*expr.children[c], input, registry));
        options.push_back(std::move(option));
      }
      auto out = std::make_shared<ColumnVector>(DataType::kBool);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (needle->IsNull(i)) {
          out->AppendNull();
          continue;
        }
        Value v = needle->GetValue(i);
        bool found = false;
        for (const auto& option : options) {
          if (!option->IsNull(i) && v == option->GetValue(i)) {
            found = true;
            break;
          }
        }
        out->AppendBool(expr.negated ? !found : found);
      }
      return out;
    }
    case ExprKind::kBetween: {
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr v, EvaluateExpr(*expr.children[0], input,
                                          registry));
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr lo, EvaluateExpr(*expr.children[1], input,
                                           registry));
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr hi, EvaluateExpr(*expr.children[2], input,
                                           registry));
      auto out = std::make_shared<ColumnVector>(DataType::kBool);
      out->Reserve(n);
      bool strings = v->type() == DataType::kString;
      for (size_t i = 0; i < n; ++i) {
        if (v->IsNull(i) || lo->IsNull(i) || hi->IsNull(i)) {
          out->AppendNull();
          continue;
        }
        bool in_range;
        if (strings) {
          const std::string& s = v->string_at(i);
          in_range = s >= lo->GetValue(i).ToString() &&
                     s <= hi->GetValue(i).ToString();
        } else {
          double d = v->AsDouble(i);
          in_range = d >= lo->AsDouble(i) && d <= hi->AsDouble(i);
        }
        out->AppendBool(expr.negated ? !in_range : in_range);
      }
      return out;
    }
    case ExprKind::kCast: {
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr operand,
          EvaluateExpr(*expr.children[0], input, registry));
      auto out = std::make_shared<ColumnVector>(expr.cast_type);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (operand->IsNull(i)) {
          out->AppendNull();
          continue;
        }
        FLOCK_ASSIGN_OR_RETURN(Value cast,
                               operand->GetValue(i).CastTo(expr.cast_type));
        FLOCK_RETURN_NOT_OK(out->AppendValue(cast));
      }
      return out;
    }
    case ExprKind::kIsNull: {
      FLOCK_ASSIGN_OR_RETURN(
          ColumnVectorPtr operand,
          EvaluateExpr(*expr.children[0], input, registry));
      auto out = std::make_shared<ColumnVector>(DataType::kBool);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool is_null = operand->IsNull(i);
        out->AppendBool(expr.negated ? !is_null : is_null);
      }
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<std::vector<uint32_t>> EvaluatePredicate(
    const Expr& expr, const RecordBatch& input,
    const FunctionRegistry* registry) {
  FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                         EvaluateExpr(expr, input, registry));
  std::vector<uint32_t> sel;
  const size_t n = input.num_rows();
  sel.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!mask->IsNull(i) && mask->AsDouble(i) != 0.0) {
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  return sel;
}

StatusOr<DataType> InferExprType(const Expr& expr,
                                 const storage::Schema& schema,
                                 const FunctionRegistry* registry) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.is_null() ? DataType::kInt64 : expr.literal.type();
    case ExprKind::kColumnRef:
      if (expr.column_index >= 0 &&
          static_cast<size_t>(expr.column_index) < schema.num_columns()) {
        return schema.column(static_cast<size_t>(expr.column_index)).type;
      }
      return Status::Internal("unbound column in type inference: " +
                              expr.ToString());
    case ExprKind::kStar:
      return Status::Internal("cannot type '*'");
    case ExprKind::kBinary: {
      switch (expr.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
        case BinaryOp::kLike:
          return DataType::kBool;
        default: {
          FLOCK_ASSIGN_OR_RETURN(
              DataType lhs,
              InferExprType(*expr.children[0], schema, registry));
          FLOCK_ASSIGN_OR_RETURN(
              DataType rhs,
              InferExprType(*expr.children[1], schema, registry));
          return ArithmeticResultType(expr.bin_op, lhs, rhs);
        }
      }
    }
    case ExprKind::kUnary:
      if (expr.un_op == UnaryOp::kNot) return DataType::kBool;
      return InferExprType(*expr.children[0], schema, registry);
    case ExprKind::kFunction: {
      const std::string& fn = expr.function_name;
      if (fn == "COUNT") return DataType::kInt64;
      if (fn == "SUM" || fn == "AVG") return DataType::kDouble;
      if (fn == "MIN" || fn == "MAX") {
        if (expr.children.empty() ||
            expr.children[0]->kind == ExprKind::kStar) {
          return DataType::kDouble;
        }
        return InferExprType(*expr.children[0], schema, registry);
      }
      if (registry != nullptr && registry->Contains(fn)) {
        FLOCK_ASSIGN_OR_RETURN(const ScalarFunction* entry,
                               registry->Lookup(fn));
        // COALESCE's type follows its first argument.
        if (fn == "COALESCE" && !expr.children.empty()) {
          return InferExprType(*expr.children[0], schema, registry);
        }
        return entry->return_type;
      }
      return Status::NotFound("unknown function: " + fn);
    }
    case ExprKind::kCase:
      if (expr.children.size() >= 2) {
        return InferExprType(*expr.children[1], schema, registry);
      }
      return DataType::kInt64;
    case ExprKind::kIn:
    case ExprKind::kBetween:
    case ExprKind::kIsNull:
      return DataType::kBool;
    case ExprKind::kCast:
      return expr.cast_type;
  }
  return Status::Internal("unhandled kind in type inference");
}

bool IsConstantExpr(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef || expr.kind == ExprKind::kStar) {
    return false;
  }
  if (expr.kind == ExprKind::kFunction &&
      IsAggregateFunction(expr.function_name)) {
    return false;
  }
  for (const auto& c : expr.children) {
    if (c && !IsConstantExpr(*c)) return false;
  }
  return true;
}

StatusOr<Value> EvaluateConstant(const Expr& expr,
                                 const FunctionRegistry* registry) {
  if (!IsConstantExpr(expr)) {
    return Status::InvalidArgument("expression is not constant: " +
                                   expr.ToString());
  }
  // A batch with zero columns has zero rows; evaluate via a dummy column.
  storage::Schema schema(
      {storage::ColumnDef{"__dummy", DataType::kInt64, false}});
  RecordBatch batch(schema);
  FLOCK_RETURN_NOT_OK(batch.AppendRow({Value::Int(0)}));
  FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                         EvaluateExpr(expr, batch, registry));
  if (col->size() != 1) return Status::Internal("constant eval row count");
  return col->GetValue(0);
}

void CollectColumnIndexes(const Expr& expr, std::vector<int>* indexes) {
  VisitExpr(expr, [indexes](const Expr& e) {
    if (e.kind == ExprKind::kColumnRef && e.column_index >= 0) {
      indexes->push_back(e.column_index);
    }
  });
}

}  // namespace flock::sql
