#ifndef FLOCK_SQL_OPTIMIZER_H_
#define FLOCK_SQL_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"

namespace flock::sql {

struct OptimizerOptions {
  bool constant_folding = true;
  bool predicate_pushdown = true;
  bool projection_pruning = true;
};

/// Rule-based rewrite of a bound plan. Rules:
///  * constant folding of deterministic scalar subtrees;
///  * filter merging and predicate pushdown through Project and Join;
///  * projection pruning — narrows table scans to the columns actually
///    consumed anywhere above, remapping column indexes.
///
/// Projection pruning is the relational half of the paper's
/// "automatic pruning of unused input feature-columns" (§4.1): once the
/// Flock cross-optimizer shrinks a PREDICT call's argument list using model
/// sparsity, this pass makes the scan itself narrower.
Status Optimize(PlanPtr* plan, const FunctionRegistry* registry,
                const OptimizerOptions& options = {});

/// Splits a predicate into top-level AND conjuncts (ownership transferred).
std::vector<ExprPtr> SplitConjuncts(ExprPtr predicate);

/// AND-combines conjuncts back into one predicate (empty -> TRUE literal).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

}  // namespace flock::sql

#endif  // FLOCK_SQL_OPTIMIZER_H_
