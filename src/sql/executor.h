#ifndef FLOCK_SQL_EXECUTOR_H_
#define FLOCK_SQL_EXECUTOR_H_

#include <memory>

#include "common/status_or.h"
#include "common/thread_pool.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "storage/record_batch.h"

namespace flock::sql {

struct ExecutorOptions {
  /// Degree of intra-query parallelism for scan pipelines. 1 = serial.
  size_t num_threads = 1;
  /// Rows per morsel flowing through a pipeline.
  size_t morsel_size = storage::RecordBatch::kDefaultBatchSize;
};

/// Interprets logical plans.
///
/// Scan->Filter->Project chains run as morsel-driven parallel pipelines:
/// the scan range is partitioned across the thread pool and every worker
/// pulls 2,048-row morsels through its copy of the pipeline. Blocking
/// operators (join build, aggregation, sort) materialize their inputs.
/// This morsel parallelism is what gives in-DBMS inference its "automatic
/// parallelization" advantage over standalone scoring (paper Figure 4).
class Executor {
 public:
  Executor(const FunctionRegistry* registry, ThreadPool* pool,
           ExecutorOptions options)
      : registry_(registry), pool_(pool), options_(options) {}

  StatusOr<storage::RecordBatch> Execute(const LogicalPlan& plan);

 private:
  StatusOr<storage::RecordBatch> ExecutePipeline(const LogicalPlan& plan);
  StatusOr<storage::RecordBatch> ExecuteJoin(const LogicalPlan& plan);
  StatusOr<storage::RecordBatch> ExecuteAggregate(const LogicalPlan& plan);
  StatusOr<storage::RecordBatch> ExecuteSort(const LogicalPlan& plan);
  StatusOr<storage::RecordBatch> ExecuteDistinct(const LogicalPlan& plan);
  StatusOr<storage::RecordBatch> ExecuteLimit(const LogicalPlan& plan);

  const FunctionRegistry* registry_;
  ThreadPool* pool_;  // may be null when num_threads == 1
  ExecutorOptions options_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_EXECUTOR_H_
