#ifndef FLOCK_SQL_EXECUTOR_H_
#define FLOCK_SQL_EXECUTOR_H_

#include <memory>

#include "common/cancel.h"
#include "common/status_or.h"
#include "common/thread_pool.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"
#include "sql/physical_planner.h"
#include "storage/record_batch.h"

namespace flock::sql {

struct ExecutorOptions {
  /// Degree of intra-query parallelism. 1 = serial.
  size_t num_threads = 1;
  /// Rows per morsel flowing through a pipeline.
  size_t morsel_size = storage::RecordBatch::kDefaultBatchSize;
  /// Skip segments whose zone maps disprove the scan's pushed-down
  /// conjuncts. Off switches the decision only — plans are identical, so
  /// differential tests can compare pruned vs unpruned execution.
  bool enable_zone_map_pruning = true;
  /// Cooperative cancellation: polled at every morsel boundary (serial
  /// and parallel paths), before each pipeline breaker, and inside
  /// operators with unbounded per-morsel fan-out. A null token (the
  /// default) never fires.
  CancelToken cancel;
};

/// Drives physical plans as morsel-driven push pipelines.
///
/// Each maximal chain of streaming operators (scan / filter / project /
/// predict-score / join-probe) forms one pipeline: the source row range is
/// partitioned across the thread pool and every worker pushes morsels
/// through the chain into a pipeline sink. Joins parallelize on the probe
/// side (all workers share the read-only hash table); aggregation runs
/// with thread-local hash states merged deterministically at pipeline end.
/// Remaining pipeline breakers (sort, distinct, limit) materialize. This
/// morsel parallelism is what gives in-DBMS inference its "automatic
/// parallelization" advantage over standalone scoring (paper Figure 4).
///
/// The executor no longer interprets LogicalPlan nodes: Execute(LogicalPlan)
/// is a convenience that lowers through PhysicalPlanner first.
class Executor {
 public:
  Executor(const FunctionRegistry* registry, ThreadPool* pool,
           ExecutorOptions options)
      : registry_(registry), pool_(pool), options_(options) {}

  /// Lowers `plan` and executes it.
  StatusOr<storage::RecordBatch> Execute(const LogicalPlan& plan);

  /// Executes an already-lowered plan. Operator metrics accumulate into
  /// the tree (call root->ResetMetrics() to re-run fresh).
  StatusOr<storage::RecordBatch> Execute(PhysicalOperator* root);

 private:
  class PipelineSink;
  class CollectSink;
  class AggregateSink;

  /// Recursively executes `op`, materializing its full result.
  StatusOr<storage::RecordBatch> Run(PhysicalOperator* op);

  /// Runs the streaming chain rooted at `top` (ending at a TableScan or a
  /// materialized blocking child), pushing every morsel into `sink`.
  Status RunPipeline(PhysicalOperator* top, PipelineSink* sink);

  /// Materializes the build side of each join in a pipeline chain before
  /// the pipeline itself starts (so ParallelFor never nests).
  Status PrepareHashJoin(HashJoinProbeOp* probe);
  Status PrepareNestedLoop(NestedLoopJoinOp* join);

  StatusOr<storage::RecordBatch> RunSort(SortOp* op);
  StatusOr<storage::RecordBatch> RunDistinct(DistinctOp* op);
  StatusOr<storage::RecordBatch> RunLimit(LimitOp* op);

  ExecContext MakeContext() const;

  const FunctionRegistry* registry_;
  ThreadPool* pool_;  // may be null when num_threads == 1
  ExecutorOptions options_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_EXECUTOR_H_
