#include "obs/metrics_registry.h"

#include <cstdio>

namespace flock::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// "plan_cache.hits" -> {"plan_cache", "hits"}; no dot -> {"", name}.
std::pair<std::string, std::string> SplitSubsystem(const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

/// Prometheus family name: dots become underscores, `flock_` prefix.
std::string PromName(const std::string& name) {
  std::string out = "flock_";
  for (char c : name) out += (c == '.') ? '_' : c;
  return out;
}

}  // namespace

void MetricsRegistry::RegisterCounter(const std::string& name, ValueFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric m;
  m.kind = Kind::kCounter;
  m.value = std::move(fn);
  metrics_[name] = std::move(m);
}

void MetricsRegistry::RegisterGauge(const std::string& name, ValueFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric m;
  m.kind = Kind::kGauge;
  m.value = std::move(fn);
  metrics_[name] = std::move(m);
}

void MetricsRegistry::RegisterGaugeF(const std::string& name, ValueFnF fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric m;
  m.kind = Kind::kGaugeF;
  m.value_f = std::move(fn);
  metrics_[name] = std::move(m);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        HistogramFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric m;
  m.kind = Kind::kHistogram;
  m.histogram = std::move(fn);
  metrics_[name] = std::move(m);
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  std::string open_subsystem;
  bool any_subsystem = false;
  bool first_metric = true;
  for (const auto& [name, metric] : metrics_) {
    auto [subsystem, field] = SplitSubsystem(name);
    if (!any_subsystem || subsystem != open_subsystem) {
      if (any_subsystem) out += "}, ";
      out += "\"" + subsystem + "\": {";
      open_subsystem = subsystem;
      any_subsystem = true;
      first_metric = true;
    }
    if (!first_metric) out += ", ";
    first_metric = false;
    out += "\"" + field + "\": ";
    switch (metric.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out += std::to_string(metric.value ? metric.value() : 0);
        break;
      case Kind::kGaugeF:
        out += FormatDouble(metric.value_f ? metric.value_f() : 0.0);
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h =
            metric.histogram ? metric.histogram() : HistogramSnapshot{};
        out += "{\"count\": " + std::to_string(h.count) +
               ", \"mean\": " + FormatDouble(h.mean_ms) +
               ", \"p50\": " + FormatDouble(h.p50_ms) +
               ", \"p95\": " + FormatDouble(h.p95_ms) +
               ", \"p99\": " + FormatDouble(h.p99_ms) + "}";
        break;
      }
    }
  }
  if (any_subsystem) out += "}";
  out += "}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, metric] : metrics_) {
    const std::string prom = PromName(name);
    switch (metric.kind) {
      case Kind::kCounter:
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " +
               std::to_string(metric.value ? metric.value() : 0) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " +
               std::to_string(metric.value ? metric.value() : 0) + "\n";
        break;
      case Kind::kGaugeF:
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " +
               FormatDouble(metric.value_f ? metric.value_f() : 0.0) + "\n";
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h =
            metric.histogram ? metric.histogram() : HistogramSnapshot{};
        out += "# TYPE " + prom + " summary\n";
        out += prom + "_count " + std::to_string(h.count) + "\n";
        out += prom + "_mean_ms " + FormatDouble(h.mean_ms) + "\n";
        out += prom + "{quantile=\"0.5\"} " + FormatDouble(h.p50_ms) + "\n";
        out += prom + "{quantile=\"0.95\"} " + FormatDouble(h.p95_ms) + "\n";
        out += prom + "{quantile=\"0.99\"} " + FormatDouble(h.p99_ms) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace flock::obs
