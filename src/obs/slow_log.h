#ifndef FLOCK_OBS_SLOW_LOG_H_
#define FLOCK_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace flock::obs {

/// One captured outlier request.
struct SlowQueryEntry {
  uint64_t seq = 0;             // monotonically increasing capture id
  std::string sql;              // normalized statement text
  std::string plan_digest;      // 16-hex-char physical-plan shape hash
  double elapsed_ms = 0.0;
  bool from_plan_cache = false;
  std::vector<SpanSnapshot> trace;  // span tree when tracing was on
};

/// Threshold-gated ring buffer of outlier requests: every statement
/// whose latency crosses `threshold_ms` is captured with its normalized
/// SQL, plan digest and (when tracing) span tree. The buffer keeps the
/// most recent `capacity` entries; `total_recorded` keeps counting past
/// evictions so monitoring can see the true outlier rate.
///
/// The fast path is one double comparison (`ShouldRecord`); the mutex is
/// only taken for actual outliers and dumps. A negative threshold
/// disables capture entirely.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64, double threshold_ms = 100.0)
      : capacity_(capacity == 0 ? 1 : capacity),
        threshold_ms_(threshold_ms) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool ShouldRecord(double elapsed_ms) const {
    double t = threshold_ms_.load(std::memory_order_relaxed);
    return t >= 0.0 && elapsed_ms >= t;
  }

  void Record(SlowQueryEntry entry);

  /// Oldest-to-newest copy of the retained entries.
  std::vector<SlowQueryEntry> Dump() const;

  void Clear();

  /// Compact JSON array of the retained entries (trace rendered as a
  /// span-count, not the full tree, to keep dumps bounded).
  std::string ToJson() const;

  double threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  void set_threshold_ms(double t) {
    threshold_ms_.store(t, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::atomic<double> threshold_ms_;
  std::atomic<uint64_t> total_recorded_{0};

  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // ring_[next_] is the oldest
  size_t next_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace flock::obs

#endif  // FLOCK_OBS_SLOW_LOG_H_
