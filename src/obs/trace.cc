#include "obs/trace.h"

#include <cstdio>

namespace flock::obs {

namespace {
thread_local TraceRecorder* tls_recorder = nullptr;
}  // namespace

TraceRecorder* TraceRecorder::Current() { return tls_recorder; }

TraceScope::TraceScope(TraceRecorder* recorder)
    : previous_(tls_recorder) {
  tls_recorder = recorder;
}

TraceScope::~TraceScope() { tls_recorder = previous_; }

size_t TraceRecorder::Begin(std::string name) {
  SpanSnapshot span;
  span.name = std::move(name);
  span.depth = static_cast<int>(open_.size());
  span.start_nanos = NowNanos();
  spans_.push_back(std::move(span));
  open_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

void TraceRecorder::End() {
  if (open_.empty()) return;
  SpanSnapshot& span = spans_[open_.back()];
  span.duration_nanos = NowNanos() - span.start_nanos;
  open_.pop_back();
}

void TraceRecorder::AddUnder(size_t parent, std::string name,
                             int extra_depth, uint64_t duration_nanos) {
  if (parent >= spans_.size()) return;
  SpanSnapshot span;
  span.name = std::move(name);
  span.depth = spans_[parent].depth + 1 + extra_depth;
  span.start_nanos = spans_[parent].start_nanos;
  span.duration_nanos = duration_nanos;
  spans_.push_back(std::move(span));
}

std::vector<SpanSnapshot> TraceRecorder::Snapshot() const {
  std::vector<SpanSnapshot> out = spans_;
  uint64_t now = NowNanos();
  for (size_t idx : open_) {
    out[idx].duration_nanos = now - out[idx].start_nanos;
  }
  return out;
}

std::string RenderSpanTree(const std::vector<SpanSnapshot>& spans) {
  std::string out;
  for (const SpanSnapshot& span : spans) {
    char line[192];
    std::snprintf(line, sizeof(line), "%*s%-32s %9.3f ms  @%.3f ms\n",
                  2 * span.depth, "", span.name.c_str(),
                  static_cast<double>(span.duration_nanos) / 1e6,
                  static_cast<double>(span.start_nanos) / 1e6);
    out += line;
  }
  return out;
}

}  // namespace flock::obs
