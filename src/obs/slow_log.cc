#include "obs/slow_log.h"

#include <cstdio>

namespace flock::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % capacity_;
  }
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlowQueryEntry> SlowQueryLog::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string SlowQueryLog::ToJson() const {
  std::vector<SlowQueryEntry> entries = Dump();
  std::string out = "{\"threshold_ms\": ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", threshold_ms());
  out += buf;
  out += ", \"total_recorded\": " + std::to_string(total_recorded());
  out += ", \"entries\": [";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.3f", e.elapsed_ms);
    out += "{\"seq\": " + std::to_string(e.seq) + ", \"sql\": \"" +
           JsonEscape(e.sql) + "\", \"plan_digest\": \"" + e.plan_digest +
           "\", \"elapsed_ms\": " + buf +
           ", \"from_plan_cache\": " + (e.from_plan_cache ? "true" : "false") +
           ", \"spans\": " + std::to_string(e.trace.size()) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace flock::obs
