#ifndef FLOCK_OBS_METRICS_REGISTRY_H_
#define FLOCK_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace flock::obs {

/// Point-in-time view of a latency histogram, pulled through a
/// registered callback (the histogram itself stays lock-free in its
/// owning subsystem).
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// The engine-wide metric registry: one namespace for every subsystem's
/// counters, gauges and histograms, read through pull callbacks so the
/// hot paths keep their existing relaxed atomics and the registry adds
/// zero cost until someone actually asks for an exposition.
///
/// Naming scheme: dotted lowercase `subsystem.metric`
/// (`serve.requests_ok`, `plan_cache.hits`, `wal.records_appended`,
/// `policy.decisions`). The first dotted component groups the JSON
/// exposition and prefixes the Prometheus family name
/// (`flock_serve_requests_ok`).
///
/// Semantics: a *counter* is monotonically non-decreasing
/// (requests, bytes); a *gauge* is an instantaneous level (queue depth,
/// open sessions) and may use the floating-point variant for rates and
/// thresholds. Registration replaces any prior metric with the same
/// name (idempotent re-registration), and all methods are thread-safe.
class MetricsRegistry {
 public:
  using ValueFn = std::function<uint64_t()>;
  using ValueFnF = std::function<double()>;
  using HistogramFn = std::function<HistogramSnapshot()>;

  void RegisterCounter(const std::string& name, ValueFn fn);
  void RegisterGauge(const std::string& name, ValueFn fn);
  void RegisterGaugeF(const std::string& name, ValueFnF fn);
  void RegisterHistogram(const std::string& name, HistogramFn fn);

  size_t size() const;

  /// Compact JSON, metrics grouped by subsystem prefix:
  ///   {"plan_cache": {"hits": 12, ...},
  ///    "serve": {"latency_ms": {"count": 3, "p50": 0.4, ...}, ...}}
  std::string ToJson() const;

  /// Prometheus-style text exposition: `# TYPE` lines, counters/gauges
  /// as `flock_<name> <value>`, histograms as `_count`, `_mean_ms` and
  /// `{quantile="..."}` sample lines.
  std::string ToPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kGaugeF, kHistogram };
  struct Metric {
    Kind kind = Kind::kCounter;
    ValueFn value;
    ValueFnF value_f;
    HistogramFn histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;  // sorted => stable expositions
};

}  // namespace flock::obs

#endif  // FLOCK_OBS_METRICS_REGISTRY_H_
