#ifndef FLOCK_OBS_TRACE_H_
#define FLOCK_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace flock::obs {

/// One node of a per-request span tree, flattened in pre-order (`depth`
/// reconstructs the tree, exactly like OperatorMetricsSnapshot). Times
/// are nanoseconds relative to the recorder's construction, so a span
/// tree is self-contained and cheap to copy into a QueryResult.
struct SpanSnapshot {
  std::string name;
  int depth = 0;
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
};

/// Per-request span recorder: the engine opens a span per pipeline stage
/// (parse -> plan -> optimize -> execute -> ...) and deeper layers attach
/// children. One recorder serves one request and is driven from that
/// request's thread; Begin/End maintain an open-span stack so nesting is
/// implicit.
///
/// Layers that cannot take a recorder parameter (the WAL observer fires
/// behind the storage API) reach the active recorder through the
/// thread-local Current() pointer, installed by TraceScope for the
/// duration of a traced request. When no trace is active Current() is
/// null and ScopedSpan degenerates to a no-op — untraced requests pay a
/// single thread-local load per would-be span.
class TraceRecorder {
 public:
  TraceRecorder() : origin_(Clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span as a child of the innermost open span; returns its
  /// index for AddUnder grafting.
  size_t Begin(std::string name);

  /// Closes the innermost open span.
  void End();

  /// Appends an already-timed span under `parent` (which may be closed):
  /// used to graft the executor's per-operator counters into the tree
  /// after the run. `extra_depth` nests relative to the parent's
  /// children (operator snapshots carry their own tree depth).
  void AddUnder(size_t parent, std::string name, int extra_depth,
                uint64_t duration_nanos);

  /// Nanoseconds since the recorder was created.
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             origin_)
            .count());
  }

  /// Pre-order copy of the tree; still-open spans get their duration up
  /// to now.
  std::vector<SpanSnapshot> Snapshot() const;

  size_t num_spans() const { return spans_.size(); }

  /// The recorder installed on this thread by TraceScope, or null.
  static TraceRecorder* Current();

 private:
  friend class TraceScope;

  using Clock = std::chrono::steady_clock;
  Clock::time_point origin_;
  std::vector<SpanSnapshot> spans_;
  std::vector<size_t> open_;  // indexes into spans_, innermost last
};

/// Installs `recorder` as the thread's current recorder for its scope.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* recorder);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* previous_;
};

/// RAII span on the thread's current recorder; no-op when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : recorder_(TraceRecorder::Current()) {
    if (recorder_ != nullptr) index_ = recorder_->Begin(name);
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Index of the opened span (only valid when active()).
  size_t index() const { return index_; }
  bool active() const { return recorder_ != nullptr; }
  TraceRecorder* recorder() { return recorder_; }

 private:
  TraceRecorder* recorder_;
  size_t index_ = 0;
};

/// Indented text rendering of a span tree, one line per span:
///   execute                      1.234 ms  @0.056 ms
///     TableScan(users)           0.800 ms  @0.056 ms
std::string RenderSpanTree(const std::vector<SpanSnapshot>& spans);

}  // namespace flock::obs

#endif  // FLOCK_OBS_TRACE_H_
