#include "prov/catalog.h"

#include <set>

namespace flock::prov {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kTable:
      return "Table";
    case EntityType::kColumn:
      return "Column";
    case EntityType::kQuery:
      return "Query";
    case EntityType::kQueryTemplate:
      return "QueryTemplate";
    case EntityType::kScript:
      return "Script";
    case EntityType::kModel:
      return "Model";
    case EntityType::kHyperparameter:
      return "Hyperparameter";
    case EntityType::kMetric:
      return "Metric";
    case EntityType::kDataset:
      return "Dataset";
    case EntityType::kFeature:
      return "Feature";
    case EntityType::kVersionRun:
      return "VersionRun";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kReads:
      return "READS";
    case EdgeType::kWrites:
      return "WRITES";
    case EdgeType::kContains:
      return "CONTAINS";
    case EdgeType::kDerivesFrom:
      return "DERIVES_FROM";
    case EdgeType::kTrains:
      return "TRAINS";
    case EdgeType::kUsesFeature:
      return "USES_FEATURE";
    case EdgeType::kEvaluates:
      return "EVALUATES";
    case EdgeType::kVersionOf:
      return "VERSION_OF";
    case EdgeType::kHasParam:
      return "HAS_PARAM";
  }
  return "?";
}

uint64_t Catalog::CreateEntity(EntityType type, const std::string& name,
                               uint64_t version) {
  Entity entity;
  entity.id = entities_.size() + 1;
  entity.type = type;
  entity.name = name;
  entity.version = version;
  entities_.push_back(std::move(entity));
  index_[{static_cast<int>(type), name}].push_back(entities_.back().id);
  if (listener_ != nullptr) listener_->OnEntity(entities_.back());
  return entities_.back().id;
}

uint64_t Catalog::GetOrCreate(EntityType type, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find({static_cast<int>(type), name});
  if (it != index_.end() && !it->second.empty()) {
    return it->second.back();
  }
  return CreateEntity(type, name, 1);
}

uint64_t Catalog::NewVersion(EntityType type, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find({static_cast<int>(type), name});
  if (it == index_.end() || it->second.empty()) {
    return CreateEntity(type, name, 1);
  }
  uint64_t prev = it->second.back();
  uint64_t version = entities_[prev - 1].version + 1;
  uint64_t id = CreateEntity(type, name, version);
  edges_.push_back(Edge{id, prev, EdgeType::kVersionOf});
  if (listener_ != nullptr) listener_->OnEdge(edges_.back());
  return id;
}

StatusOr<uint64_t> Catalog::Find(EntityType type, const std::string& name,
                                 uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find({static_cast<int>(type), name});
  if (it == index_.end() || it->second.empty()) {
    return Status::NotFound(std::string(EntityTypeName(type)) + " '" +
                            name + "' not in catalog");
  }
  if (version == 0) return it->second.back();
  for (uint64_t id : it->second) {
    if (entities_[id - 1].version == version) return id;
  }
  return Status::NotFound("version " + std::to_string(version) +
                          " of " + name + " not in catalog");
}

void Catalog::AddEdge(uint64_t src, uint64_t dst, EdgeType type) {
  std::lock_guard<std::mutex> lock(mu_);
  edges_.push_back(Edge{src, dst, type});
  if (listener_ != nullptr) listener_->OnEdge(edges_.back());
}

Status Catalog::SetProperty(uint64_t id, const std::string& key,
                            const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > entities_.size()) {
    return Status::NotFound("no entity with id " + std::to_string(id));
  }
  entities_[id - 1].properties[key] = value;
  if (listener_ != nullptr) listener_->OnProperty(id, key, value);
  return Status::OK();
}

void Catalog::set_listener(CatalogListener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = listener;
}

Status Catalog::Restore(std::vector<Entity> entities,
                        std::vector<Edge> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entities.size(); ++i) {
    if (entities[i].id != i + 1) {
      return Status::DataLoss(
          "provenance snapshot entity id " +
          std::to_string(entities[i].id) + " at position " +
          std::to_string(i) + " is not positional");
    }
  }
  for (const Edge& edge : edges) {
    if (edge.src == 0 || edge.src > entities.size() || edge.dst == 0 ||
        edge.dst > entities.size()) {
      return Status::DataLoss("provenance snapshot edge references missing "
                              "entity");
    }
  }
  entities_ = std::move(entities);
  edges_ = std::move(edges);
  index_.clear();
  for (const Entity& entity : entities_) {
    index_[{static_cast<int>(entity.type), entity.name}].push_back(
        entity.id);
  }
  return Status::OK();
}

Status Catalog::ReplayEntity(uint64_t id, EntityType type,
                             const std::string& name, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id != entities_.size() + 1) {
    return Status::DataLoss("wal replay expects provenance entity id " +
                            std::to_string(entities_.size() + 1) +
                            " but log says " + std::to_string(id));
  }
  CreateEntity(type, name, version);
  return Status::OK();
}

StatusOr<const Entity*> Catalog::GetEntity(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > entities_.size()) {
    return Status::NotFound("no entity with id " + std::to_string(id));
  }
  return &entities_[id - 1];
}

std::vector<const Entity*> Catalog::Versions(
    EntityType type, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entity*> out;
  auto it = index_.find({static_cast<int>(type), name});
  if (it == index_.end()) return out;
  for (uint64_t id : it->second) out.push_back(&entities_[id - 1]);
  return out;
}

std::vector<const Entity*> Catalog::Lineage(uint64_t id, bool downstream,
                                            size_t max_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entity*> out;
  if (id == 0 || id > entities_.size()) return out;
  std::set<uint64_t> visited = {id};
  std::vector<std::pair<uint64_t, size_t>> frontier = {{id, 0}};
  while (!frontier.empty()) {
    auto [current, depth] = frontier.back();
    frontier.pop_back();
    if (depth >= max_depth) continue;
    for (const Edge& edge : edges_) {
      // Upstream: follow edges from current to what it depends on
      // (src == current). Downstream: who depends on current (dst ==
      // current).
      uint64_t next = 0;
      if (!downstream && edge.src == current) next = edge.dst;
      if (downstream && edge.dst == current) next = edge.src;
      if (next == 0 || visited.count(next) > 0) continue;
      visited.insert(next);
      out.push_back(&entities_[next - 1]);
      frontier.push_back({next, depth + 1});
    }
  }
  return out;
}

size_t Catalog::num_entities() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entities_.size();
}

size_t Catalog::num_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

}  // namespace flock::prov
