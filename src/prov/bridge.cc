#include "prov/bridge.h"

#include "common/string_util.h"

namespace flock::prov {

Status LinkDatasetToTable(Catalog* catalog, const std::string& dataset,
                          const std::string& table) {
  uint64_t dataset_id =
      catalog->GetOrCreate(EntityType::kDataset, dataset);
  uint64_t table_id =
      catalog->GetOrCreate(EntityType::kTable, ToLower(table));
  catalog->AddEdge(dataset_id, table_id, EdgeType::kDerivesFrom);
  return Status::OK();
}

Status LinkDatasetToColumn(Catalog* catalog, const std::string& dataset,
                           const std::string& table,
                           const std::string& column) {
  uint64_t dataset_id =
      catalog->GetOrCreate(EntityType::kDataset, dataset);
  uint64_t table_id =
      catalog->GetOrCreate(EntityType::kTable, ToLower(table));
  uint64_t column_id = catalog->GetOrCreate(
      EntityType::kColumn, ToLower(table) + "." + ToLower(column));
  catalog->AddEdge(table_id, column_id, EdgeType::kContains);
  catalog->AddEdge(dataset_id, column_id, EdgeType::kDerivesFrom);
  return Status::OK();
}

std::vector<const Entity*> FindImpactedModels(const Catalog& catalog,
                                              const std::string& table,
                                              const std::string& column) {
  std::vector<const Entity*> out;
  auto column_id = catalog.Find(EntityType::kColumn,
                                ToLower(table) + "." + ToLower(column));
  if (!column_id.ok()) return out;
  for (const Entity* entity :
       catalog.Lineage(*column_id, /*downstream=*/true)) {
    if (entity->type == EntityType::kModel) out.push_back(entity);
  }
  return out;
}

std::vector<const Entity*> ModelTrainingSources(const Catalog& catalog,
                                                const std::string& model) {
  std::vector<const Entity*> out;
  auto model_id = catalog.Find(EntityType::kModel, ToLower(model));
  if (!model_id.ok()) return out;
  for (const Entity* entity :
       catalog.Lineage(*model_id, /*downstream=*/false)) {
    if (entity->type == EntityType::kTable ||
        entity->type == EntityType::kColumn ||
        entity->type == EntityType::kDataset) {
      out.push_back(entity);
    }
  }
  return out;
}

}  // namespace flock::prov
