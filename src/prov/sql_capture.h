#ifndef FLOCK_PROV_SQL_CAPTURE_H_
#define FLOCK_PROV_SQL_CAPTURE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status_or.h"
#include "prov/catalog.h"
#include "storage/database.h"

namespace flock::prov {

/// Coarse-grained provenance extracted from one SQL statement: input
/// tables/columns and the written table (the paper's eager capture
/// "parses [the query] to extract coarse-grained provenance information —
/// input tables and columns that affected the output, with connections
/// modelled as a graph").
struct CapturedStatement {
  std::string kind;  // "SELECT", "INSERT", ...
  std::vector<std::string> input_tables;
  std::vector<std::pair<std::string, std::string>> input_columns;
  std::string output_table;     // DML target / created table
  bool creates_version = false;  // mutation -> new table version
  /// Columns written by DML (UPDATE SET targets; INSERT target list, or
  /// every table column when unspecified). Each gets a new version entity.
  std::vector<std::string> written_columns;
  std::vector<std::string> created_columns;  // CREATE TABLE columns
  std::string model_name;                    // CREATE/DROP MODEL
};

/// Parses `sql` (one statement) and extracts its provenance summary. When
/// `db` is provided, unqualified columns are resolved against table
/// schemas; otherwise only qualified references resolve.
StatusOr<CapturedStatement> AnalyzeStatement(const std::string& sql,
                                             const storage::Database* db);

struct CaptureStats {
  size_t statements = 0;
  size_t parse_failures = 0;
  double total_latency_ms = 0.0;
};

/// The SQL provenance module. Two capture modes (paper §4.2):
///  * **eager** — `CaptureStatement` is invoked per executed statement
///    (wire it to SqlEngine::set_statement_observer);
///  * **lazy** — `CaptureLog` replays a query log after the fact.
/// Both funnel into the same Catalog.
class SqlCaptureModule {
 public:
  SqlCaptureModule(Catalog* catalog, const storage::Database* db)
      : catalog_(catalog), db_(db) {}

  /// Captures one statement (eager mode). Parse failures are recorded in
  /// stats and reported, but leave the catalog consistent.
  Status CaptureStatement(const std::string& sql);

  /// Captures a whole query log (lazy mode); parse failures are skipped.
  Status CaptureLog(const std::vector<std::string>& log);

  const CaptureStats& stats() const { return stats_; }
  Catalog* catalog() { return catalog_; }

 private:
  Status Ingest(const std::string& sql, const CapturedStatement& info);

  Catalog* catalog_;
  const storage::Database* db_;
  CaptureStats stats_;
  size_t query_counter_ = 0;
};

}  // namespace flock::prov

#endif  // FLOCK_PROV_SQL_CAPTURE_H_
