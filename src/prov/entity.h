#ifndef FLOCK_PROV_ENTITY_H_
#define FLOCK_PROV_ENTITY_H_

#include <cstdint>
#include <map>
#include <string>

namespace flock::prov {

/// Polymorphic entity kinds (paper §4.2, C1: "data elements in EGML
/// workloads are polymorphic — tables, columns, rows, ML models,
/// hyperparameters — with inherent temporal dimensions").
enum class EntityType {
  kTable,
  kColumn,
  kQuery,
  kQueryTemplate,  // compression: many queries sharing a normalized text
  kScript,
  kModel,
  kHyperparameter,
  kMetric,
  kDataset,
  kFeature,
  kVersionRun,  // compression: a collapsed run of consecutive versions
};

const char* EntityTypeName(EntityType type);

/// Typed, versioned lineage edges.
enum class EdgeType {
  kReads,        // query/script -> table/column/dataset
  kWrites,       // query -> table version
  kContains,     // table -> column, script -> model
  kDerivesFrom,  // model/dataset -> upstream data
  kTrains,       // dataset -> model
  kUsesFeature,  // model -> feature
  kEvaluates,    // metric -> model
  kVersionOf,    // version entity -> base entity
  kHasParam,     // model -> hyperparameter
};

const char* EdgeTypeName(EdgeType type);

/// One node in the provenance graph. Identity is (type, name, version);
/// versions make the data model temporal (an INSERT to a table creates a
/// new version of the table entity, exactly as the paper describes).
struct Entity {
  uint64_t id = 0;
  EntityType type = EntityType::kTable;
  std::string name;
  uint64_t version = 1;
  std::map<std::string, std::string> properties;
};

struct Edge {
  uint64_t src = 0;
  uint64_t dst = 0;
  EdgeType type = EdgeType::kReads;
};

}  // namespace flock::prov

#endif  // FLOCK_PROV_ENTITY_H_
