#include "prov/compression.h"

#include <cctype>
#include <map>
#include <set>

#include "common/hash.h"

namespace flock::prov {

std::string NormalizeQuery(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  bool last_space = false;
  while (i < sql.size()) {
    char c = sql[i];
    if (c == '\'') {
      // String literal -> ?
      ++i;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            i += 2;
            continue;
          }
          break;
        }
        ++i;
      }
      if (i < sql.size()) ++i;  // closing quote
      out.push_back('?');
      last_space = false;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (out.empty() ||
         !(std::isalnum(static_cast<unsigned char>(out.back())) ||
           out.back() == '_'))) {
      // Numeric literal (not part of an identifier) -> ?
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > 0 &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      out.push_back('?');
      last_space = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space && !out.empty()) out.push_back(' ');
      last_space = true;
      ++i;
      continue;
    }
    out.push_back(std::toupper(static_cast<unsigned char>(c)));
    last_space = false;
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Status CompressCatalog(const Catalog& in, Catalog* out,
                       CompressionStats* stats) {
  if (out->num_entities() != 0) {
    return Status::InvalidArgument("output catalog must be empty");
  }
  stats->entities_before = in.num_entities();
  stats->edges_before = in.num_edges();

  // Pass 1: map every input entity to an output entity.
  std::map<uint64_t, uint64_t> remap;
  std::map<std::string, uint64_t> template_counts;  // out-id keyed by name
  for (const Entity& entity : in.entities()) {
    uint64_t mapped = 0;
    switch (entity.type) {
      case EntityType::kQuery: {
        auto sql_it = entity.properties.find("sql");
        std::string normalized =
            sql_it != entity.properties.end()
                ? NormalizeQuery(sql_it->second)
                : entity.name;
        std::string key =
            "tpl_" + std::to_string(HashString(normalized) & 0xFFFFFFFF);
        mapped = out->GetOrCreate(EntityType::kQueryTemplate, key);
        FLOCK_RETURN_NOT_OK(out->SetProperty(mapped, "template",
                                             normalized));
        uint64_t count = ++template_counts[key];
        FLOCK_RETURN_NOT_OK(out->SetProperty(
            mapped, "instance_count", std::to_string(count)));
        break;
      }
      default: {
        if (entity.version > 1) {
          // Version-run summarization: all versions >= 2 of an entity fold
          // into a single run node; version 1 is the base entity.
          mapped = out->GetOrCreate(
              EntityType::kVersionRun,
              std::string(EntityTypeName(entity.type)) + ":" +
                  entity.name + "@run");
          // The run remembers how far it extends.
          FLOCK_RETURN_NOT_OK(out->SetProperty(
              mapped, "max_version", std::to_string(entity.version)));
        } else {
          mapped = out->GetOrCreate(entity.type, entity.name);
        }
        break;
      }
    }
    remap[entity.id] = mapped;
  }

  // Pass 2: re-point edges, deduplicating and dropping self-loops.
  std::set<std::tuple<uint64_t, uint64_t, int>> seen;
  for (const Edge& edge : in.edges()) {
    uint64_t src = remap[edge.src];
    uint64_t dst = remap[edge.dst];
    if (src == dst) continue;  // collapsed (e.g. version chains)
    auto key = std::make_tuple(src, dst, static_cast<int>(edge.type));
    if (!seen.insert(key).second) continue;
    out->AddEdge(src, dst, edge.type);
  }

  stats->entities_after = out->num_entities();
  stats->edges_after = out->num_edges();
  return Status::OK();
}

}  // namespace flock::prov
