#include "prov/sql_capture.h"

#include <set>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace flock::prov {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;
using sql::Statement;
using sql::StatementKind;

/// Alias -> table name bindings of a FROM clause.
struct AliasMap {
  std::vector<std::pair<std::string, std::string>> entries;

  void Add(const sql::TableRef& ref) {
    entries.emplace_back(ref.alias.empty() ? ref.table_name : ref.alias,
                         ref.table_name);
  }

  /// Resolves an alias to a table name ("" if unknown).
  std::string Resolve(const std::string& alias) const {
    for (const auto& [a, t] : entries) {
      if (EqualsIgnoreCase(a, alias)) return t;
    }
    return "";
  }
};

void CollectColumns(
    const Expr& e, const AliasMap& aliases, const storage::Database* db,
    std::set<std::pair<std::string, std::string>>* columns) {
  sql::VisitExpr(e, [&](const Expr& node) {
    if (node.kind != ExprKind::kColumnRef) return;
    if (!node.table_name.empty()) {
      std::string table = aliases.Resolve(node.table_name);
      if (!table.empty()) {
        columns->insert({ToLower(table), ToLower(node.column_name)});
      }
      return;
    }
    // Unqualified: resolve against table schemas when available.
    if (db == nullptr) return;
    for (const auto& [alias, table] : aliases.entries) {
      auto t = db->GetTable(table);
      if (t.ok() && (*t)->schema().FindColumn(node.column_name)) {
        columns->insert({ToLower(table), ToLower(node.column_name)});
        return;  // first match wins (coarse-grained capture)
      }
    }
  });
}

void AnalyzeSelect(const SelectStatement& select,
                   const storage::Database* db, CapturedStatement* out) {
  AliasMap aliases;
  if (select.from.has_value()) {
    aliases.Add(*select.from);
    out->input_tables.push_back(ToLower(select.from->table_name));
  }
  for (const auto& join : select.joins) {
    aliases.Add(join.table);
    out->input_tables.push_back(ToLower(join.table.table_name));
  }
  std::set<std::pair<std::string, std::string>> columns;
  for (const auto& item : select.select_list) {
    if (item.expr) CollectColumns(*item.expr, aliases, db, &columns);
  }
  if (select.where) CollectColumns(*select.where, aliases, db, &columns);
  for (const auto& join : select.joins) {
    if (join.condition) {
      CollectColumns(*join.condition, aliases, db, &columns);
    }
  }
  for (const auto& g : select.group_by) {
    CollectColumns(*g, aliases, db, &columns);
  }
  if (select.having) CollectColumns(*select.having, aliases, db, &columns);
  for (const auto& o : select.order_by) {
    CollectColumns(*o.expr, aliases, db, &columns);
  }
  out->input_columns.assign(columns.begin(), columns.end());
}

}  // namespace

StatusOr<CapturedStatement> AnalyzeStatement(const std::string& sql,
                                             const storage::Database* db) {
  FLOCK_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::Parser::Parse(sql));
  CapturedStatement out;
  switch (stmt->kind()) {
    case StatementKind::kSelect: {
      out.kind = "SELECT";
      AnalyzeSelect(static_cast<const SelectStatement&>(*stmt), db, &out);
      break;
    }
    case StatementKind::kInsert: {
      const auto& insert = static_cast<const sql::InsertStatement&>(*stmt);
      out.kind = "INSERT";
      out.output_table = ToLower(insert.table_name);
      out.creates_version = true;
      if (!insert.columns.empty()) {
        for (const auto& col : insert.columns) {
          out.written_columns.push_back(ToLower(col));
        }
      } else if (db != nullptr) {
        auto table = db->GetTable(insert.table_name);
        if (table.ok()) {
          for (const auto& col : (*table)->schema().columns()) {
            out.written_columns.push_back(ToLower(col.name));
          }
        }
      }
      if (insert.select != nullptr) {
        AnalyzeSelect(*insert.select, db, &out);
      }
      break;
    }
    case StatementKind::kUpdate: {
      const auto& update = static_cast<const sql::UpdateStatement&>(*stmt);
      out.kind = "UPDATE";
      out.output_table = ToLower(update.table_name);
      out.creates_version = true;
      out.input_tables.push_back(ToLower(update.table_name));
      AliasMap aliases;
      sql::TableRef self;
      self.table_name = update.table_name;
      aliases.Add(self);
      std::set<std::pair<std::string, std::string>> columns;
      for (const auto& [col, expr] : update.assignments) {
        out.written_columns.push_back(ToLower(col));
        columns.insert({ToLower(update.table_name), ToLower(col)});
        CollectColumns(*expr, aliases, db, &columns);
      }
      if (update.where) {
        CollectColumns(*update.where, aliases, db, &columns);
      }
      out.input_columns.assign(columns.begin(), columns.end());
      break;
    }
    case StatementKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStatement&>(*stmt);
      out.kind = "DELETE";
      out.output_table = ToLower(del.table_name);
      out.creates_version = true;
      out.input_tables.push_back(ToLower(del.table_name));
      if (del.where) {
        AliasMap aliases;
        sql::TableRef self;
        self.table_name = del.table_name;
        aliases.Add(self);
        std::set<std::pair<std::string, std::string>> columns;
        CollectColumns(*del.where, aliases, db, &columns);
        out.input_columns.assign(columns.begin(), columns.end());
      }
      break;
    }
    case StatementKind::kCreateTable: {
      const auto& create =
          static_cast<const sql::CreateTableStatement&>(*stmt);
      out.kind = "CREATE TABLE";
      out.output_table = ToLower(create.table_name);
      for (const auto& col : create.schema.columns()) {
        out.created_columns.push_back(ToLower(col.name));
      }
      break;
    }
    case StatementKind::kDropTable:
      out.kind = "DROP TABLE";
      out.output_table = ToLower(
          static_cast<const sql::DropTableStatement&>(*stmt).table_name);
      break;
    case StatementKind::kCreateModel:
      out.kind = "CREATE MODEL";
      out.model_name = ToLower(
          static_cast<const sql::CreateModelStatement&>(*stmt).model_name);
      break;
    case StatementKind::kDropModel:
      out.kind = "DROP MODEL";
      out.model_name = ToLower(
          static_cast<const sql::DropModelStatement&>(*stmt).model_name);
      break;
    case StatementKind::kExplain:
      out.kind = "EXPLAIN";
      break;
  }
  return out;
}

Status SqlCaptureModule::CaptureStatement(const std::string& sql) {
  Stopwatch timer;
  auto info = AnalyzeStatement(sql, db_);
  if (!info.ok()) {
    ++stats_.statements;
    ++stats_.parse_failures;
    stats_.total_latency_ms += timer.ElapsedMillis();
    return info.status();
  }
  Status st = Ingest(sql, *info);
  ++stats_.statements;
  stats_.total_latency_ms += timer.ElapsedMillis();
  return st;
}

Status SqlCaptureModule::CaptureLog(const std::vector<std::string>& log) {
  for (const std::string& sql : log) {
    // Lazy mode tolerates unparseable entries (foreign dialects in real
    // query logs); they are counted and skipped.
    (void)CaptureStatement(sql);
  }
  return Status::OK();
}

Status SqlCaptureModule::Ingest(const std::string& sql,
                                const CapturedStatement& info) {
  uint64_t query = catalog_->GetOrCreate(
      EntityType::kQuery, "q" + std::to_string(query_counter_++));
  FLOCK_RETURN_NOT_OK(catalog_->SetProperty(query, "sql", sql));
  FLOCK_RETURN_NOT_OK(catalog_->SetProperty(query, "kind", info.kind));

  for (const std::string& table : info.input_tables) {
    uint64_t table_id = catalog_->GetOrCreate(EntityType::kTable, table);
    catalog_->AddEdge(query, table_id, EdgeType::kReads);
  }
  for (const auto& [table, column] : info.input_columns) {
    uint64_t table_id = catalog_->GetOrCreate(EntityType::kTable, table);
    std::string column_name = table + "." + column;
    bool existed = catalog_->Find(EntityType::kColumn, column_name).ok();
    uint64_t column_id =
        catalog_->GetOrCreate(EntityType::kColumn, column_name);
    if (!existed) {
      catalog_->AddEdge(table_id, column_id, EdgeType::kContains);
    }
    catalog_->AddEdge(query, column_id, EdgeType::kReads);
  }
  if (!info.output_table.empty()) {
    if (info.creates_version) {
      // A mutation yields a new version of the table entity, and of every
      // written column (paper C1: data elements are polymorphic *and*
      // temporal — "a table having as many versions as the insertions
      // that have happened to it").
      uint64_t version_id =
          catalog_->NewVersion(EntityType::kTable, info.output_table);
      catalog_->AddEdge(query, version_id, EdgeType::kWrites);
      for (const std::string& column : info.written_columns) {
        uint64_t column_version = catalog_->NewVersion(
            EntityType::kColumn, info.output_table + "." + column);
        catalog_->AddEdge(query, column_version, EdgeType::kWrites);
        catalog_->AddEdge(version_id, column_version,
                          EdgeType::kContains);
      }
    } else {
      uint64_t table_id =
          catalog_->GetOrCreate(EntityType::kTable, info.output_table);
      catalog_->AddEdge(query, table_id, EdgeType::kWrites);
      for (const std::string& column : info.created_columns) {
        uint64_t column_id = catalog_->GetOrCreate(
            EntityType::kColumn, info.output_table + "." + column);
        catalog_->AddEdge(table_id, column_id, EdgeType::kContains);
      }
    }
  }
  if (!info.model_name.empty()) {
    uint64_t model_id =
        catalog_->GetOrCreate(EntityType::kModel, info.model_name);
    catalog_->AddEdge(query, model_id, EdgeType::kWrites);
  }
  return Status::OK();
}

}  // namespace flock::prov
