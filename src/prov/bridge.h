#ifndef FLOCK_PROV_BRIDGE_H_
#define FLOCK_PROV_BRIDGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "prov/catalog.h"

namespace flock::prov {

/// Cross-system provenance consolidation (paper §4.2, challenge C3): the
/// catalog bridges the SQL module and the Python/pipeline module so that
/// "if we change a column in a database, models trained in Python that
/// depend on this column may need to be invalidated and retrained".

/// Declares that a pipeline-level dataset (e.g. the result of
/// `db.query('SELECT ...')` in a training script) derives from a database
/// table; the link makes table/column changes flow into script lineage.
Status LinkDatasetToTable(Catalog* catalog, const std::string& dataset,
                          const std::string& table);

/// Declares that a dataset derives from a specific column.
Status LinkDatasetToColumn(Catalog* catalog, const std::string& dataset,
                           const std::string& table,
                           const std::string& column);

/// Models transitively derived from `table.column` — the invalidation set
/// to retrain when that column changes.
std::vector<const Entity*> FindImpactedModels(const Catalog& catalog,
                                              const std::string& table,
                                              const std::string& column);

/// Upstream audit: every table/column/dataset entity a model's lineage
/// reaches (answers "how was this model derived, and from which data?").
std::vector<const Entity*> ModelTrainingSources(const Catalog& catalog,
                                                const std::string& model);

}  // namespace flock::prov

#endif  // FLOCK_PROV_BRIDGE_H_
