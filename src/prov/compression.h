#ifndef FLOCK_PROV_COMPRESSION_H_
#define FLOCK_PROV_COMPRESSION_H_

#include <string>

#include "common/status.h"
#include "prov/catalog.h"

namespace flock::prov {

struct CompressionStats {
  size_t entities_before = 0;
  size_t edges_before = 0;
  size_t entities_after = 0;
  size_t edges_after = 0;

  size_t SizeBefore() const { return entities_before + edges_before; }
  size_t SizeAfter() const { return entities_after + edges_after; }
  double Ratio() const {
    return SizeBefore() == 0
               ? 1.0
               : static_cast<double>(SizeAfter()) /
                     static_cast<double>(SizeBefore());
  }
};

/// Normalizes a SQL string into its template: literals become '?', and
/// whitespace collapses. Queries instantiated from the same template
/// normalize identically.
std::string NormalizeQuery(const std::string& sql);

/// The capture-optimization pass the paper calls out under C1 ("we develop
/// optimized capture techniques, through compression and summarization"):
///
///  * **template deduplication** — the many queries sharing a normalized
///    template collapse into one QueryTemplate entity carrying a count;
///  * **version-run summarization** — long chains of table versions (one
///    per INSERT) collapse into a single VersionRun entity per table.
///
/// Builds the compressed graph into `out` (must be empty) and fills
/// `stats`.
Status CompressCatalog(const Catalog& in, Catalog* out,
                       CompressionStats* stats);

}  // namespace flock::prov

#endif  // FLOCK_PROV_COMPRESSION_H_
