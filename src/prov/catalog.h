#ifndef FLOCK_PROV_CATALOG_H_
#define FLOCK_PROV_CATALOG_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "prov/entity.h"

namespace flock::prov {

/// Observes committed catalog mutations. The durability subsystem installs
/// one to mirror the provenance graph into the write-ahead log; callbacks
/// fire under the catalog lock, after the mutation is applied. Listeners
/// must not call back into the catalog.
class CatalogListener {
 public:
  virtual ~CatalogListener() = default;
  virtual void OnEntity(const Entity& entity) = 0;
  virtual void OnEdge(const Edge& edge) = 0;
  virtual void OnProperty(uint64_t id, const std::string& key,
                          const std::string& value) = 0;
};

/// The provenance catalog — Flock's stand-in for Apache Atlas (paper §4.2:
/// "the Catalog stores all the provenance information and acts as the
/// bridge between the SQL and the Python provenance modules").
///
/// Entities are identified by (type, name, version); `GetOrCreate` returns
/// the latest version, `NewVersion` appends the next one. All data stored
/// here is versioned, addressing the temporal half of challenge C1.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Returns the latest version of (type, name), creating version 1 if the
  /// entity does not exist.
  uint64_t GetOrCreate(EntityType type, const std::string& name);

  /// Creates version latest+1 of (type, name) and links it to the previous
  /// version with a kVersionOf edge. Creates version 1 if absent.
  uint64_t NewVersion(EntityType type, const std::string& name);

  /// Looks up a specific version (0 = latest).
  StatusOr<uint64_t> Find(EntityType type, const std::string& name,
                          uint64_t version = 0) const;

  void AddEdge(uint64_t src, uint64_t dst, EdgeType type);

  Status SetProperty(uint64_t id, const std::string& key,
                     const std::string& value);

  StatusOr<const Entity*> GetEntity(uint64_t id) const;

  /// All versions of (type, name), oldest first.
  std::vector<const Entity*> Versions(EntityType type,
                                      const std::string& name) const;

  /// Entities reachable from `id` following edges upstream (dst -> src over
  /// kReads/kDerivesFrom/... reversed) or downstream. Used for audits
  /// ("which data trained this model?") and invalidation ("which models
  /// depend on this column?").
  std::vector<const Entity*> Lineage(uint64_t id, bool downstream,
                                     size_t max_depth = 64) const;

  size_t num_entities() const;
  size_t num_edges() const;
  /// Provenance graph size as the paper reports it: nodes + edges.
  size_t GraphSize() const { return num_entities() + num_edges(); }

  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Installs a mutation listener (nullptr to clear). Set during
  /// single-threaded setup, e.g. after recovery completes.
  void set_listener(CatalogListener* listener);

  /// Wholesale state replacement from a checkpoint snapshot. Entity ids
  /// must be positional (entities[i].id == i + 1) — DataLoss otherwise.
  Status Restore(std::vector<Entity> entities, std::vector<Edge> edges);

  /// WAL replay: re-creates an entity that must receive exactly `id`
  /// (ids are positional, so replay in log order reproduces them).
  /// DataLoss when the id does not line up with the catalog's next slot.
  Status ReplayEntity(uint64_t id, EntityType type, const std::string& name,
                      uint64_t version);

 private:
  uint64_t CreateEntity(EntityType type, const std::string& name,
                        uint64_t version);

  mutable std::mutex mu_;
  std::vector<Entity> entities_;  // id = index + 1
  std::vector<Edge> edges_;
  // (type, name) -> entity ids of all versions (ascending).
  std::map<std::pair<int, std::string>, std::vector<uint64_t>> index_;
  CatalogListener* listener_ = nullptr;  // not owned
};

}  // namespace flock::prov

#endif  // FLOCK_PROV_CATALOG_H_
