#ifndef FLOCK_ML_DENSE_KERNEL_H_
#define FLOCK_ML_DENSE_KERNEL_H_

#include <vector>

#include "common/status_or.h"
#include "ml/graph.h"
#include "ml/matrix.h"

namespace flock::ml {

/// Reusable scratch buffers for DenseKernel execution. One per thread (or
/// per call site); the kernel itself stays immutable and shareable. The
/// buffers grow to the widest step of whichever kernels score through them
/// and are never shrunk, so steady-state scoring performs no allocation.
class DenseKernelScratch {
 public:
  DenseKernelScratch() = default;

 private:
  friend class DenseKernel;
  std::vector<double> a_, b_;
};

/// Compiled dense-slot scoring kernel — the production scoring path.
///
/// Where `RowScorer` interprets a pipeline through per-step named-feature
/// maps (the Figure-4 "scikit-learn" baseline) and `GraphRuntime`
/// re-allocates one matrix per node per invocation, the dense kernel does
/// all name→slot resolution and plan validation once at construction:
/// every step is lowered to a fixed-width transform over contiguous
/// `double` buffers, with attributes (imputer fills, scale/offset vectors,
/// one-hot layout, gemm weights, trees) copied into the kernel so it is
/// self-contained and immutable afterwards.
///
/// Execution contracts:
///  * `ScoreRow` scores a single dense row with zero allocation (given a
///    warmed scratch).
///  * `ScoreBatch` scores a whole matrix/morsel in one call, processing
///    rows in blocks so elementwise steps run over contiguous buffers and
///    tree ensembles traverse *tree-major* over the block (each tree's
///    nodes stay hot in cache across the rows of the block). Summation
///    order per row is unchanged, so results are bitwise identical to
///    `ScoreRow` and to `GraphRuntime`.
///
/// Only linear single-input op chains are compiled (which is everything
/// `Pipeline::Compile` and the cross-optimizer emit). Graphs using Concat
/// or non-chain wiring leave the kernel in a not-ok state and callers fall
/// back to `GraphRuntime`; `status()` says why.
class DenseKernel {
 public:
  /// Compiles `graph` into a dense step plan. The graph is only read
  /// during construction; it need not outlive the kernel.
  explicit DenseKernel(const ModelGraph& graph);

  /// True when the graph compiled to a dense plan; `ScoreRow`/`ScoreBatch`
  /// must only be called on an ok kernel.
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  size_t input_cols() const { return input_cols_; }
  size_t num_steps() const { return steps_.size(); }

  /// Scores one dense row of exactly `input_cols()` values (categoricals
  /// index-encoded, NULLs as NaN — the AssembleFeatures layout).
  double ScoreRow(const double* row, DenseKernelScratch* scratch) const;

  /// Scores every row of `raw` (`raw.cols()` must equal `input_cols()`),
  /// appending into `out` (resized to raw.rows()). Reuses `scratch` across
  /// blocks; no per-row allocation.
  Status ScoreBatch(const Matrix& raw, DenseKernelScratch* scratch,
                    std::vector<double>* out) const;

  /// Rows per block in ScoreBatch; exposed for tests/benches.
  static constexpr size_t kBlockRows = 256;

 private:
  struct Step {
    OpType op = OpType::kIdentity;
    size_t in_cols = 0;
    size_t out_cols = 0;
    // kImputer
    std::vector<double> fill;
    // kScaler: out = (in - offset) * scale
    std::vector<double> offset, scale;
    // kOneHot: per input slot, 0 = pass-through, k = expand to k slots
    std::vector<int> onehot_sizes;
    // kGemm
    Matrix weights;  // [out_cols x in_cols]
    std::vector<double> bias;
    // kTreeEnsemble
    std::vector<Tree> trees;
    double tree_base = 0.0;
    bool tree_average = false;
    // kBinarizer
    double binarizer_threshold = 0.5;
  };

  /// Runs all steps over `n` rows held densely in scratch buffer `a_`
  /// (row-major, in_cols wide). Leaves the output in whichever buffer the
  /// last step wrote and returns a pointer to it.
  const double* Execute(size_t n, DenseKernelScratch* scratch) const;

  Status status_;
  size_t input_cols_ = 0;
  size_t max_cols_ = 0;  // widest step output (scratch sizing)
  std::vector<Step> steps_;
};

}  // namespace flock::ml

#endif  // FLOCK_ML_DENSE_KERNEL_H_
