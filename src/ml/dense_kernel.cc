#include "ml/dense_kernel.h"

#include <algorithm>
#include <cmath>

#include "common/cancel.h"

namespace flock::ml {

DenseKernel::DenseKernel(const ModelGraph& graph) {
  input_cols_ = graph.input_cols();
  max_cols_ = input_cols_;
  const auto& nodes = graph.nodes();
  if (nodes.empty() || graph.output_id() <= 0 ||
      static_cast<size_t>(graph.output_id()) >= nodes.size()) {
    status_ = Status::InvalidArgument(
        "dense kernel: graph has no executable nodes");
    return;
  }
  // The kernel executes nodes 1..output_id as a straight-line chain over
  // ping-pong buffers, so each node must consume exactly the previous
  // node's output. Anything else (Concat, DAG wiring, dangling suffix
  // nodes) falls back to GraphRuntime.
  for (size_t i = 1; i <= static_cast<size_t>(graph.output_id()); ++i) {
    const GraphNode& node = nodes[i];
    if (node.inputs.size() != 1 ||
        node.inputs[0] != static_cast<int>(i) - 1) {
      status_ = Status::InvalidArgument(
          "dense kernel: non-chain graph wiring at node " +
          std::to_string(i));
      steps_.clear();
      return;
    }
    Step step;
    step.op = node.op;
    step.in_cols = steps_.empty() ? input_cols_ : steps_.back().out_cols;
    step.out_cols = node.output_cols;
    switch (node.op) {
      case OpType::kImputer:
        step.fill = node.imputer_values;
        break;
      case OpType::kScaler:
        step.offset = node.offset;
        step.scale = node.scale;
        break;
      case OpType::kOneHot:
        step.onehot_sizes = node.onehot_sizes;
        break;
      case OpType::kGemm:
        step.weights = node.gemm_weights;
        step.bias = node.gemm_bias;
        break;
      case OpType::kTreeEnsemble:
        step.trees = node.trees;
        step.tree_base = node.tree_base;
        step.tree_average = node.tree_average;
        break;
      case OpType::kSigmoid:
      case OpType::kRelu:
      case OpType::kIdentity:
        break;
      case OpType::kBinarizer:
        step.binarizer_threshold = node.binarizer_threshold;
        break;
      default:
        status_ = Status::InvalidArgument(
            "dense kernel: unsupported op " +
            std::string(OpTypeName(node.op)));
        steps_.clear();
        return;
    }
    max_cols_ = std::max(max_cols_, step.out_cols);
    steps_.push_back(std::move(step));
  }
  if (steps_.empty()) {
    status_ = Status::InvalidArgument("dense kernel: empty plan");
  }
}

const double* DenseKernel::Execute(size_t n,
                                   DenseKernelScratch* scratch) const {
  double* cur = scratch->a_.data();
  double* alt = scratch->b_.data();
  for (const Step& step : steps_) {
    const size_t in_cols = step.in_cols;
    const size_t out_cols = step.out_cols;
    switch (step.op) {
      case OpType::kImputer:
        for (size_t r = 0; r < n; ++r) {
          double* row = cur + r * in_cols;
          for (size_t c = 0; c < in_cols; ++c) {
            if (std::isnan(row[c])) row[c] = step.fill[c];
          }
        }
        break;
      case OpType::kScaler:
        for (size_t r = 0; r < n; ++r) {
          double* row = cur + r * in_cols;
          for (size_t c = 0; c < in_cols; ++c) {
            row[c] = (row[c] - step.offset[c]) * step.scale[c];
          }
        }
        break;
      case OpType::kOneHot:
        for (size_t r = 0; r < n; ++r) {
          const double* src = cur + r * in_cols;
          double* dst = alt + r * out_cols;
          size_t pos = 0;
          for (size_t c = 0; c < in_cols; ++c) {
            const int k = step.onehot_sizes[c];
            if (k == 0) {
              dst[pos++] = src[c];
            } else {
              const int64_t idx = std::isnan(src[c])
                                      ? int64_t{-1}
                                      : static_cast<int64_t>(src[c]);
              for (int j = 0; j < k; ++j) {
                dst[pos + static_cast<size_t>(j)] = (idx == j) ? 1.0 : 0.0;
              }
              pos += static_cast<size_t>(k);
            }
          }
        }
        std::swap(cur, alt);
        break;
      case OpType::kGemm:
        for (size_t r = 0; r < n; ++r) {
          const double* src = cur + r * in_cols;
          double* dst = alt + r * out_cols;
          for (size_t j = 0; j < out_cols; ++j) {
            double acc = step.bias[j];
            const double* w = step.weights.row(j);
            for (size_t c = 0; c < in_cols; ++c) acc += w[c] * src[c];
            dst[j] = acc;
          }
        }
        std::swap(cur, alt);
        break;
      case OpType::kTreeEnsemble: {
        // Tree-major traversal: each tree's nodes stay cache-hot across
        // the whole block. Per row the accumulation order is still
        // tree 0, 1, ... so scores are bitwise identical to the row-major
        // order GraphRuntime uses.
        for (size_t r = 0; r < n; ++r) alt[r] = step.tree_base;
        for (const Tree& tree : step.trees) {
          for (size_t r = 0; r < n; ++r) {
            alt[r] += tree.Predict(cur + r * in_cols);
          }
        }
        if (step.tree_average && !step.trees.empty()) {
          const double norm =
              1.0 / static_cast<double>(step.trees.size());
          for (size_t r = 0; r < n; ++r) {
            alt[r] = step.tree_base + (alt[r] - step.tree_base) * norm;
          }
        }
        std::swap(cur, alt);
        break;
      }
      case OpType::kSigmoid:
        for (size_t i = 0; i < n * in_cols; ++i) {
          cur[i] = 1.0 / (1.0 + std::exp(-cur[i]));
        }
        break;
      case OpType::kRelu:
        for (size_t i = 0; i < n * in_cols; ++i) {
          cur[i] = cur[i] > 0.0 ? cur[i] : 0.0;
        }
        break;
      case OpType::kBinarizer:
        for (size_t i = 0; i < n * in_cols; ++i) {
          cur[i] = cur[i] > step.binarizer_threshold ? 1.0 : 0.0;
        }
        break;
      case OpType::kIdentity:
      default:
        break;
    }
  }
  return cur;
}

double DenseKernel::ScoreRow(const double* row,
                             DenseKernelScratch* scratch) const {
  const size_t need = max_cols_;
  if (scratch->a_.size() < need) scratch->a_.resize(need);
  if (scratch->b_.size() < need) scratch->b_.resize(need);
  std::copy(row, row + input_cols_, scratch->a_.data());
  return Execute(1, scratch)[0];
}

Status DenseKernel::ScoreBatch(const Matrix& raw,
                               DenseKernelScratch* scratch,
                               std::vector<double>* out) const {
  FLOCK_RETURN_NOT_OK(status_);
  if (raw.cols() != input_cols_) {
    return Status::InvalidArgument(
        "dense kernel expects " + std::to_string(input_cols_) +
        " input columns, got " + std::to_string(raw.cols()));
  }
  const size_t n = raw.rows();
  out->resize(n);
  const size_t block = std::min(n == 0 ? size_t{1} : n, kBlockRows);
  const size_t need = block * max_cols_;
  if (scratch->a_.size() < need) scratch->a_.resize(need);
  if (scratch->b_.size() < need) scratch->b_.resize(need);
  // The per-block cancellation poll: with deep ensembles a single batch
  // can take tens of milliseconds, so the executor's morsel-boundary
  // check alone would not bound kill latency. The request token arrives
  // thread-locally (installed by the executor's drive loop) because
  // scoring is reached through expression evaluation, which has no
  // context parameter path.
  const CancelToken& cancel = CancelToken::Current();
  for (size_t begin = 0; begin < n; begin += block) {
    FLOCK_RETURN_NOT_OK(cancel.Check("dense_kernel.block"));
    const size_t rows = std::min(block, n - begin);
    for (size_t r = 0; r < rows; ++r) {
      const double* src = raw.row(begin + r);
      std::copy(src, src + input_cols_,
                scratch->a_.data() + r * input_cols_);
    }
    const double* scores = Execute(rows, scratch);
    // The final step is width >= 1 per row; score is column 0. When the
    // last step was in-place (e.g. trailing Sigmoid over a 1-wide
    // buffer), rows are packed at the final step's output width.
    const size_t stride = steps_.back().out_cols;
    for (size_t r = 0; r < rows; ++r) {
      (*out)[begin + r] = scores[r * stride];
    }
  }
  return Status::OK();
}

}  // namespace flock::ml
