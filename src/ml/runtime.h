#ifndef FLOCK_ML_RUNTIME_H_
#define FLOCK_ML_RUNTIME_H_

#include "common/status_or.h"
#include "ml/graph.h"
#include "ml/matrix.h"

namespace flock::ml {

/// Vectorized interpreter for ModelGraphs — the stand-in for ONNX Runtime.
///
/// Executes one kernel per node over the whole batch; this is the engine
/// used both standalone ("ORT" baseline in Figure 4) and inside the Flock
/// Predict operator ("SONNX"), where the SQL executor calls it once per
/// morsel from many threads (the runtime itself is stateless and
/// re-entrant).
class GraphRuntime {
 public:
  explicit GraphRuntime(const ModelGraph* graph) : graph_(graph) {}

  /// Runs the graph over `input` ([N x input_cols]).
  StatusOr<Matrix> Run(const Matrix& input) const;

  /// Runs only the prefix up to and including `node_id`, returning that
  /// node's output. Used by threshold push-up, which needs the featurized
  /// matrix feeding the tree ensemble without evaluating the ensemble.
  StatusOr<Matrix> RunToNode(const Matrix& input, int node_id) const;

  /// Convenience: runs and returns the first output column.
  StatusOr<std::vector<double>> RunToScores(const Matrix& input) const;

 private:
  StatusOr<Matrix> RunImpl(const Matrix& input, int stop_node) const;

  const ModelGraph* graph_;
};

/// Propagates per-column [min, max] value ranges through the graph's
/// featurizer prefix. Used by the ModelCompression rule: storage statistics
/// on the scanned columns become ranges over the tree-ensemble's feature
/// space, enabling static resolution of unreachable branches (paper §4.1,
/// "model compression exploiting input data statistics").
struct ColumnRange {
  double min = 0.0;
  double max = 0.0;
  bool known = false;
};

/// Returns the value ranges at `node_id`'s output given input ranges, or an
/// empty vector if ranges cannot be propagated to that node.
std::vector<ColumnRange> PropagateRanges(
    const ModelGraph& graph, int node_id,
    const std::vector<ColumnRange>& input_ranges);

/// Prunes every TreeEnsemble in `graph` whose input ranges are derivable
/// from `input_ranges`: branches that the data can never take are folded
/// away. Returns the number of tree nodes removed.
size_t CompressTreesWithRanges(ModelGraph* graph,
                               const std::vector<ColumnRange>& input_ranges);

}  // namespace flock::ml

#endif  // FLOCK_ML_RUNTIME_H_
