#ifndef FLOCK_ML_DATASET_H_
#define FLOCK_ML_DATASET_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "ml/matrix.h"

namespace flock::ml {

/// Supervised-learning dataset: features X, targets y (class labels as 0/1
/// doubles for binary classification, arbitrary reals for regression).
struct Dataset {
  Matrix x;
  std::vector<double> y;

  size_t size() const { return x.rows(); }
  size_t num_features() const { return x.cols(); }
};

/// Splits `data` into train/test with `test_fraction` held out (shuffled
/// deterministically by `seed`).
std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction,
                                           uint64_t seed);

/// Fraction of predictions on the correct side of 0.5.
double Accuracy(const std::vector<double>& scores,
                const std::vector<double>& labels);

/// Area under the ROC curve via rank statistic.
double Auc(const std::vector<double>& scores,
           const std::vector<double>& labels);

/// Root mean squared error.
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets);

}  // namespace flock::ml

#endif  // FLOCK_ML_DATASET_H_
