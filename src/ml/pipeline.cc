#include "ml/pipeline.h"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace flock::ml {

namespace {

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Zero-variance (or degenerate) standard deviations scale by 1.0 — the
/// feature passes through as `value - mean` instead of dividing by ~0.
/// FitFeaturizers never produces such stds, but SetScaler and
/// Deserialize accept caller-supplied statistics verbatim.
double GuardedStd(double sd) {
  return std::isfinite(sd) && std::abs(sd) > kMinScaleStd ? sd : 1.0;
}

/// Strict numeric parses for Deserialize. The stdlib std::sto* family
/// throws on garbage and silently accepts trailing junk ("12abc" → 12),
/// so a flipped byte in a stored model could either terminate the server
/// (uncaught std::invalid_argument) or load a subtly different model.
/// These require the whole token to parse, with no overflow; any miss is
/// reported as Corruption by the caller instead of crashing.
bool ParseSize(const std::string& tok, size_t* out) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return false;
  *out = static_cast<size_t>(v);
  return static_cast<unsigned long long>(*out) == v;
}

bool ParseInt32(const std::string& tok, int32_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

bool ParseDoubleStrict(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  // Overflow to ±HUGE_VAL is corruption; gradual underflow to a
  // subnormal (also ERANGE) is a value FmtDouble can legitimately emit.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  *out = v;
  return true;
}

}  // namespace

void Pipeline::SetInputs(std::vector<FeatureSpec> inputs) {
  inputs_ = std::move(inputs);
}

void Pipeline::FitFeaturizers(const Matrix& raw, bool with_imputer,
                              bool with_scaler) {
  const size_t f = raw.cols();
  const size_t n = raw.rows();
  std::vector<double> mean(f, 0.0), var(f, 0.0);
  std::vector<size_t> count(f, 0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = raw.row(r);
    for (size_t c = 0; c < f; ++c) {
      if (!std::isnan(row[c])) {
        mean[c] += row[c];
        ++count[c];
      }
    }
  }
  for (size_t c = 0; c < f; ++c) {
    if (count[c] > 0) mean[c] /= static_cast<double>(count[c]);
  }
  for (size_t r = 0; r < n; ++r) {
    const double* row = raw.row(r);
    for (size_t c = 0; c < f; ++c) {
      if (!std::isnan(row[c])) {
        double d = row[c] - mean[c];
        var[c] += d * d;
      }
    }
  }
  for (size_t c = 0; c < f; ++c) {
    var[c] = count[c] > 1 ? var[c] / static_cast<double>(count[c] - 1)
                          : 1.0;
  }

  if (with_imputer) {
    has_imputer_ = true;
    imputer_values_.assign(f, 0.0);
    for (size_t c = 0; c < f; ++c) {
      // Categorical fills round to a valid vocabulary index.
      if (c < inputs_.size() &&
          inputs_[c].kind == FeatureKind::kCategorical) {
        imputer_values_[c] = 0.0;
      } else {
        imputer_values_[c] = mean[c];
      }
    }
  }
  if (with_scaler) {
    has_scaler_ = true;
    scaler_mean_.assign(f, 0.0);
    scaler_std_.assign(f, 1.0);
    for (size_t c = 0; c < f; ++c) {
      if (c < inputs_.size() &&
          inputs_[c].kind == FeatureKind::kCategorical) {
        continue;  // categoricals pass through unscaled
      }
      scaler_mean_[c] = mean[c];
      double sd = std::sqrt(var[c]);
      scaler_std_[c] = sd > 1e-12 ? sd : 1.0;
    }
  }
}

void Pipeline::SetImputer(std::vector<double> fill_values) {
  has_imputer_ = true;
  imputer_values_ = std::move(fill_values);
}

void Pipeline::SetScaler(std::vector<double> means,
                         std::vector<double> stds) {
  has_scaler_ = true;
  scaler_mean_ = std::move(means);
  scaler_std_ = std::move(stds);
}

void Pipeline::SetLinearModel(LinearModel model) {
  model_type_ = ModelType::kLinear;
  linear_ = std::move(model);
}

void Pipeline::SetTreeModel(TreeEnsembleModel model) {
  model_type_ = ModelType::kTrees;
  trees_ = std::move(model);
}

size_t Pipeline::feature_width() const {
  size_t width = 0;
  for (const FeatureSpec& input : inputs_) {
    width += input.kind == FeatureKind::kCategorical
                 ? input.vocab.size()
                 : 1;
  }
  return width;
}

double Pipeline::EncodeCategorical(size_t input,
                                   const std::string& value) const {
  const FeatureSpec& spec = inputs_[input];
  for (size_t i = 0; i < spec.vocab.size(); ++i) {
    if (spec.vocab[i] == value) return static_cast<double>(i);
  }
  return std::nan("");
}

Matrix Pipeline::Transform(const Matrix& raw) const {
  const size_t n = raw.rows();
  const size_t f = inputs_.size();
  Matrix out(n, feature_width());
  std::vector<double> scratch(f);
  for (size_t r = 0; r < n; ++r) {
    const double* src = raw.row(r);
    for (size_t c = 0; c < f; ++c) {
      double v = src[c];
      if (has_imputer_ && std::isnan(v)) v = imputer_values_[c];
      if (has_scaler_) {
        v = (v - scaler_mean_[c]) / GuardedStd(scaler_std_[c]);
      }
      scratch[c] = v;
    }
    double* dst = out.row(r);
    size_t pos = 0;
    for (size_t c = 0; c < f; ++c) {
      if (inputs_[c].kind == FeatureKind::kCategorical) {
        size_t k = inputs_[c].vocab.size();
        int64_t idx = std::isnan(scratch[c])
                          ? -1
                          : static_cast<int64_t>(scratch[c]);
        for (size_t j = 0; j < k; ++j) {
          dst[pos + j] = (idx == static_cast<int64_t>(j)) ? 1.0 : 0.0;
        }
        pos += k;
      } else {
        dst[pos++] = scratch[c];
      }
    }
  }
  return out;
}

double Pipeline::ScoreRow(const double* raw) const {
  // Reference per-row path: assemble features, then apply the model.
  std::vector<double> features(feature_width(), 0.0);
  size_t pos = 0;
  for (size_t c = 0; c < inputs_.size(); ++c) {
    double v = raw[c];
    if (has_imputer_ && std::isnan(v)) v = imputer_values_[c];
    if (has_scaler_) {
      v = (v - scaler_mean_[c]) / GuardedStd(scaler_std_[c]);
    }
    if (inputs_[c].kind == FeatureKind::kCategorical) {
      size_t k = inputs_[c].vocab.size();
      int64_t idx = std::isnan(v) ? -1 : static_cast<int64_t>(v);
      if (idx >= 0 && idx < static_cast<int64_t>(k)) {
        features[pos + static_cast<size_t>(idx)] = 1.0;
      }
      pos += k;
    } else {
      features[pos++] = v;
    }
  }
  switch (model_type_) {
    case ModelType::kLinear:
      return linear_.Score(features.data());
    case ModelType::kTrees:
      return trees_.Score(features.data());
    case ModelType::kNone:
      return 0.0;
  }
  return 0.0;
}

StatusOr<ModelGraph> Pipeline::Compile() const {
  if (model_type_ == ModelType::kNone) {
    return Status::InvalidArgument("pipeline has no model");
  }
  const size_t f = inputs_.size();
  ModelGraph graph;
  int last = graph.SetInput(f);

  if (has_imputer_) {
    GraphNode node;
    node.op = OpType::kImputer;
    node.inputs = {last};
    node.imputer_values = imputer_values_;
    last = graph.AddNode(std::move(node));
  }
  if (has_scaler_) {
    GraphNode node;
    node.op = OpType::kScaler;
    node.inputs = {last};
    node.offset = scaler_mean_;
    node.scale.resize(f);
    for (size_t c = 0; c < f; ++c) {
      node.scale[c] = 1.0 / GuardedStd(scaler_std_[c]);
    }
    last = graph.AddNode(std::move(node));
  }
  bool any_categorical = false;
  for (const FeatureSpec& input : inputs_) {
    if (input.kind == FeatureKind::kCategorical) any_categorical = true;
  }
  if (any_categorical) {
    GraphNode node;
    node.op = OpType::kOneHot;
    node.inputs = {last};
    node.onehot_sizes.resize(f);
    for (size_t c = 0; c < f; ++c) {
      node.onehot_sizes[c] =
          inputs_[c].kind == FeatureKind::kCategorical
              ? static_cast<int>(inputs_[c].vocab.size())
              : 0;
    }
    last = graph.AddNode(std::move(node));
  }

  bool needs_sigmoid = false;
  if (model_type_ == ModelType::kLinear) {
    GraphNode node;
    node.op = OpType::kGemm;
    node.inputs = {last};
    node.gemm_weights = Matrix(1, linear_.weights.size());
    for (size_t c = 0; c < linear_.weights.size(); ++c) {
      node.gemm_weights.at(0, c) = linear_.weights[c];
    }
    node.gemm_bias = {linear_.bias};
    last = graph.AddNode(std::move(node));
    needs_sigmoid = linear_.logistic;
  } else {
    GraphNode node;
    node.op = OpType::kTreeEnsemble;
    node.inputs = {last};
    node.trees = trees_.trees;
    node.tree_base = trees_.base;
    node.tree_average = trees_.average;
    last = graph.AddNode(std::move(node));
    needs_sigmoid = trees_.logistic;
  }
  if (needs_sigmoid) {
    GraphNode node;
    node.op = OpType::kSigmoid;
    node.inputs = {last};
    last = graph.AddNode(std::move(node));
  }
  graph.SetOutput(last);
  FLOCK_RETURN_NOT_OK(graph.Finalize());
  return graph;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string Pipeline::Serialize() const {
  std::ostringstream out;
  out << "FLOCK_PIPELINE 1\n";
  out << "task "
      << (task_ == ModelTask::kRegression ? "regression"
                                          : "classification")
      << "\n";
  out << "inputs " << inputs_.size() << "\n";
  for (const FeatureSpec& input : inputs_) {
    if (input.kind == FeatureKind::kNumeric) {
      out << "input " << input.name << " numeric\n";
    } else {
      out << "input " << input.name << " categorical "
          << input.vocab.size();
      for (const std::string& v : input.vocab) out << " " << v;
      out << "\n";
    }
  }
  if (has_imputer_) {
    out << "imputer";
    for (double v : imputer_values_) out << " " << FmtDouble(v);
    out << "\n";
  }
  if (has_scaler_) {
    out << "scaler_mean";
    for (double v : scaler_mean_) out << " " << FmtDouble(v);
    out << "\nscaler_std";
    for (double v : scaler_std_) out << " " << FmtDouble(v);
    out << "\n";
  }
  if (model_type_ == ModelType::kLinear) {
    out << "model linear " << linear_.weights.size() << " "
        << (linear_.logistic ? 1 : 0) << " " << FmtDouble(linear_.bias);
    for (double w : linear_.weights) out << " " << FmtDouble(w);
    out << "\n";
  } else if (model_type_ == ModelType::kTrees) {
    out << "model trees " << trees_.trees.size() << " "
        << (trees_.average ? 1 : 0) << " " << (trees_.logistic ? 1 : 0)
        << " " << FmtDouble(trees_.base) << "\n";
    for (const Tree& tree : trees_.trees) {
      out << "tree " << tree.nodes.size() << "\n";
      for (const TreeNode& n : tree.nodes) {
        out << n.feature << " " << FmtDouble(n.threshold) << " " << n.left
            << " " << n.right << " " << FmtDouble(n.value) << "\n";
      }
    }
  }
  out << "end\n";
  return out.str();
}

StatusOr<Pipeline> Pipeline::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // A serialized pipeline is a stored artifact (catalog WAL, rollout
  // snapshot, replica stream), not user input: any structural or numeric
  // miss here means the bytes were damaged after Serialize wrote them,
  // so every failure is Corruption — recoverable by the caller (deploy
  // fails, recovery skips), never a crash.
  auto fail = [](const std::string& msg) {
    return Status::Corruption("pipeline deserialize: " + msg);
  };
  if (!std::getline(in, line) || Trim(line) != "FLOCK_PIPELINE 1") {
    return fail("missing header");
  }
  Pipeline pipeline;
  std::vector<FeatureSpec> inputs;
  while (std::getline(in, line)) {
    std::vector<std::string> tok = SplitWhitespace(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    if (kw == "end") break;
    if (kw == "task") {
      if (tok.size() != 2) return fail("task line");
      pipeline.task_ = tok[1] == "regression"
                           ? ModelTask::kRegression
                           : ModelTask::kBinaryClassification;
    } else if (kw == "inputs") {
      // count is informational; inputs follow
    } else if (kw == "input") {
      if (tok.size() < 3) return fail("input line");
      FeatureSpec spec;
      spec.name = tok[1];
      if (tok[2] == "numeric") {
        spec.kind = FeatureKind::kNumeric;
      } else if (tok[2] == "categorical") {
        spec.kind = FeatureKind::kCategorical;
        if (tok.size() < 4) return fail("categorical vocab size");
        size_t k = 0;
        if (!ParseSize(tok[3], &k)) {
          return fail("bad vocab size: " + tok[3]);
        }
        if (tok.size() - 4 != k) return fail("vocab token count");
        for (size_t i = 0; i < k; ++i) spec.vocab.push_back(tok[4 + i]);
      } else {
        return fail("unknown input kind " + tok[2]);
      }
      inputs.push_back(std::move(spec));
    } else if (kw == "imputer") {
      std::vector<double> values;
      for (size_t i = 1; i < tok.size(); ++i) {
        double v = 0.0;
        if (!ParseDoubleStrict(tok[i], &v)) {
          return fail("bad imputer value: " + tok[i]);
        }
        values.push_back(v);
      }
      pipeline.SetImputer(std::move(values));
    } else if (kw == "scaler_mean") {
      pipeline.scaler_mean_.clear();
      for (size_t i = 1; i < tok.size(); ++i) {
        double v = 0.0;
        if (!ParseDoubleStrict(tok[i], &v)) {
          return fail("bad scaler mean: " + tok[i]);
        }
        pipeline.scaler_mean_.push_back(v);
      }
    } else if (kw == "scaler_std") {
      pipeline.scaler_std_.clear();
      for (size_t i = 1; i < tok.size(); ++i) {
        double v = 0.0;
        if (!ParseDoubleStrict(tok[i], &v)) {
          return fail("bad scaler std: " + tok[i]);
        }
        pipeline.scaler_std_.push_back(v);
      }
      pipeline.has_scaler_ = true;
    } else if (kw == "model") {
      if (tok.size() < 2) return fail("model line");
      if (tok[1] == "linear") {
        if (tok.size() < 5) return fail("linear model line");
        size_t k = 0;
        if (!ParseSize(tok[2], &k)) {
          return fail("bad linear weight count: " + tok[2]);
        }
        LinearModel model;
        model.logistic = tok[3] == "1";
        if (!ParseDoubleStrict(tok[4], &model.bias)) {
          return fail("bad linear bias: " + tok[4]);
        }
        if (tok.size() - 5 != k) return fail("linear weight count");
        for (size_t i = 0; i < k; ++i) {
          double w = 0.0;
          if (!ParseDoubleStrict(tok[5 + i], &w)) {
            return fail("bad linear weight: " + tok[5 + i]);
          }
          model.weights.push_back(w);
        }
        pipeline.SetLinearModel(std::move(model));
      } else if (tok[1] == "trees") {
        if (tok.size() != 6) return fail("trees model line");
        size_t count = 0;
        if (!ParseSize(tok[2], &count)) {
          return fail("bad tree count: " + tok[2]);
        }
        TreeEnsembleModel model;
        model.average = tok[3] == "1";
        model.logistic = tok[4] == "1";
        if (!ParseDoubleStrict(tok[5], &model.base)) {
          return fail("bad tree base: " + tok[5]);
        }
        for (size_t t = 0; t < count; ++t) {
          if (!std::getline(in, line)) return fail("missing tree header");
          std::vector<std::string> header = SplitWhitespace(line);
          if (header.size() != 2 || header[0] != "tree") {
            return fail("bad tree header: " + line);
          }
          size_t num_nodes = 0;
          if (!ParseSize(header[1], &num_nodes)) {
            return fail("bad tree node count: " + header[1]);
          }
          Tree tree;
          for (size_t ni = 0; ni < num_nodes; ++ni) {
            if (!std::getline(in, line)) return fail("missing tree node");
            std::vector<std::string> fields = SplitWhitespace(line);
            if (fields.size() != 5) return fail("bad tree node: " + line);
            TreeNode node;
            if (!ParseInt32(fields[0], &node.feature) ||
                !ParseDoubleStrict(fields[1], &node.threshold) ||
                !ParseInt32(fields[2], &node.left) ||
                !ParseInt32(fields[3], &node.right) ||
                !ParseDoubleStrict(fields[4], &node.value)) {
              return fail("bad tree node: " + line);
            }
            tree.nodes.push_back(node);
          }
          // Structural validation: Predict walks left/right unchecked, so
          // a corrupted index would read out of bounds or loop forever.
          // The builder appends children after their parent, so a valid
          // tree has every interior child index in (parent, num_nodes).
          for (size_t ni = 0; ni < tree.nodes.size(); ++ni) {
            const TreeNode& node = tree.nodes[ni];
            if (node.is_leaf()) continue;
            const auto lo = static_cast<int32_t>(ni);
            const auto hi = static_cast<int32_t>(tree.nodes.size());
            if (node.left <= lo || node.left >= hi || node.right <= lo ||
                node.right >= hi) {
              return fail("tree node " + std::to_string(ni) +
                          " child index out of range");
            }
          }
          model.trees.push_back(std::move(tree));
        }
        pipeline.SetTreeModel(std::move(model));
      } else {
        return fail("unknown model type " + tok[1]);
      }
    } else {
      return fail("unknown keyword " + kw);
    }
  }
  pipeline.SetInputs(std::move(inputs));
  return pipeline;
}

std::string Pipeline::Summary() const {
  std::ostringstream out;
  out << "Pipeline(" << inputs_.size() << " inputs";
  size_t categorical = 0;
  for (const FeatureSpec& input : inputs_) {
    if (input.kind == FeatureKind::kCategorical) ++categorical;
  }
  if (categorical > 0) out << " [" << categorical << " categorical]";
  if (has_imputer_) out << ", imputer";
  if (has_scaler_) out << ", scaler";
  switch (model_type_) {
    case ModelType::kLinear:
      out << ", linear(" << linear_.weights.size() << "w"
          << (linear_.logistic ? ", logistic" : "") << ")";
      break;
    case ModelType::kTrees:
      out << ", trees(" << trees_.trees.size() << " trees, "
          << trees_.TotalNodes() << " nodes"
          << (trees_.average ? ", averaged" : ", boosted")
          << (trees_.logistic ? ", logistic" : "") << ")";
      break;
    case ModelType::kNone:
      out << ", no model";
      break;
  }
  out << ", task="
      << (task_ == ModelTask::kRegression ? "regression"
                                          : "classification")
      << ")";
  return out.str();
}

}  // namespace flock::ml
