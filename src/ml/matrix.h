#ifndef FLOCK_ML_MATRIX_H_
#define FLOCK_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace flock::ml {

/// Dense row-major double matrix — the tensor type flowing through model
/// graphs. Rows are examples, columns are features.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r`.
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Returns the subset of rows given by `indexes`.
  Matrix SelectRows(const std::vector<size_t>& indexes) const {
    Matrix out(indexes.size(), cols_);
    for (size_t i = 0; i < indexes.size(); ++i) {
      const double* src = row(indexes[i]);
      double* dst = out.row(i);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace flock::ml

#endif  // FLOCK_ML_MATRIX_H_
