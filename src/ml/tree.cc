#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flock::ml {

namespace {

struct SplitCandidate {
  size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
  bool valid = false;
};

/// Impurity of a (count, sum, sum_sq) triple: gini for classification
/// (sum = positives), variance * count for regression.
double Impurity(double count, double sum, double sum_sq, bool regression) {
  if (count <= 0) return 0.0;
  if (regression) {
    double mean = sum / count;
    return sum_sq - count * mean * mean;  // SSE
  }
  double p = sum / count;
  return count * 2.0 * p * (1.0 - p);  // scaled gini
}

class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const TreeTrainerOptions& options,
              const std::vector<double>* targets)
      : data_(data),
        options_(options),
        targets_(targets != nullptr ? *targets : data.y),
        rng_(options.seed) {}

  Tree Build(std::vector<size_t> rows) {
    Tree tree;
    BuildNode(std::move(rows), 0, &tree);
    return tree;
  }

 private:
  double Target(size_t row) const { return targets_[row]; }

  SplitCandidate FindBestSplit(const std::vector<size_t>& rows) {
    SplitCandidate best;
    const size_t f = data_.num_features();

    // Feature subset (for random forests).
    std::vector<size_t> features(f);
    std::iota(features.begin(), features.end(), 0);
    size_t feature_count = f;
    if (options_.max_features > 0 && options_.max_features < f) {
      for (size_t i = 0; i < options_.max_features; ++i) {
        std::swap(features[i],
                  features[i + rng_.Uniform(f - i)]);
      }
      feature_count = options_.max_features;
    }

    double total_count = static_cast<double>(rows.size());
    double total_sum = 0.0, total_sq = 0.0;
    for (size_t r : rows) {
      double y = Target(r);
      total_sum += y;
      total_sq += y * y;
    }
    double parent = Impurity(total_count, total_sum, total_sq,
                             options_.regression);

    std::vector<double> candidates;
    for (size_t fi = 0; fi < feature_count; ++fi) {
      size_t feature = features[fi];
      // Quantile-sketch candidate thresholds from a row sample.
      candidates.clear();
      size_t sample = std::min<size_t>(rows.size(), 256);
      for (size_t i = 0; i < sample; ++i) {
        size_t r = rows[rows.size() <= 256 ? i : rng_.Uniform(rows.size())];
        candidates.push_back(data_.x.at(r, feature));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      if (candidates.size() < 2) continue;
      size_t step = std::max<size_t>(
          1, candidates.size() / options_.max_candidates);

      for (size_t ci = step; ci < candidates.size(); ci += step) {
        double threshold =
            (candidates[ci - 1] + candidates[ci]) / 2.0;
        double lc = 0, ls = 0, lq = 0;
        for (size_t r : rows) {
          if (data_.x.at(r, feature) < threshold) {
            double y = Target(r);
            lc += 1;
            ls += y;
            lq += y * y;
          }
        }
        double rc = total_count - lc;
        if (lc < static_cast<double>(options_.min_samples_leaf) ||
            rc < static_cast<double>(options_.min_samples_leaf)) {
          continue;
        }
        double child = Impurity(lc, ls, lq, options_.regression) +
                       Impurity(rc, total_sum - ls, total_sq - lq,
                                options_.regression);
        double gain = parent - child;
        if (!best.valid || gain > best.gain) {
          best.valid = true;
          best.gain = gain;
          best.feature = feature;
          best.threshold = threshold;
        }
      }
    }
    if (best.valid && best.gain <= options_.min_split_gain) {
      best.valid = false;
    }
    return best;
  }

  int32_t BuildNode(std::vector<size_t> rows, size_t depth, Tree* tree) {
    double sum = 0.0;
    for (size_t r : rows) sum += Target(r);
    double mean = rows.empty()
                      ? 0.0
                      : sum / static_cast<double>(rows.size());

    auto make_leaf = [&]() {
      TreeNode leaf;
      leaf.feature = -1;
      leaf.value = mean;
      tree->nodes.push_back(leaf);
      return static_cast<int32_t>(tree->nodes.size() - 1);
    };

    if (depth >= options_.max_depth ||
        rows.size() < 2 * options_.min_samples_leaf) {
      return make_leaf();
    }
    SplitCandidate split = FindBestSplit(rows);
    if (!split.valid) return make_leaf();

    std::vector<size_t> left_rows, right_rows;
    for (size_t r : rows) {
      if (data_.x.at(r, split.feature) < split.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    rows.clear();
    rows.shrink_to_fit();

    TreeNode node;
    node.feature = static_cast<int32_t>(split.feature);
    node.threshold = split.threshold;
    tree->nodes.push_back(node);
    size_t slot = tree->nodes.size() - 1;
    int32_t left = BuildNode(std::move(left_rows), depth + 1, tree);
    int32_t right = BuildNode(std::move(right_rows), depth + 1, tree);
    tree->nodes[slot].left = left;
    tree->nodes[slot].right = right;
    return static_cast<int32_t>(slot);
  }

  const Dataset& data_;
  const TreeTrainerOptions& options_;
  const std::vector<double>& targets_;
  Random rng_;
};

}  // namespace

Tree TrainDecisionTree(const Dataset& data, const TreeTrainerOptions& options,
                       const std::vector<size_t>& rows,
                       const std::vector<double>* targets) {
  std::vector<size_t> all;
  if (rows.empty()) {
    all.resize(data.size());
    std::iota(all.begin(), all.end(), 0);
  } else {
    all = rows;
  }
  TreeBuilder builder(data, options, targets);
  return builder.Build(std::move(all));
}

double TreeEnsembleModel::Score(const double* features) const {
  double acc = base;
  for (const Tree& tree : trees) acc += tree.Predict(features);
  if (average && !trees.empty()) {
    acc = base + (acc - base) / static_cast<double>(trees.size());
  }
  return logistic ? 1.0 / (1.0 + std::exp(-acc)) : acc;
}

size_t TreeEnsembleModel::TotalNodes() const {
  size_t total = 0;
  for (const Tree& tree : trees) total += tree.size();
  return total;
}

TreeEnsembleModel TrainRandomForest(const Dataset& data,
                                    const ForestOptions& options) {
  TreeEnsembleModel model;
  model.average = true;
  model.logistic = false;
  Random rng(options.tree.seed);
  size_t bag = static_cast<size_t>(
      static_cast<double>(data.size()) * options.row_subsample);
  bag = std::max<size_t>(bag, 1);
  for (size_t t = 0; t < options.num_trees; ++t) {
    std::vector<size_t> rows;
    rows.reserve(bag);
    for (size_t i = 0; i < bag; ++i) {
      rows.push_back(rng.Uniform(data.size()));
    }
    TreeTrainerOptions tree_options = options.tree;
    tree_options.seed = rng.NextUint64();
    model.trees.push_back(TrainDecisionTree(data, tree_options, rows));
  }
  return model;
}

TreeEnsembleModel TrainGradientBoosting(const Dataset& data,
                                        const GbtOptions& options) {
  TreeEnsembleModel model;
  model.average = false;
  model.logistic = options.classification;

  const size_t n = data.size();
  if (n == 0) return model;

  // Initial score: log-odds for classification, mean for regression.
  double mean =
      std::accumulate(data.y.begin(), data.y.end(), 0.0) /
      static_cast<double>(n);
  if (options.classification) {
    double p = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    model.base = std::log(p / (1.0 - p));
  } else {
    model.base = mean;
  }

  std::vector<double> raw(n, model.base);
  std::vector<double> residuals(n);
  Random rng(options.seed);
  size_t bag = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) *
                             options.row_subsample));

  TreeTrainerOptions tree_options;
  tree_options.max_depth = options.max_depth;
  tree_options.min_samples_leaf = options.min_samples_leaf;
  tree_options.max_candidates = options.max_candidates;
  tree_options.min_split_gain = options.min_split_gain;
  tree_options.regression = true;  // trees fit residuals

  for (size_t t = 0; t < options.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      double prediction =
          options.classification
              ? 1.0 / (1.0 + std::exp(-raw[i]))
              : raw[i];
      residuals[i] = data.y[i] - prediction;
    }
    std::vector<size_t> rows;
    rows.reserve(bag);
    for (size_t i = 0; i < bag; ++i) rows.push_back(rng.Uniform(n));
    tree_options.seed = rng.NextUint64();
    Tree tree =
        TrainDecisionTree(data, tree_options, rows, &residuals);
    // Shrink leaf values by the learning rate.
    for (TreeNode& node : tree.nodes) {
      if (node.is_leaf()) node.value *= options.learning_rate;
    }
    for (size_t i = 0; i < n; ++i) {
      raw[i] += tree.Predict(data.x.row(i));
    }
    model.trees.push_back(std::move(tree));
  }
  return model;
}

}  // namespace flock::ml
