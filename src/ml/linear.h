#ifndef FLOCK_ML_LINEAR_H_
#define FLOCK_ML_LINEAR_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"

namespace flock::ml {

/// A trained (generalized) linear model: score = w.x + b, optionally passed
/// through a logistic link.
struct LinearModel {
  std::vector<double> weights;
  double bias = 0.0;
  bool logistic = true;

  double Score(const double* features) const;
};

struct LinearTrainerOptions {
  size_t epochs = 60;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  /// L1 strength; > 0 yields sparse weights (soft thresholding), which is
  /// what makes FeaturePruning effective on linear pipelines.
  double l1 = 0.0;
  uint64_t seed = 42;
  bool logistic = true;  // false = squared-loss regression
};

/// Mini-batch SGD trainer for linear / logistic regression.
LinearModel TrainLinear(const Dataset& data,
                        const LinearTrainerOptions& options);

}  // namespace flock::ml

#endif  // FLOCK_ML_LINEAR_H_
