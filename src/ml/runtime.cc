#include "ml/runtime.h"

#include <cmath>

namespace flock::ml {

StatusOr<Matrix> GraphRuntime::Run(const Matrix& input) const {
  return RunImpl(input, graph_->output_id());
}

StatusOr<Matrix> GraphRuntime::RunToNode(const Matrix& input,
                                         int node_id) const {
  if (node_id < 0 ||
      static_cast<size_t>(node_id) >= graph_->nodes().size()) {
    return Status::InvalidArgument("RunToNode: bad node id");
  }
  return RunImpl(input, node_id);
}

StatusOr<Matrix> GraphRuntime::RunImpl(const Matrix& input,
                                       int stop_node) const {
  if (input.cols() != graph_->input_cols()) {
    return Status::InvalidArgument(
        "graph expects " + std::to_string(graph_->input_cols()) +
        " input columns, got " + std::to_string(input.cols()));
  }
  const size_t n = input.rows();
  std::vector<Matrix> results(graph_->nodes().size());
  results[0] = input;  // kInput

  for (size_t i = 1; i <= static_cast<size_t>(stop_node); ++i) {
    const GraphNode& node = graph_->nodes()[i];
    const Matrix& in = results[static_cast<size_t>(node.inputs[0])];
    Matrix out(n, node.output_cols);
    switch (node.op) {
      case OpType::kInput:
        return Status::Internal("duplicate Input node");
      case OpType::kImputer:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t c = 0; c < in.cols(); ++c) {
            dst[c] = std::isnan(src[c]) ? node.imputer_values[c] : src[c];
          }
        }
        break;
      case OpType::kScaler:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t c = 0; c < in.cols(); ++c) {
            dst[c] = (src[c] - node.offset[c]) * node.scale[c];
          }
        }
        break;
      case OpType::kOneHot:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          size_t pos = 0;
          for (size_t c = 0; c < in.cols(); ++c) {
            int k = node.onehot_sizes[c];
            if (k == 0) {
              dst[pos++] = src[c];
            } else {
              int64_t idx = static_cast<int64_t>(src[c]);
              for (int j = 0; j < k; ++j) {
                dst[pos + static_cast<size_t>(j)] =
                    (idx == j) ? 1.0 : 0.0;
              }
              pos += static_cast<size_t>(k);
            }
          }
        }
        break;
      case OpType::kConcat: {
        size_t pos = 0;
        for (int input_id : node.inputs) {
          const Matrix& part = results[static_cast<size_t>(input_id)];
          for (size_t r = 0; r < n; ++r) {
            const double* src = part.row(r);
            double* dst = out.row(r) + pos;
            for (size_t c = 0; c < part.cols(); ++c) dst[c] = src[c];
          }
          pos += part.cols();
        }
        break;
      }
      case OpType::kGemm: {
        const size_t out_cols = node.gemm_weights.rows();
        const size_t in_cols = in.cols();
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t j = 0; j < out_cols; ++j) {
            double acc = node.gemm_bias[j];
            const double* w = node.gemm_weights.row(j);
            for (size_t c = 0; c < in_cols; ++c) acc += w[c] * src[c];
            dst[j] = acc;
          }
        }
        break;
      }
      case OpType::kSigmoid:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t c = 0; c < in.cols(); ++c) {
            dst[c] = 1.0 / (1.0 + std::exp(-src[c]));
          }
        }
        break;
      case OpType::kRelu:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t c = 0; c < in.cols(); ++c) {
            dst[c] = src[c] > 0.0 ? src[c] : 0.0;
          }
        }
        break;
      case OpType::kTreeEnsemble: {
        const double norm =
            node.tree_average && !node.trees.empty()
                ? 1.0 / static_cast<double>(node.trees.size())
                : 1.0;
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double acc = node.tree_base;
          for (const Tree& tree : node.trees) {
            acc += tree.Predict(src);
          }
          out.at(r, 0) = node.tree_average
                             ? node.tree_base +
                                   (acc - node.tree_base) * norm
                             : acc;
        }
        break;
      }
      case OpType::kBinarizer:
        for (size_t r = 0; r < n; ++r) {
          const double* src = in.row(r);
          double* dst = out.row(r);
          for (size_t c = 0; c < in.cols(); ++c) {
            dst[c] = src[c] > node.binarizer_threshold ? 1.0 : 0.0;
          }
        }
        break;
      case OpType::kIdentity:
        out = in;
        break;
    }
    results[i] = std::move(out);
  }
  return results[static_cast<size_t>(stop_node)];
}

StatusOr<std::vector<double>> GraphRuntime::RunToScores(
    const Matrix& input) const {
  FLOCK_ASSIGN_OR_RETURN(Matrix out, Run(input));
  std::vector<double> scores(out.rows());
  for (size_t r = 0; r < out.rows(); ++r) scores[r] = out.at(r, 0);
  return scores;
}

std::vector<ColumnRange> PropagateRanges(
    const ModelGraph& graph, int node_id,
    const std::vector<ColumnRange>& input_ranges) {
  std::vector<std::vector<ColumnRange>> ranges(graph.nodes().size());
  ranges[0] = input_ranges;
  for (size_t i = 1; i <= static_cast<size_t>(node_id); ++i) {
    const GraphNode& node = graph.nodes()[i];
    const auto& in = ranges[static_cast<size_t>(node.inputs[0])];
    if (in.empty() && node.op != OpType::kConcat) {
      continue;  // unknown upstream
    }
    std::vector<ColumnRange> out;
    switch (node.op) {
      case OpType::kImputer:
        out = in;
        for (size_t c = 0; c < out.size(); ++c) {
          if (out[c].known) {
            out[c].min = std::min(out[c].min, node.imputer_values[c]);
            out[c].max = std::max(out[c].max, node.imputer_values[c]);
          }
        }
        break;
      case OpType::kScaler:
        out.resize(in.size());
        for (size_t c = 0; c < in.size(); ++c) {
          if (!in[c].known) continue;
          double a = (in[c].min - node.offset[c]) * node.scale[c];
          double b = (in[c].max - node.offset[c]) * node.scale[c];
          out[c].min = std::min(a, b);
          out[c].max = std::max(a, b);
          out[c].known = true;
        }
        break;
      case OpType::kOneHot: {
        for (size_t c = 0; c < in.size(); ++c) {
          int k = node.onehot_sizes[c];
          if (k == 0) {
            out.push_back(in[c]);
          } else {
            for (int j = 0; j < k; ++j) {
              out.push_back(ColumnRange{0.0, 1.0, true});
            }
          }
        }
        break;
      }
      case OpType::kConcat: {
        bool all_known = true;
        for (int input_id : node.inputs) {
          const auto& part = ranges[static_cast<size_t>(input_id)];
          if (part.empty()) {
            all_known = false;
            break;
          }
          out.insert(out.end(), part.begin(), part.end());
        }
        if (!all_known) out.clear();
        break;
      }
      case OpType::kSigmoid:
        out.assign(in.size(), ColumnRange{0.0, 1.0, true});
        break;
      case OpType::kBinarizer:
        out.assign(in.size(), ColumnRange{0.0, 1.0, true});
        break;
      case OpType::kRelu:
        out = in;
        for (auto& r : out) {
          if (r.known) {
            r.min = std::max(0.0, r.min);
            r.max = std::max(0.0, r.max);
          }
        }
        break;
      case OpType::kIdentity:
        out = in;
        break;
      default:
        // Gemm/TreeEnsemble outputs: stop propagation (ranges not needed
        // past the model itself).
        out.clear();
        break;
    }
    ranges[i] = std::move(out);
  }
  return ranges[static_cast<size_t>(node_id)];
}

namespace {

/// Rebuilds `tree` with statically-decidable branches folded; appends nodes
/// into `out` and returns the new index of the subtree rooted at `idx`.
int32_t PruneSubtree(const Tree& tree, int32_t idx,
                     const std::vector<ColumnRange>& ranges,
                     std::vector<TreeNode>* out) {
  const TreeNode& n = tree.nodes[static_cast<size_t>(idx)];
  if (n.is_leaf()) {
    out->push_back(n);
    return static_cast<int32_t>(out->size() - 1);
  }
  const ColumnRange& r = ranges[static_cast<size_t>(n.feature)];
  if (r.known) {
    if (r.max < n.threshold) {
      // Every value routes left.
      return PruneSubtree(tree, n.left, ranges, out);
    }
    if (r.min >= n.threshold) {
      return PruneSubtree(tree, n.right, ranges, out);
    }
  }
  // Keep the split; reserve a slot, then emit children.
  out->push_back(n);
  size_t slot = out->size() - 1;
  int32_t new_left = PruneSubtree(tree, n.left, ranges, out);
  int32_t new_right = PruneSubtree(tree, n.right, ranges, out);
  (*out)[slot].left = new_left;
  (*out)[slot].right = new_right;
  return static_cast<int32_t>(slot);
}

}  // namespace

size_t CompressTreesWithRanges(ModelGraph* graph,
                               const std::vector<ColumnRange>& input_ranges) {
  size_t removed = 0;
  for (GraphNode& node : graph->mutable_nodes()) {
    if (node.op != OpType::kTreeEnsemble || node.trees.empty()) continue;
    std::vector<ColumnRange> feature_ranges =
        PropagateRanges(*graph, node.inputs[0], input_ranges);
    if (feature_ranges.empty()) continue;
    for (Tree& tree : node.trees) {
      std::vector<TreeNode> pruned;
      pruned.reserve(tree.nodes.size());
      int32_t root = PruneSubtree(tree, 0, feature_ranges, &pruned);
      // The root must land at index 0; if pruning reduced the tree to a
      // subtree rooted elsewhere, rotate it to the front.
      if (root != 0) {
        // PruneSubtree roots at the back only when the whole tree folds to
        // a single path; rebuild by re-rooting.
        std::vector<TreeNode> rebased;
        std::vector<int32_t> remap(pruned.size(), -1);
        // BFS from root.
        std::vector<int32_t> stack = {root};
        while (!stack.empty()) {
          int32_t cur = stack.back();
          stack.pop_back();
          if (remap[static_cast<size_t>(cur)] >= 0) continue;
          remap[static_cast<size_t>(cur)] =
              static_cast<int32_t>(rebased.size());
          rebased.push_back(pruned[static_cast<size_t>(cur)]);
          const TreeNode& cn = pruned[static_cast<size_t>(cur)];
          if (!cn.is_leaf()) {
            stack.push_back(cn.left);
            stack.push_back(cn.right);
          }
        }
        for (TreeNode& tn : rebased) {
          if (!tn.is_leaf()) {
            tn.left = remap[static_cast<size_t>(tn.left)];
            tn.right = remap[static_cast<size_t>(tn.right)];
          }
        }
        pruned = std::move(rebased);
      }
      if (pruned.size() < tree.nodes.size()) {
        removed += tree.nodes.size() - pruned.size();
        tree.nodes = std::move(pruned);
      }
    }
  }
  return removed;
}

}  // namespace flock::ml
