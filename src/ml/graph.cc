#include "ml/graph.h"

#include <set>

#include "common/string_util.h"

namespace flock::ml {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kInput:
      return "Input";
    case OpType::kImputer:
      return "Imputer";
    case OpType::kScaler:
      return "Scaler";
    case OpType::kOneHot:
      return "OneHot";
    case OpType::kConcat:
      return "Concat";
    case OpType::kGemm:
      return "Gemm";
    case OpType::kSigmoid:
      return "Sigmoid";
    case OpType::kRelu:
      return "Relu";
    case OpType::kTreeEnsemble:
      return "TreeEnsemble";
    case OpType::kBinarizer:
      return "Binarizer";
    case OpType::kIdentity:
      return "Identity";
  }
  return "?";
}

StatusOr<OpType> OpTypeFromName(const std::string& name) {
  static const std::pair<const char*, OpType> kOps[] = {
      {"Input", OpType::kInput},
      {"Imputer", OpType::kImputer},
      {"Scaler", OpType::kScaler},
      {"OneHot", OpType::kOneHot},
      {"Concat", OpType::kConcat},
      {"Gemm", OpType::kGemm},
      {"Sigmoid", OpType::kSigmoid},
      {"Relu", OpType::kRelu},
      {"TreeEnsemble", OpType::kTreeEnsemble},
      {"Binarizer", OpType::kBinarizer},
      {"Identity", OpType::kIdentity},
  };
  for (const auto& [op_name, op] : kOps) {
    if (name == op_name) return op;
  }
  return Status::InvalidArgument("unknown op type: " + name);
}

int ModelGraph::SetInput(size_t num_cols) {
  input_cols_ = num_cols;
  nodes_.clear();
  GraphNode input;
  input.id = 0;
  input.op = OpType::kInput;
  input.output_cols = num_cols;
  nodes_.push_back(std::move(input));
  return 0;
}

int ModelGraph::AddNode(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

size_t ModelGraph::NodeOutputCols(const GraphNode& node) const {
  auto in_cols = [&](size_t i) {
    return nodes_[static_cast<size_t>(node.inputs[i])].output_cols;
  };
  switch (node.op) {
    case OpType::kInput:
      return input_cols_;
    case OpType::kImputer:
    case OpType::kScaler:
    case OpType::kSigmoid:
    case OpType::kRelu:
    case OpType::kBinarizer:
    case OpType::kIdentity:
      return in_cols(0);
    case OpType::kOneHot: {
      size_t total = 0;
      for (int k : node.onehot_sizes) {
        total += k == 0 ? 1 : static_cast<size_t>(k);
      }
      return total;
    }
    case OpType::kConcat: {
      size_t total = 0;
      for (size_t i = 0; i < node.inputs.size(); ++i) total += in_cols(i);
      return total;
    }
    case OpType::kGemm:
      return node.gemm_weights.rows();
    case OpType::kTreeEnsemble:
      return 1;
  }
  return 0;
}

Status ModelGraph::Finalize() {
  if (nodes_.empty() || nodes_[0].op != OpType::kInput) {
    return Status::InvalidArgument("graph must start with an Input node");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    GraphNode& node = nodes_[i];
    node.id = static_cast<int>(i);
    for (int in : node.inputs) {
      if (in < 0 || static_cast<size_t>(in) >= i) {
        return Status::InvalidArgument(
            "node inputs must reference earlier nodes (topological order)");
      }
    }
    if (node.op != OpType::kInput && node.inputs.empty()) {
      return Status::InvalidArgument("non-input node has no inputs");
    }
    node.output_cols = NodeOutputCols(node);

    // Per-op attribute sanity.
    size_t in0 = node.inputs.empty()
                     ? 0
                     : nodes_[static_cast<size_t>(node.inputs[0])]
                           .output_cols;
    switch (node.op) {
      case OpType::kImputer:
        if (node.imputer_values.size() != in0) {
          return Status::InvalidArgument("Imputer value count mismatch");
        }
        break;
      case OpType::kScaler:
        if (node.scale.size() != in0 || node.offset.size() != in0) {
          return Status::InvalidArgument("Scaler attr count mismatch");
        }
        break;
      case OpType::kOneHot:
        if (node.onehot_sizes.size() != in0) {
          return Status::InvalidArgument("OneHot sizes count mismatch");
        }
        break;
      case OpType::kGemm:
        if (node.gemm_weights.cols() != in0 ||
            node.gemm_bias.size() != node.gemm_weights.rows()) {
          return Status::InvalidArgument("Gemm shape mismatch");
        }
        break;
      case OpType::kTreeEnsemble:
        for (const Tree& tree : node.trees) {
          for (const TreeNode& tn : tree.nodes) {
            if (!tn.is_leaf() &&
                static_cast<size_t>(tn.feature) >= in0) {
              return Status::InvalidArgument(
                  "tree references feature beyond input width");
            }
          }
        }
        break;
      default:
        break;
    }
  }
  if (output_id_ < 0 ||
      static_cast<size_t>(output_id_) >= nodes_.size()) {
    return Status::InvalidArgument("invalid output node");
  }
  finalized_ = true;
  return Status::OK();
}

size_t ModelGraph::output_cols() const {
  return nodes_[static_cast<size_t>(output_id_)].output_cols;
}

std::vector<bool> ModelGraph::UsedInputColumns() const {
  // Backward dataflow: needed[id] marks which output columns of node `id`
  // can influence the graph output.
  std::vector<std::vector<bool>> needed(nodes_.size());
  for (const GraphNode& node : nodes_) {
    needed[static_cast<size_t>(node.id)]
        .assign(node.output_cols, false);
  }
  auto& out_needed = needed[static_cast<size_t>(output_id_)];
  out_needed.assign(out_needed.size(), true);

  for (size_t i = nodes_.size(); i-- > 0;) {
    const GraphNode& node = nodes_[i];
    const std::vector<bool>& out = needed[i];
    bool any = false;
    for (bool b : out) any = any || b;
    if (!any || node.op == OpType::kInput) continue;
    switch (node.op) {
      case OpType::kImputer:
      case OpType::kScaler:
      case OpType::kSigmoid:
      case OpType::kRelu:
      case OpType::kBinarizer:
      case OpType::kIdentity: {
        auto& in = needed[static_cast<size_t>(node.inputs[0])];
        for (size_t c = 0; c < out.size(); ++c) {
          if (out[c]) in[c] = true;
        }
        break;
      }
      case OpType::kOneHot: {
        auto& in = needed[static_cast<size_t>(node.inputs[0])];
        size_t out_pos = 0;
        for (size_t c = 0; c < node.onehot_sizes.size(); ++c) {
          size_t width = node.onehot_sizes[c] == 0
                             ? 1
                             : static_cast<size_t>(node.onehot_sizes[c]);
          for (size_t k = 0; k < width; ++k) {
            if (out[out_pos + k]) in[c] = true;
          }
          out_pos += width;
        }
        break;
      }
      case OpType::kConcat: {
        size_t out_pos = 0;
        for (int input_id : node.inputs) {
          auto& in = needed[static_cast<size_t>(input_id)];
          for (size_t c = 0; c < in.size(); ++c) {
            if (out[out_pos + c]) in[c] = true;
          }
          out_pos += in.size();
        }
        break;
      }
      case OpType::kGemm: {
        auto& in = needed[static_cast<size_t>(node.inputs[0])];
        for (size_t j = 0; j < node.gemm_weights.rows(); ++j) {
          if (!out[j]) continue;
          for (size_t c = 0; c < node.gemm_weights.cols(); ++c) {
            if (node.gemm_weights.at(j, c) != 0.0) in[c] = true;
          }
        }
        break;
      }
      case OpType::kTreeEnsemble: {
        auto& in = needed[static_cast<size_t>(node.inputs[0])];
        for (const Tree& tree : node.trees) {
          for (const TreeNode& tn : tree.nodes) {
            if (!tn.is_leaf()) in[static_cast<size_t>(tn.feature)] = true;
          }
        }
        break;
      }
      case OpType::kInput:
        break;
    }
  }
  return needed[0];
}

Status ModelGraph::CompactInputs(const std::vector<bool>& keep) {
  if (keep.size() != input_cols_) {
    return Status::InvalidArgument("keep mask width mismatch");
  }
  std::vector<bool> used = UsedInputColumns();
  for (size_t c = 0; c < keep.size(); ++c) {
    if (!keep[c] && used[c]) {
      return Status::InvalidArgument(
          "cannot drop input column " + std::to_string(c) +
          ": the model still uses it");
    }
  }
  // Per-node column keep-mask propagated forward.
  std::vector<std::vector<bool>> keep_cols(nodes_.size());
  keep_cols[0] = keep;

  // Old->new column index per node output.
  auto remap_of = [](const std::vector<bool>& mask) {
    std::vector<int> remap(mask.size(), -1);
    int next = 0;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) remap[i] = next++;
    }
    return remap;
  };

  for (size_t i = 1; i < nodes_.size(); ++i) {
    GraphNode& node = nodes_[i];
    const std::vector<bool>& in_keep =
        keep_cols[static_cast<size_t>(node.inputs[0])];
    switch (node.op) {
      case OpType::kImputer: {
        std::vector<double> values;
        for (size_t c = 0; c < in_keep.size(); ++c) {
          if (in_keep[c]) values.push_back(node.imputer_values[c]);
        }
        node.imputer_values = std::move(values);
        keep_cols[i] = in_keep;
        break;
      }
      case OpType::kScaler: {
        std::vector<double> scale, offset;
        for (size_t c = 0; c < in_keep.size(); ++c) {
          if (in_keep[c]) {
            scale.push_back(node.scale[c]);
            offset.push_back(node.offset[c]);
          }
        }
        node.scale = std::move(scale);
        node.offset = std::move(offset);
        keep_cols[i] = in_keep;
        break;
      }
      case OpType::kSigmoid:
      case OpType::kRelu:
      case OpType::kBinarizer:
      case OpType::kIdentity:
        keep_cols[i] = in_keep;
        break;
      case OpType::kOneHot: {
        std::vector<int> sizes;
        std::vector<bool> out_keep;
        for (size_t c = 0; c < in_keep.size(); ++c) {
          size_t width = node.onehot_sizes[c] == 0
                             ? 1
                             : static_cast<size_t>(node.onehot_sizes[c]);
          if (in_keep[c]) sizes.push_back(node.onehot_sizes[c]);
          for (size_t k = 0; k < width; ++k) out_keep.push_back(in_keep[c]);
        }
        node.onehot_sizes = std::move(sizes);
        keep_cols[i] = std::move(out_keep);
        break;
      }
      case OpType::kConcat: {
        std::vector<bool> out_keep;
        for (int input_id : node.inputs) {
          const auto& mask = keep_cols[static_cast<size_t>(input_id)];
          out_keep.insert(out_keep.end(), mask.begin(), mask.end());
        }
        keep_cols[i] = std::move(out_keep);
        break;
      }
      case OpType::kGemm: {
        std::vector<int> remap = remap_of(in_keep);
        size_t new_in = 0;
        for (bool b : in_keep) new_in += b ? 1 : 0;
        Matrix w(node.gemm_weights.rows(), new_in);
        for (size_t j = 0; j < w.rows(); ++j) {
          for (size_t c = 0; c < in_keep.size(); ++c) {
            if (remap[c] >= 0) {
              w.at(j, static_cast<size_t>(remap[c])) =
                  node.gemm_weights.at(j, c);
            }
          }
        }
        node.gemm_weights = std::move(w);
        keep_cols[i].assign(node.gemm_weights.rows(), true);
        break;
      }
      case OpType::kTreeEnsemble: {
        std::vector<int> remap = remap_of(in_keep);
        for (Tree& tree : node.trees) {
          for (TreeNode& tn : tree.nodes) {
            if (!tn.is_leaf()) {
              tn.feature = remap[static_cast<size_t>(tn.feature)];
            }
          }
        }
        keep_cols[i].assign(1, true);
        break;
      }
      case OpType::kInput:
        break;
    }
  }
  // Shrink the input.
  size_t new_inputs = 0;
  for (bool b : keep) new_inputs += b ? 1 : 0;
  input_cols_ = new_inputs;
  nodes_[0].output_cols = new_inputs;
  return Finalize();
}

size_t ModelGraph::TotalTreeNodes() const {
  size_t total = 0;
  for (const GraphNode& node : nodes_) {
    for (const Tree& tree : node.trees) total += tree.size();
  }
  return total;
}

}  // namespace flock::ml
