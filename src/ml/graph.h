#ifndef FLOCK_ML_GRAPH_H_
#define FLOCK_ML_GRAPH_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "ml/matrix.h"

namespace flock::ml {

/// Operator vocabulary, modeled after the ONNX / ONNX-ML operator set that
/// the paper integrates into SQL Server ("SONNX"). Featurizers (Imputer,
/// Scaler, OneHotEncoder) and models (Gemm for linear models, TreeEnsemble
/// for forests/GBDTs) compose into inference pipelines.
enum class OpType {
  kInput,
  kImputer,       // missing (NaN) -> fill value, per column
  kScaler,        // (x - offset) * scale, per column
  kOneHot,        // integer category -> indicator columns
  kConcat,        // horizontal concatenation of inputs
  kGemm,          // X * W^T + b
  kSigmoid,       // elementwise logistic
  kRelu,          // elementwise max(0, x)
  kTreeEnsemble,  // sum/average of decision trees (+ base score)
  kBinarizer,     // x > threshold ? 1 : 0
  kIdentity,
};

const char* OpTypeName(OpType op);
StatusOr<OpType> OpTypeFromName(const std::string& name);

/// One node of a decision tree. Internal nodes route `x[feature] <
/// threshold` to `left` else `right`; leaves (feature < 0) carry `value`.
struct TreeNode {
  int32_t feature = -1;
  double threshold = 0.0;
  int32_t left = -1;
  int32_t right = -1;
  double value = 0.0;

  bool is_leaf() const { return feature < 0; }
};

struct Tree {
  std::vector<TreeNode> nodes;  // nodes[0] is the root

  /// Number of internal + leaf nodes.
  size_t size() const { return nodes.size(); }

  /// Evaluates the tree on a feature row.
  double Predict(const double* features) const {
    int32_t idx = 0;
    while (!nodes[static_cast<size_t>(idx)].is_leaf()) {
      const TreeNode& n = nodes[static_cast<size_t>(idx)];
      idx = features[n.feature] < n.threshold ? n.left : n.right;
    }
    return nodes[static_cast<size_t>(idx)].value;
  }
};

/// One operator instance in a model graph.
struct GraphNode {
  int id = -1;
  OpType op = OpType::kIdentity;
  std::vector<int> inputs;  // ids of producer nodes

  // --- per-op attributes ---
  std::vector<double> imputer_values;
  std::vector<double> scale, offset;
  std::vector<int> onehot_sizes;  // 0 = pass through, k = expand to k cols
  Matrix gemm_weights;            // [out_cols x in_cols]
  std::vector<double> gemm_bias;  // [out_cols]
  std::vector<Tree> trees;
  double tree_base = 0.0;
  bool tree_average = false;  // true = forest average, false = boosted sum
  double binarizer_threshold = 0.5;

  size_t output_cols = 0;  // filled in by ModelGraph::Finalize
};

/// An ONNX-style dataflow graph over row-major matrices. Node 0 is always
/// the single input; nodes are stored in topological order.
class ModelGraph {
 public:
  ModelGraph() = default;

  /// Declares the input width; must be called first. Returns node id 0.
  int SetInput(size_t num_cols);

  /// Appends a node (inputs must refer to earlier nodes). Returns its id.
  int AddNode(GraphNode node);

  void SetOutput(int node_id) { output_id_ = node_id; }

  /// Validates wiring and computes every node's output width.
  Status Finalize();

  size_t input_cols() const { return input_cols_; }
  size_t output_cols() const;
  int output_id() const { return output_id_; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  std::vector<GraphNode>& mutable_nodes() { return nodes_; }

  /// Which input columns can influence the output (model sparsity). This is
  /// what Flock's FeaturePruning rule consumes: unused inputs need not be
  /// read from storage at all (paper §4.1, "automatic pruning of unused
  /// input feature-columns exploiting model-sparsity").
  std::vector<bool> UsedInputColumns() const;

  /// Drops input columns where keep[c] == false, rewriting every node's
  /// attributes and feature indexes. All dropped columns must be unused.
  Status CompactInputs(const std::vector<bool>& keep);

  /// Total decision-tree nodes across the graph (compression metric).
  size_t TotalTreeNodes() const;

 private:
  size_t NodeOutputCols(const GraphNode& node) const;

  size_t input_cols_ = 0;
  int output_id_ = 0;
  std::vector<GraphNode> nodes_;
  bool finalized_ = false;
};

}  // namespace flock::ml

#endif  // FLOCK_ML_GRAPH_H_
