#include "ml/linear.h"

#include <cmath>
#include <numeric>

namespace flock::ml {

double LinearModel::Score(const double* features) const {
  double z = bias;
  for (size_t i = 0; i < weights.size(); ++i) z += weights[i] * features[i];
  return logistic ? 1.0 / (1.0 + std::exp(-z)) : z;
}

LinearModel TrainLinear(const Dataset& data,
                        const LinearTrainerOptions& options) {
  const size_t n = data.size();
  const size_t f = data.num_features();
  LinearModel model;
  model.weights.assign(f, 0.0);
  model.logistic = options.logistic;
  if (n == 0) return model;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Random rng(options.seed);

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates reshuffle each epoch.
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
    double lr = options.learning_rate /
                (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const double* x = data.x.row(idx);
      double z = model.bias;
      for (size_t c = 0; c < f; ++c) z += model.weights[c] * x[c];
      double prediction =
          options.logistic ? 1.0 / (1.0 + std::exp(-z)) : z;
      double gradient = prediction - data.y[idx];
      model.bias -= lr * gradient;
      for (size_t c = 0; c < f; ++c) {
        double g = gradient * x[c] + options.l2 * model.weights[c];
        model.weights[c] -= lr * g;
      }
      if (options.l1 > 0.0) {
        for (size_t c = 0; c < f; ++c) {
          double shrink = lr * options.l1;
          if (model.weights[c] > shrink) {
            model.weights[c] -= shrink;
          } else if (model.weights[c] < -shrink) {
            model.weights[c] += shrink;
          } else {
            model.weights[c] = 0.0;
          }
        }
      }
    }
  }
  if (options.l1 > 0.0) {
    // Final hard-thresholding: SGD soft-thresholding leaves noise weights
    // tiny but rarely exactly zero; snap them so downstream sparsity
    // analysis (FeaturePruning) sees true zeros.
    for (double& w : model.weights) {
      if (std::fabs(w) < options.l1) w = 0.0;
    }
  }
  return model;
}

}  // namespace flock::ml
