#ifndef FLOCK_ML_ROW_SCORER_H_
#define FLOCK_ML_ROW_SCORER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/pipeline.h"

namespace flock::ml {

/// Row-at-a-time interpreted scorer — the "scikit-learn" baseline of
/// Figure 4.
///
/// Deliberately mirrors how an interpreted Python pipeline scores a
/// record: the row travels between steps as a *named-feature* mapping (a
/// pandas-Series-like dict), each step is a dynamically-dispatched object
/// that looks features up by name and produces a freshly allocated row,
/// and the dense vector for the model is assembled per record. No
/// vectorization, no batch reuse. Numerically identical to the compiled
/// graph (tests assert this); architecturally it pays the per-record
/// boxing and name-resolution costs that interpreted pipelines pay.
class RowScorer {
 public:
  /// A named-feature row, as an interpreted pipeline would pass around.
  using Row = std::map<std::string, double>;

  /// A single interpreted step.
  class Step {
   public:
    virtual ~Step() = default;
    virtual Row Apply(Row row) const = 0;
  };

  explicit RowScorer(const Pipeline& pipeline);

  /// Scores one raw row (dense input, boxed internally per record).
  double Score(const std::vector<double>& raw) const;

  /// Scores a raw matrix row by row.
  std::vector<double> ScoreAll(const Matrix& raw) const;

  size_t num_steps() const { return steps_.size(); }

 private:
  std::vector<std::string> input_names_;
  std::vector<std::unique_ptr<Step>> steps_;
};

}  // namespace flock::ml

#endif  // FLOCK_ML_ROW_SCORER_H_
