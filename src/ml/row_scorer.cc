#include "ml/row_scorer.h"

#include <cmath>

namespace flock::ml {

namespace {

using Row = RowScorer::Row;

/// Features absent from the row read as NaN instead of throwing
/// (std::map::at raised std::out_of_range straight through the executor
/// when a short raw vector left a feature unset). NaN flows into the
/// imputer like any other missing value; without an imputer it propagates
/// to a NaN score, which is the documented contract.
double GetOrNaN(const Row& row, const std::string& name) {
  auto it = row.find(name);
  return it == row.end() ? std::nan("") : it->second;
}

class ImputeStep : public RowScorer::Step {
 public:
  ImputeStep(std::vector<std::string> names, std::vector<double> values)
      : names_(std::move(names)), values_(std::move(values)) {}
  Row Apply(Row row) const override {
    Row out;
    for (size_t c = 0; c < names_.size(); ++c) {
      auto it = row.find(names_[c]);
      double v = it == row.end() ? std::nan("") : it->second;
      out[names_[c]] = std::isnan(v) ? values_[c] : v;
    }
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> values_;
};

class ScaleStep : public RowScorer::Step {
 public:
  /// `scale` is the multiplier form (1/std, epsilon-guarded by
  /// Pipeline::Compile) — the same attribute the vectorized graph kernel
  /// consumes, so interpreted and compiled scores agree bitwise and a
  /// zero-variance feature can no longer produce an Inf/NaN divisor.
  ScaleStep(std::vector<std::string> names, std::vector<double> mean,
            std::vector<double> scale)
      : names_(std::move(names)),
        mean_(std::move(mean)),
        scale_(std::move(scale)) {}
  Row Apply(Row row) const override {
    Row out;
    for (size_t c = 0; c < names_.size(); ++c) {
      double v = GetOrNaN(row, names_[c]);
      out[names_[c]] = (v - mean_[c]) * scale_[c];
    }
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> mean_, scale_;
};

class OneHotStep : public RowScorer::Step {
 public:
  OneHotStep(std::vector<std::string> in_names,
             std::vector<std::string> out_names, std::vector<int> sizes)
      : in_names_(std::move(in_names)),
        out_names_(std::move(out_names)),
        sizes_(std::move(sizes)) {}
  Row Apply(Row row) const override {
    Row out;
    size_t pos = 0;
    for (size_t c = 0; c < in_names_.size(); ++c) {
      double v = GetOrNaN(row, in_names_[c]);
      if (sizes_[c] == 0) {
        out[out_names_[pos++]] = v;
      } else {
        int64_t idx = std::isnan(v) ? -1 : static_cast<int64_t>(v);
        for (int j = 0; j < sizes_[c]; ++j) {
          out[out_names_[pos++]] = (idx == j) ? 1.0 : 0.0;
        }
      }
    }
    return out;
  }

 private:
  std::vector<std::string> in_names_, out_names_;
  std::vector<int> sizes_;
};

class LinearStep : public RowScorer::Step {
 public:
  LinearStep(std::vector<std::string> names, LinearModel model)
      : names_(std::move(names)), model_(std::move(model)) {}
  Row Apply(Row row) const override {
    double z = model_.bias;
    for (size_t c = 0; c < names_.size(); ++c) {
      z += model_.weights[c] * GetOrNaN(row, names_[c]);
    }
    return Row{{"score", z}};
  }

 private:
  std::vector<std::string> names_;
  LinearModel model_;
};

class TreeStep : public RowScorer::Step {
 public:
  TreeStep(std::vector<std::string> names, TreeEnsembleModel model)
      : names_(std::move(names)), model_(std::move(model)) {}
  Row Apply(Row row) const override {
    // Assemble the dense feature vector from the named row, as an
    // interpreted pipeline does right before calling into the model.
    std::vector<double> features(names_.size());
    for (size_t c = 0; c < names_.size(); ++c) {
      features[c] = GetOrNaN(row, names_[c]);
    }
    double acc = model_.base;
    for (const Tree& tree : model_.trees) {
      acc += tree.Predict(features.data());
    }
    if (model_.average && !model_.trees.empty()) {
      // Multiply by the reciprocal, as the graph kernels do, so the
      // interpreted and compiled averages agree bitwise.
      acc = model_.base +
            (acc - model_.base) *
                (1.0 / static_cast<double>(model_.trees.size()));
    }
    return Row{{"score", acc}};
  }

 private:
  std::vector<std::string> names_;
  TreeEnsembleModel model_;
};

class SigmoidStep : public RowScorer::Step {
 public:
  Row Apply(Row row) const override {
    Row out;
    for (const auto& [name, v] : row) {
      out[name] = 1.0 / (1.0 + std::exp(-v));
    }
    return out;
  }
};

}  // namespace

RowScorer::RowScorer(const Pipeline& pipeline) {
  // Build steps from the compiled graph: each graph node becomes one
  // interpreted step, chained through named-feature rows.
  for (const FeatureSpec& input : pipeline.inputs()) {
    input_names_.push_back(input.name);
  }
  auto graph_or = pipeline.Compile();
  if (!graph_or.ok()) return;
  const ModelGraph& graph = *graph_or;

  // Names of the current step's input columns; starts at the raw inputs
  // and expands through OneHot.
  std::vector<std::string> names = input_names_;
  for (const GraphNode& node : graph.nodes()) {
    switch (node.op) {
      case OpType::kImputer:
        steps_.push_back(
            std::make_unique<ImputeStep>(names, node.imputer_values));
        break;
      case OpType::kScaler:
        // node.scale is already the (epsilon-guarded) multiplier; passing
        // it through directly avoids the old 1.0/scale round-trip that
        // turned a zero scale into an Inf divisor.
        steps_.push_back(
            std::make_unique<ScaleStep>(names, node.offset, node.scale));
        break;
      case OpType::kOneHot: {
        std::vector<std::string> out_names;
        for (size_t c = 0; c < names.size(); ++c) {
          if (node.onehot_sizes[c] == 0) {
            out_names.push_back(names[c]);
          } else {
            for (int j = 0; j < node.onehot_sizes[c]; ++j) {
              out_names.push_back(names[c] + "=" + std::to_string(j));
            }
          }
        }
        steps_.push_back(std::make_unique<OneHotStep>(
            names, out_names, node.onehot_sizes));
        names = std::move(out_names);
        break;
      }
      case OpType::kGemm: {
        LinearModel model;
        model.logistic = false;
        model.bias = node.gemm_bias[0];
        model.weights.resize(node.gemm_weights.cols());
        for (size_t c = 0; c < node.gemm_weights.cols(); ++c) {
          model.weights[c] = node.gemm_weights.at(0, c);
        }
        steps_.push_back(
            std::make_unique<LinearStep>(names, std::move(model)));
        names = {"score"};
        break;
      }
      case OpType::kTreeEnsemble: {
        TreeEnsembleModel model;
        model.trees = node.trees;
        model.base = node.tree_base;
        model.average = node.tree_average;
        model.logistic = false;
        steps_.push_back(
            std::make_unique<TreeStep>(names, std::move(model)));
        names = {"score"};
        break;
      }
      case OpType::kSigmoid:
        steps_.push_back(std::make_unique<SigmoidStep>());
        break;
      default:
        break;
    }
  }
}

double RowScorer::Score(const std::vector<double>& raw) const {
  // Box the record into a named row, as interpreted pipelines do. Inputs
  // beyond the declared feature list are ignored and missing inputs are
  // boxed as NaN (imputed or propagated by the steps) — arity mismatches
  // are rejected with a proper error at the flock::ScoreBatch boundary,
  // so here the row-level contract is simply "missing means NaN".
  Row row;
  for (size_t c = 0; c < input_names_.size(); ++c) {
    row[input_names_[c]] = c < raw.size() ? raw[c] : std::nan("");
  }
  for (const auto& step : steps_) {
    row = step->Apply(std::move(row));
  }
  auto it = row.find("score");
  if (it != row.end()) return it->second;
  // Deterministic fallback: a single remaining column is the score (a
  // model-less featurizer chain reduced to one value); anything else is
  // NaN rather than whichever entry happens to sort first.
  return row.size() == 1 ? row.begin()->second : std::nan("");
}

std::vector<double> RowScorer::ScoreAll(const Matrix& raw) const {
  std::vector<double> out(raw.rows());
  std::vector<double> row(raw.cols());
  for (size_t r = 0; r < raw.rows(); ++r) {
    const double* src = raw.row(r);
    row.assign(src, src + raw.cols());
    out[r] = Score(row);
  }
  return out;
}

}  // namespace flock::ml
