#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flock::ml {

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction,
                                           uint64_t seed) {
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Random rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  size_t test_count = static_cast<size_t>(
      static_cast<double>(data.size()) * test_fraction);
  std::vector<size_t> test_idx(order.begin(), order.begin() + test_count);
  std::vector<size_t> train_idx(order.begin() + test_count, order.end());

  auto build = [&](const std::vector<size_t>& idx) {
    Dataset out;
    out.x = data.x.SelectRows(idx);
    out.y.reserve(idx.size());
    for (size_t i : idx) out.y.push_back(data.y[i]);
    return out;
  };
  return {build(train_idx), build(test_idx)};
}

double Accuracy(const std::vector<double>& scores,
                const std::vector<double>& labels) {
  if (scores.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool predicted = scores[i] >= 0.5;
    bool actual = labels[i] >= 0.5;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

double Auc(const std::vector<double>& scores,
           const std::vector<double>& labels) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Rank-sum (Mann-Whitney U) estimate; ties get average rank implicitly
  // via stable ordering, adequate for benchmark reporting.
  double rank_sum = 0.0;
  size_t positives = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] >= 0.5) {
      rank_sum += static_cast<double>(i + 1);
      ++positives;
    }
  }
  size_t negatives = order.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  double u = rank_sum - static_cast<double>(positives) *
                            (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets) {
  if (predictions.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = predictions[i] - targets[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(predictions.size()));
}

}  // namespace flock::ml
