#ifndef FLOCK_ML_PIPELINE_H_
#define FLOCK_ML_PIPELINE_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "ml/graph.h"
#include "ml/linear.h"
#include "ml/matrix.h"
#include "ml/tree.h"

namespace flock::ml {

enum class FeatureKind { kNumeric, kCategorical };

/// Standard deviations at or below this are treated as zero-variance: the
/// scaler passes the centered value through unscaled (multiplier 1.0)
/// instead of dividing by ~0 and poisoning every downstream score with
/// Inf/NaN. Applies identically to the compiled graph, the interpreted
/// row path, and the dense kernel.
inline constexpr double kMinScaleStd = 1e-12;

/// Declares one pipeline input. Categorical inputs carry a vocabulary; raw
/// values are encoded as vocabulary indexes (unknown -> NaN, handled by the
/// imputer). Vocabulary entries must not contain whitespace (the text
/// serialization format is token-based).
struct FeatureSpec {
  std::string name;
  FeatureKind kind = FeatureKind::kNumeric;
  std::vector<std::string> vocab;
};

enum class ModelTask { kRegression, kBinaryClassification };

/// An end-to-end inference pipeline: featurizers (imputer, scaler, one-hot)
/// plus a trained model — the unit the paper says must be deployed and
/// governed as a whole ("packaging the entire inference pipeline ... in a
/// way that preserves the exact behavior crafted in training", §2).
///
/// The pipeline exists in three executable forms:
///  * `ScoreRow` — direct evaluation (reference semantics);
///  * `RowScorer` (row_scorer.h) — deliberately interpreted per-row path,
///    the "scikit-learn" baseline of Figure 4;
///  * `Compile()` -> ModelGraph + GraphRuntime — the vectorized "ONNX" path
///    used standalone (ORT) and in-database (SONNX).
class Pipeline {
 public:
  enum class ModelType { kNone, kLinear, kTrees };

  Pipeline() = default;

  void SetInputs(std::vector<FeatureSpec> inputs);
  const std::vector<FeatureSpec>& inputs() const { return inputs_; }
  size_t num_inputs() const { return inputs_.size(); }

  ModelTask task() const { return task_; }
  void set_task(ModelTask task) { task_ = task; }

  /// Learns imputer fills (column means / modes) and scaler statistics from
  /// a raw numeric-encoded matrix (NaN = missing).
  void FitFeaturizers(const Matrix& raw, bool with_imputer,
                      bool with_scaler);

  void SetImputer(std::vector<double> fill_values);
  void SetScaler(std::vector<double> means, std::vector<double> stds);
  bool has_imputer() const { return has_imputer_; }
  bool has_scaler() const { return has_scaler_; }
  /// Per-input training statistics captured by FitFeaturizers; empty when
  /// no scaler was fitted. Lifecycle drift monitors compare live feature
  /// distributions against these.
  const std::vector<double>& scaler_means() const { return scaler_mean_; }
  const std::vector<double>& scaler_stds() const { return scaler_std_; }

  void SetLinearModel(LinearModel model);
  void SetTreeModel(TreeEnsembleModel model);
  ModelType model_type() const { return model_type_; }
  const LinearModel& linear_model() const { return linear_; }
  const TreeEnsembleModel& tree_model() const { return trees_; }

  /// Width of the assembled (post-one-hot) feature space.
  size_t feature_width() const;

  /// Applies imputer + scaler + one-hot to a raw matrix.
  Matrix Transform(const Matrix& raw) const;

  /// Encodes a categorical raw value to its vocabulary index (NaN if
  /// unknown).
  double EncodeCategorical(size_t input, const std::string& value) const;

  /// Scores one raw row (categoricals already index-encoded, NULLs as NaN).
  double ScoreRow(const double* raw) const;

  /// Compiles to an ONNX-style graph (validated & finalized).
  StatusOr<ModelGraph> Compile() const;

  /// Token-based text serialization; round-trips exactly.
  std::string Serialize() const;
  static StatusOr<Pipeline> Deserialize(const std::string& text);

  /// Human-readable one-paragraph description.
  std::string Summary() const;

 private:
  std::vector<FeatureSpec> inputs_;
  bool has_imputer_ = false;
  std::vector<double> imputer_values_;
  bool has_scaler_ = false;
  std::vector<double> scaler_mean_, scaler_std_;
  ModelType model_type_ = ModelType::kNone;
  LinearModel linear_;
  TreeEnsembleModel trees_;
  ModelTask task_ = ModelTask::kBinaryClassification;
};

}  // namespace flock::ml

#endif  // FLOCK_ML_PIPELINE_H_
