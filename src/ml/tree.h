#ifndef FLOCK_ML_TREE_H_
#define FLOCK_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/graph.h"

namespace flock::ml {

struct TreeTrainerOptions {
  size_t max_depth = 6;
  size_t min_samples_leaf = 5;
  /// Candidate thresholds evaluated per feature (quantile sketch).
  size_t max_candidates = 32;
  /// Features considered per split; 0 = all (set for random forests).
  size_t max_features = 0;
  /// Minimum impurity reduction a split must achieve (xgboost's "gamma").
  /// Regularizes weak/noise splits away, which also yields the model
  /// sparsity that FeaturePruning exploits.
  double min_split_gain = 1e-12;
  /// false: classification (gini impurity, leaf = positive fraction);
  /// true: regression (variance reduction, leaf = mean target).
  bool regression = false;
  uint64_t seed = 42;
};

/// CART trainer. `rows` restricts training to a row subset (bagging /
/// boosting); empty = all rows. `targets` overrides data.y (used by
/// gradient boosting to fit pseudo-residuals).
Tree TrainDecisionTree(const Dataset& data, const TreeTrainerOptions& options,
                       const std::vector<size_t>& rows = {},
                       const std::vector<double>* targets = nullptr);

struct ForestOptions {
  size_t num_trees = 20;
  double row_subsample = 0.7;
  TreeTrainerOptions tree;
};

/// A trained tree ensemble ready to become a TreeEnsemble graph node.
struct TreeEnsembleModel {
  std::vector<Tree> trees;
  double base = 0.0;
  bool average = false;
  /// Apply a logistic link to the raw ensemble output (GBDT classifiers).
  bool logistic = false;

  double Score(const double* features) const;
  size_t TotalNodes() const;
};

/// Bagged random forest; classification leaves hold P(y=1), so the averaged
/// output is already a probability (no link function).
TreeEnsembleModel TrainRandomForest(const Dataset& data,
                                    const ForestOptions& options);

struct GbtOptions {
  size_t num_trees = 30;
  size_t max_depth = 4;
  double learning_rate = 0.2;
  double row_subsample = 0.8;
  size_t min_samples_leaf = 10;
  size_t max_candidates = 32;
  double min_split_gain = 1e-12;  // see TreeTrainerOptions::min_split_gain
  uint64_t seed = 42;
  /// true: binary log-loss (output through sigmoid); false: squared loss.
  bool classification = true;
};

/// Gradient-boosted decision trees.
TreeEnsembleModel TrainGradientBoosting(const Dataset& data,
                                        const GbtOptions& options);

}  // namespace flock::ml

#endif  // FLOCK_ML_TREE_H_
