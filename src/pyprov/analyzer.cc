#include "pyprov/analyzer.h"

#include "common/string_util.h"

namespace flock::pyprov {

namespace {

struct VarInfo {
  enum class Kind {
    kUnknown,
    kDataset,
    kView,  // projection / split / transformed slice of datasets
    kModel,
    kFeaturizer,
    kPrediction,
    kMetric,
  };
  Kind kind = Kind::kUnknown;
  std::set<std::string> sources;  // reachable dataset source ids
  int model_index = -1;           // into AnalysisResult::models
  std::string model_variable;     // for predictions
};

class AnalyzerImpl {
 public:
  AnalyzerImpl(const Script& script, const KnowledgeBase& kb)
      : script_(script), kb_(kb) {}

  AnalysisResult Run() {
    for (const PyStatement& stmt : script_.statements) {
      ProcessStatement(stmt);
    }
    return std::move(result_);
  }

 private:
  void ProcessStatement(const PyStatement& stmt) {
    switch (stmt.kind) {
      case PyStatement::Kind::kImport:
      case PyStatement::Kind::kFromImport:
        for (const auto& [name, alias] : stmt.imports) {
          imported_symbols_[alias] = name;
        }
        break;
      case PyStatement::Kind::kFunctionDef:
        user_functions_.insert(stmt.func_name);
        break;
      case PyStatement::Kind::kAssign: {
        VarInfo info = Eval(*stmt.value);
        if (stmt.targets.size() == 1) {
          Bind(stmt.targets[0], info);
        } else {
          // Tuple unpacking (train_test_split and friends): every target
          // inherits the value's lineage.
          for (const std::string& target : stmt.targets) {
            VarInfo piece = info;
            if (piece.kind == VarInfo::Kind::kDataset) {
              piece.kind = VarInfo::Kind::kView;
            }
            Bind(target, piece);
          }
        }
        break;
      }
      case PyStatement::Kind::kExpr:
        if (stmt.value) Eval(*stmt.value);
        break;
    }
  }

  void Bind(const std::string& target, const VarInfo& info) {
    // Attribute/subscript targets (df['x'] = ...) do not rebind names.
    if (target.find('.') != std::string::npos ||
        target.find('[') != std::string::npos) {
      return;
    }
    vars_[target] = info;
    if (info.kind == VarInfo::Kind::kModel && info.model_index >= 0) {
      result_.models[static_cast<size_t>(info.model_index)].variable =
          target;
    }
  }

  VarInfo Eval(const PyExpr& e) {
    switch (e.kind) {
      case PyExpr::Kind::kName: {
        const VarInfo* info = Lookup(e.name);
        return info != nullptr ? *info : VarInfo{};
      }
      case PyExpr::Kind::kString:
      case PyExpr::Kind::kNumber:
        return VarInfo{};
      case PyExpr::Kind::kList:
      case PyExpr::Kind::kTuple:
      case PyExpr::Kind::kBinOp: {
        VarInfo out;
        for (const auto& item : e.items) {
          VarInfo piece = Eval(*item);
          out.sources.insert(piece.sources.begin(), piece.sources.end());
          if (piece.kind != VarInfo::Kind::kUnknown) {
            out.kind = VarInfo::Kind::kView;
          }
        }
        return out;
      }
      case PyExpr::Kind::kAttribute: {
        // Attribute reads (df.values, model.coef_) keep the base lineage.
        VarInfo base = Eval(*e.base);
        if (base.kind == VarInfo::Kind::kDataset ||
            base.kind == VarInfo::Kind::kView) {
          base.kind = VarInfo::Kind::kView;
          return base;
        }
        return VarInfo{};
      }
      case PyExpr::Kind::kSubscript: {
        VarInfo base = Eval(*e.base);
        if (base.kind == VarInfo::Kind::kDataset ||
            base.kind == VarInfo::Kind::kView) {
          base.kind = VarInfo::Kind::kView;
          return base;
        }
        return VarInfo{};
      }
      case PyExpr::Kind::kCall:
        return EvalCall(e);
    }
    return VarInfo{};
  }

  const VarInfo* Lookup(const std::string& name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? nullptr : &it->second;
  }

  /// Resolves a callee's terminal symbol name through imports:
  /// `LogisticRegression` imported from sklearn stays itself; `pd.read_csv`
  /// yields "read_csv".
  std::string CalleeSymbol(const PyExpr& callee) const {
    if (callee.kind == PyExpr::Kind::kName) {
      auto it = imported_symbols_.find(callee.name);
      return it != imported_symbols_.end() ? it->second : callee.name;
    }
    if (callee.kind == PyExpr::Kind::kAttribute) return callee.name;
    return "";
  }

  std::set<std::string> UnionArgSources(const PyExpr& call) {
    std::set<std::string> sources;
    for (const auto& arg : call.items) {
      VarInfo info = Eval(*arg);
      sources.insert(info.sources.begin(), info.sources.end());
    }
    for (const auto& [kw, arg] : call.kwargs) {
      VarInfo info = Eval(*arg);
      sources.insert(info.sources.begin(), info.sources.end());
    }
    return sources;
  }

  VarInfo EvalCall(const PyExpr& call) {
    const PyExpr& callee = *call.base;
    std::string symbol = CalleeSymbol(callee);

    // Method call on a tracked or inline-constructed object? Evaluating
    // the receiver generally also supports chained construction:
    // `model = Ridge(alpha=0.1).fit(X, y)`.
    VarInfo receiver_info;
    bool has_receiver = false;
    std::string receiver_name;
    if (callee.kind == PyExpr::Kind::kAttribute) {
      if (callee.base->kind == PyExpr::Kind::kName) {
        receiver_name = callee.base->name;
        const VarInfo* named = Lookup(receiver_name);
        if (named != nullptr) {
          receiver_info = *named;
          has_receiver = true;
        }
      } else {
        receiver_info = Eval(*callee.base);
        has_receiver = receiver_info.kind != VarInfo::Kind::kUnknown;
      }
    }
    const VarInfo* receiver = has_receiver ? &receiver_info : nullptr;

    if (receiver != nullptr) {
      if (receiver->kind == VarInfo::Kind::kModel &&
          kb_.IsFitMethod(symbol)) {
        std::set<std::string> sources = UnionArgSources(call);
        if (receiver->model_index >= 0) {
          ModelFinding& model =
              result_.models[static_cast<size_t>(receiver->model_index)];
          model.trained = true;
          model.training_sources.insert(sources.begin(), sources.end());
        }
        return *receiver;  // fit() returns self (chaining)
      }
      if (receiver->kind == VarInfo::Kind::kModel &&
          kb_.IsPredictMethod(symbol)) {
        VarInfo out;
        out.kind = VarInfo::Kind::kPrediction;
        out.model_variable = receiver_name;
        out.sources = UnionArgSources(call);
        return out;
      }
      if (receiver->kind == VarInfo::Kind::kFeaturizer &&
          (kb_.IsFitMethod(symbol) || kb_.IsPredictMethod(symbol))) {
        // Featurizer transform keeps data lineage flowing.
        VarInfo out;
        out.kind = VarInfo::Kind::kView;
        out.sources = UnionArgSources(call);
        return out;
      }
      if ((receiver->kind == VarInfo::Kind::kDataset ||
           receiver->kind == VarInfo::Kind::kView) &&
          kb_.IsCombiner(symbol)) {
        VarInfo out;
        out.kind = VarInfo::Kind::kView;
        out.sources = receiver->sources;
        std::set<std::string> extra = UnionArgSources(call);
        out.sources.insert(extra.begin(), extra.end());
        return out;
      }
      if (kb_.IsReader(symbol)) {
        // db.query('SELECT ...') — reader method on an untyped handle.
        return MakeDataset(call, symbol);
      }
      // Unknown method on a tracked value: lineage passes through for
      // data-like receivers (pessimistic for models).
      if (receiver->kind == VarInfo::Kind::kDataset ||
          receiver->kind == VarInfo::Kind::kView) {
        VarInfo out;
        out.kind = VarInfo::Kind::kView;
        out.sources = receiver->sources;
        return out;
      }
      return VarInfo{};
    }

    // Free / module-level calls.
    if (user_functions_.count(symbol) > 0 ||
        (callee.kind == PyExpr::Kind::kName &&
         user_functions_.count(callee.name) > 0)) {
      // Opaque user helper: lineage does not survive. (Coverage loss.)
      return VarInfo{};
    }
    if (kb_.IsModelConstructor(symbol)) {
      VarInfo out;
      out.kind = VarInfo::Kind::kModel;
      ModelFinding model;
      model.type = symbol;
      for (const auto& [kw, arg] : call.kwargs) {
        std::string value;
        if (arg->kind == PyExpr::Kind::kNumber) {
          double rounded = static_cast<double>(
              static_cast<long long>(arg->num));
          value = rounded == arg->num
                      ? std::to_string(static_cast<long long>(arg->num))
                      : FormatDouble(arg->num, 6);
        } else if (arg->kind == PyExpr::Kind::kString) {
          value = arg->str;
        } else {
          value = "<expr>";
        }
        model.hyperparameters[kw] = value;
      }
      out.model_index = static_cast<int>(result_.models.size());
      result_.models.push_back(std::move(model));
      return out;
    }
    if (kb_.IsFeaturizerConstructor(symbol)) {
      VarInfo out;
      out.kind = VarInfo::Kind::kFeaturizer;
      return out;
    }
    if (kb_.IsReader(symbol)) {
      return MakeDataset(call, symbol);
    }
    if (kb_.IsSplitter(symbol)) {
      VarInfo out;
      out.kind = VarInfo::Kind::kView;
      out.sources = UnionArgSources(call);
      return out;
    }
    if (kb_.IsCombiner(symbol)) {
      VarInfo out;
      out.kind = VarInfo::Kind::kView;
      out.sources = UnionArgSources(call);
      return out;
    }
    if (kb_.IsMetric(symbol)) {
      MetricFinding metric;
      metric.name = symbol;
      for (const auto& arg : call.items) {
        if (arg->kind == PyExpr::Kind::kName) {
          const VarInfo* info = Lookup(arg->name);
          if (info != nullptr &&
              info->kind == VarInfo::Kind::kPrediction) {
            metric.model_variable = info->model_variable;
          }
          if (info != nullptr && info->kind == VarInfo::Kind::kModel) {
            metric.model_variable = arg->name;
          }
        }
      }
      result_.metrics.push_back(std::move(metric));
      VarInfo out;
      out.kind = VarInfo::Kind::kMetric;
      return out;
    }
    // Unknown API entirely: opaque.
    return VarInfo{};
  }

  VarInfo MakeDataset(const PyExpr& call, const std::string& symbol) {
    VarInfo out;
    out.kind = VarInfo::Kind::kDataset;
    DatasetFinding dataset;
    if (!call.items.empty() &&
        call.items[0]->kind == PyExpr::Kind::kString) {
      const std::string& arg = call.items[0]->str;
      bool is_sql = symbol == "read_sql" || symbol == "query" ||
                    ToUpper(arg).find("SELECT") == 0;
      dataset.is_sql = is_sql;
      dataset.source = (is_sql ? "sql:" : "file:") + arg;
    } else {
      dataset.source = "<dynamic>";
    }
    out.sources.insert(dataset.source);
    dataset.variable = "";  // filled by Bind via result indexing? kept simple
    result_.datasets.push_back(dataset);
    return out;
  }

  const Script& script_;
  const KnowledgeBase& kb_;
  std::map<std::string, std::string> imported_symbols_;
  std::set<std::string> user_functions_;
  std::map<std::string, VarInfo> vars_;
  AnalysisResult result_;
};

}  // namespace

AnalysisResult Analyze(const Script& script, const KnowledgeBase& kb) {
  AnalyzerImpl impl(script, kb);
  return impl.Run();
}

Status ExportToCatalog(const AnalysisResult& result,
                       const std::string& script_name,
                       prov::Catalog* catalog) {
  using prov::EdgeType;
  using prov::EntityType;
  uint64_t script_id =
      catalog->GetOrCreate(EntityType::kScript, script_name);
  for (const DatasetFinding& dataset : result.datasets) {
    uint64_t dataset_id =
        catalog->GetOrCreate(EntityType::kDataset, dataset.source);
    catalog->AddEdge(script_id, dataset_id, EdgeType::kReads);
  }
  for (const ModelFinding& model : result.models) {
    std::string model_name = script_name + ":" +
                             (model.variable.empty() ? model.type
                                                     : model.variable);
    uint64_t model_id =
        catalog->GetOrCreate(EntityType::kModel, model_name);
    FLOCK_RETURN_NOT_OK(
        catalog->SetProperty(model_id, "type", model.type));
    catalog->AddEdge(script_id, model_id, EdgeType::kContains);
    for (const auto& [param, value] : model.hyperparameters) {
      uint64_t param_id = catalog->GetOrCreate(
          EntityType::kHyperparameter, model_name + "." + param);
      FLOCK_RETURN_NOT_OK(catalog->SetProperty(param_id, "value", value));
      catalog->AddEdge(model_id, param_id, EdgeType::kHasParam);
    }
    for (const std::string& source : model.training_sources) {
      uint64_t dataset_id =
          catalog->GetOrCreate(EntityType::kDataset, source);
      catalog->AddEdge(dataset_id, model_id, EdgeType::kTrains);
      catalog->AddEdge(model_id, dataset_id, EdgeType::kDerivesFrom);
    }
  }
  for (const MetricFinding& metric : result.metrics) {
    uint64_t metric_id = catalog->GetOrCreate(
        EntityType::kMetric, script_name + ":" + metric.name);
    if (!metric.model_variable.empty()) {
      auto model_id = catalog->Find(
          EntityType::kModel, script_name + ":" + metric.model_variable);
      if (model_id.ok()) {
        catalog->AddEdge(metric_id, *model_id, EdgeType::kEvaluates);
      }
    }
  }
  return Status::OK();
}

}  // namespace flock::pyprov
