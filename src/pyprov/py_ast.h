#ifndef FLOCK_PYPROV_PY_AST_H_
#define FLOCK_PYPROV_PY_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace flock::pyprov {

/// Expression node of the pipeline-script language — a small imperative
/// Python subset sufficient for the data-science scripts the paper's
/// Python provenance module analyzes (pandas reads, sklearn fit/predict,
/// metric calls).
struct PyExpr {
  enum class Kind {
    kName,
    kString,
    kNumber,
    kList,
    kTuple,
    kCall,
    kAttribute,
    kSubscript,
    kBinOp,
  };

  Kind kind = Kind::kName;
  std::string name;   // kName identifier / kAttribute attribute name
  std::string str;    // kString value
  double num = 0.0;   // kNumber value
  std::string op;     // kBinOp operator text

  std::unique_ptr<PyExpr> base;  // kCall callee / kAttribute / kSubscript
  std::vector<std::unique_ptr<PyExpr>> items;  // args / elements / operands
  std::vector<std::pair<std::string, std::unique_ptr<PyExpr>>> kwargs;

  /// Dotted rendering of a name/attribute chain ("pd.read_csv"); empty if
  /// the expression is not a pure chain.
  std::string DottedPath() const;
};

using PyExprPtr = std::unique_ptr<PyExpr>;

struct PyStatement {
  enum class Kind { kImport, kFromImport, kAssign, kExpr, kFunctionDef };

  Kind kind = Kind::kExpr;

  // kImport / kFromImport
  std::string module;
  std::vector<std::pair<std::string, std::string>> imports;  // (name, alias)

  // kAssign
  std::vector<std::string> targets;  // simple-name targets only

  // kAssign / kExpr
  PyExprPtr value;

  // kFunctionDef (bodies are opaque to the analyzer — a deliberate
  // coverage boundary matching real static-analysis limitations)
  std::string func_name;
  std::vector<PyStatement> body;
};

struct Script {
  std::string name;
  std::vector<PyStatement> statements;
};

}  // namespace flock::pyprov

#endif  // FLOCK_PYPROV_PY_AST_H_
