#include "pyprov/py_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace flock::pyprov {

namespace {

// ---------------------------------------------------------------------------
// Expression tokenizer + parser (within one logical line)
// ---------------------------------------------------------------------------

struct Tok {
  enum class Type {
    kName,
    kString,
    kNumber,
    kOp,      // + - * / % == != < > <= >= etc.
    kLParen,
    kRParen,
    kLBracket,
    kRBracket,
    kComma,
    kDot,
    kAssignEq,  // single '=' (kwargs)
    kColon,
    kEnd,
  };
  Type type = Type::kEnd;
  std::string text;
  double num = 0.0;
};

class ExprLexer {
 public:
  explicit ExprLexer(const std::string& s) : s_(s) {}

  StatusOr<std::vector<Tok>> Run() {
    std::vector<Tok> out;
    size_t i = 0;
    while (i < s_.size()) {
      char c = s_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Tok tok;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[i])) ||
                s_[i] == '_')) {
          ++i;
        }
        tok.type = Tok::Type::kName;
        tok.text = s_.substr(start, i - start);
        out.push_back(tok);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        while (i < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i])) ||
                s_[i] == '.' || s_[i] == 'e' || s_[i] == 'E' ||
                ((s_[i] == '+' || s_[i] == '-') && i > start &&
                 (s_[i - 1] == 'e' || s_[i - 1] == 'E')))) {
          ++i;
        }
        tok.type = Tok::Type::kNumber;
        tok.text = s_.substr(start, i - start);
        try {
          tok.num = std::stod(tok.text);
        } catch (...) {
          return Status::ParseError("bad number: " + tok.text);
        }
        out.push_back(tok);
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        ++i;
        std::string text;
        while (i < s_.size() && s_[i] != quote) {
          text.push_back(s_[i]);
          ++i;
        }
        if (i >= s_.size()) {
          return Status::ParseError("unterminated string");
        }
        ++i;
        tok.type = Tok::Type::kString;
        tok.text = std::move(text);
        out.push_back(tok);
        continue;
      }
      auto push = [&](Tok::Type t, size_t len) {
        tok.type = t;
        tok.text = s_.substr(i, len);
        i += len;
        out.push_back(tok);
      };
      switch (c) {
        case '(':
          push(Tok::Type::kLParen, 1);
          break;
        case ')':
          push(Tok::Type::kRParen, 1);
          break;
        case '[':
          push(Tok::Type::kLBracket, 1);
          break;
        case ']':
          push(Tok::Type::kRBracket, 1);
          break;
        case ',':
          push(Tok::Type::kComma, 1);
          break;
        case '.':
          push(Tok::Type::kDot, 1);
          break;
        case ':':
          push(Tok::Type::kColon, 1);
          break;
        case '=':
          if (i + 1 < s_.size() && s_[i + 1] == '=') {
            push(Tok::Type::kOp, 2);
          } else {
            push(Tok::Type::kAssignEq, 1);
          }
          break;
        case '+':
        case '-':
        case '*':
        case '/':
        case '%':
          push(Tok::Type::kOp, 1);
          break;
        case '<':
        case '>':
        case '!':
          if (i + 1 < s_.size() && s_[i + 1] == '=') {
            push(Tok::Type::kOp, 2);
          } else {
            push(Tok::Type::kOp, 1);
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' in expression");
      }
    }
    Tok end;
    end.type = Tok::Type::kEnd;
    out.push_back(end);
    return out;
  }

 private:
  const std::string& s_;
};

class ExprParser {
 public:
  explicit ExprParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  StatusOr<PyExprPtr> Parse() {
    FLOCK_ASSIGN_OR_RETURN(PyExprPtr e, ParseBinOp());
    return e;
  }

  bool AtEnd() const { return toks_[pos_].type == Tok::Type::kEnd; }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  const Tok& Advance() { return toks_[pos_++]; }
  bool Match(Tok::Type t) {
    if (Peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<PyExprPtr> ParseBinOp() {
    FLOCK_ASSIGN_OR_RETURN(PyExprPtr lhs, ParsePostfix());
    while (Peek().type == Tok::Type::kOp) {
      std::string op = Advance().text;
      FLOCK_ASSIGN_OR_RETURN(PyExprPtr rhs, ParsePostfix());
      auto node = std::make_unique<PyExpr>();
      node->kind = PyExpr::Kind::kBinOp;
      node->op = op;
      node->items.push_back(std::move(lhs));
      node->items.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<PyExprPtr> ParsePostfix() {
    FLOCK_ASSIGN_OR_RETURN(PyExprPtr e, ParsePrimary());
    while (true) {
      if (Match(Tok::Type::kDot)) {
        if (Peek().type != Tok::Type::kName) {
          return Status::ParseError("expected attribute name after '.'");
        }
        auto node = std::make_unique<PyExpr>();
        node->kind = PyExpr::Kind::kAttribute;
        node->name = Advance().text;
        node->base = std::move(e);
        e = std::move(node);
        continue;
      }
      if (Match(Tok::Type::kLParen)) {
        auto node = std::make_unique<PyExpr>();
        node->kind = PyExpr::Kind::kCall;
        node->base = std::move(e);
        while (Peek().type != Tok::Type::kRParen &&
               Peek().type != Tok::Type::kEnd) {
          // Keyword argument?
          if (Peek().type == Tok::Type::kName &&
              toks_[pos_ + 1].type == Tok::Type::kAssignEq) {
            std::string kw = Advance().text;
            Advance();  // '='
            FLOCK_ASSIGN_OR_RETURN(PyExprPtr v, ParseBinOp());
            node->kwargs.emplace_back(kw, std::move(v));
          } else {
            FLOCK_ASSIGN_OR_RETURN(PyExprPtr arg, ParseBinOp());
            node->items.push_back(std::move(arg));
          }
          if (!Match(Tok::Type::kComma)) break;
        }
        if (!Match(Tok::Type::kRParen)) {
          return Status::ParseError("expected ')' in call");
        }
        e = std::move(node);
        continue;
      }
      if (Match(Tok::Type::kLBracket)) {
        auto node = std::make_unique<PyExpr>();
        node->kind = PyExpr::Kind::kSubscript;
        node->base = std::move(e);
        while (Peek().type != Tok::Type::kRBracket &&
               Peek().type != Tok::Type::kEnd) {
          FLOCK_ASSIGN_OR_RETURN(PyExprPtr idx, ParseBinOp());
          node->items.push_back(std::move(idx));
          if (!Match(Tok::Type::kComma)) break;
        }
        if (!Match(Tok::Type::kRBracket)) {
          return Status::ParseError("expected ']' in subscript");
        }
        e = std::move(node);
        continue;
      }
      break;
    }
    return e;
  }

  StatusOr<PyExprPtr> ParsePrimary() {
    const Tok& tok = Peek();
    switch (tok.type) {
      case Tok::Type::kName: {
        auto e = std::make_unique<PyExpr>();
        e->kind = PyExpr::Kind::kName;
        e->name = Advance().text;
        return StatusOr<PyExprPtr>(std::move(e));
      }
      case Tok::Type::kString: {
        auto e = std::make_unique<PyExpr>();
        e->kind = PyExpr::Kind::kString;
        e->str = Advance().text;
        return StatusOr<PyExprPtr>(std::move(e));
      }
      case Tok::Type::kNumber: {
        auto e = std::make_unique<PyExpr>();
        e->kind = PyExpr::Kind::kNumber;
        e->num = Advance().num;
        return StatusOr<PyExprPtr>(std::move(e));
      }
      case Tok::Type::kOp:
        if (tok.text == "-" || tok.text == "+") {
          Advance();
          return ParsePrimary();  // unary sign folded away
        }
        return Status::ParseError("unexpected operator '" + tok.text + "'");
      case Tok::Type::kLBracket: {
        Advance();
        auto e = std::make_unique<PyExpr>();
        e->kind = PyExpr::Kind::kList;
        while (Peek().type != Tok::Type::kRBracket &&
               Peek().type != Tok::Type::kEnd) {
          FLOCK_ASSIGN_OR_RETURN(PyExprPtr item, ParseBinOp());
          e->items.push_back(std::move(item));
          if (!Match(Tok::Type::kComma)) break;
        }
        if (!Match(Tok::Type::kRBracket)) {
          return Status::ParseError("expected ']' closing list");
        }
        return StatusOr<PyExprPtr>(std::move(e));
      }
      case Tok::Type::kLParen: {
        Advance();
        auto e = std::make_unique<PyExpr>();
        e->kind = PyExpr::Kind::kTuple;
        while (Peek().type != Tok::Type::kRParen &&
               Peek().type != Tok::Type::kEnd) {
          FLOCK_ASSIGN_OR_RETURN(PyExprPtr item, ParseBinOp());
          e->items.push_back(std::move(item));
          if (!Match(Tok::Type::kComma)) break;
        }
        if (!Match(Tok::Type::kRParen)) {
          return Status::ParseError("expected ')' closing tuple");
        }
        if (e->items.size() == 1) {
          // Parenthesized expression, not a tuple.
          return StatusOr<PyExprPtr>(std::move(e->items[0]));
        }
        return StatusOr<PyExprPtr>(std::move(e));
      }
      default:
        return Status::ParseError("unexpected token in expression");
    }
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

StatusOr<PyExprPtr> ParseExprText(const std::string& text) {
  ExprLexer lexer(text);
  FLOCK_ASSIGN_OR_RETURN(std::vector<Tok> toks, lexer.Run());
  ExprParser parser(std::move(toks));
  FLOCK_ASSIGN_OR_RETURN(PyExprPtr e, parser.Parse());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing tokens in expression: " + text);
  }
  return e;
}

// ---------------------------------------------------------------------------
// Line structuring
// ---------------------------------------------------------------------------

std::string StripComment(const std::string& line) {
  bool in_single = false, in_double = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == '#' && !in_single && !in_double) {
      return line.substr(0, i);
    }
  }
  return line;
}

size_t IndentOf(const std::string& line) {
  size_t indent = 0;
  for (char c : line) {
    if (c == ' ') {
      ++indent;
    } else if (c == '\t') {
      indent += 4;
    } else {
      break;
    }
  }
  return indent;
}

/// Finds a top-level '=' (assignment) outside parens/brackets/strings.
/// Returns npos if none.
size_t FindAssign(const std::string& line) {
  int depth = 0;
  bool in_single = false, in_double = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (in_single || in_double) continue;
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == '=' && depth == 0) {
      bool eq_before = i > 0 && (line[i - 1] == '=' || line[i - 1] == '!' ||
                                 line[i - 1] == '<' || line[i - 1] == '>');
      bool eq_after = i + 1 < line.size() && line[i + 1] == '=';
      if (!eq_before && !eq_after) return i;
    }
  }
  return std::string::npos;
}

StatusOr<PyStatement> ParseLine(const std::string& raw);

StatusOr<PyStatement> ParseImport(const std::string& line) {
  PyStatement stmt;
  if (StartsWith(line, "from ")) {
    stmt.kind = PyStatement::Kind::kFromImport;
    size_t import_pos = line.find(" import ");
    if (import_pos == std::string::npos) {
      return Status::ParseError("malformed from-import: " + line);
    }
    stmt.module = Trim(line.substr(5, import_pos - 5));
    std::string rest = line.substr(import_pos + 8);
    for (const std::string& piece : Split(rest, ',')) {
      std::vector<std::string> words = SplitWhitespace(piece);
      if (words.empty()) continue;
      std::string name = words[0];
      std::string alias =
          (words.size() == 3 && words[1] == "as") ? words[2] : name;
      stmt.imports.emplace_back(name, alias);
    }
    return stmt;
  }
  stmt.kind = PyStatement::Kind::kImport;
  std::string rest = line.substr(7);
  for (const std::string& piece : Split(rest, ',')) {
    std::vector<std::string> words = SplitWhitespace(piece);
    if (words.empty()) continue;
    std::string name = words[0];
    std::string alias =
        (words.size() == 3 && words[1] == "as") ? words[2] : name;
    stmt.imports.emplace_back(name, alias);
    stmt.module = name;
  }
  return stmt;
}

StatusOr<PyStatement> ParseLine(const std::string& raw) {
  std::string line = Trim(raw);
  if (StartsWith(line, "import ") || StartsWith(line, "from ")) {
    return ParseImport(line);
  }
  size_t eq = FindAssign(line);
  if (eq != std::string::npos) {
    PyStatement stmt;
    stmt.kind = PyStatement::Kind::kAssign;
    std::string lhs = Trim(line.substr(0, eq));
    for (const std::string& target : Split(lhs, ',')) {
      std::string t = Trim(target);
      // Only simple-name targets participate in dataflow; attribute or
      // subscript targets are recorded as opaque.
      stmt.targets.push_back(t);
    }
    FLOCK_ASSIGN_OR_RETURN(stmt.value,
                           ParseExprText(Trim(line.substr(eq + 1))));
    return stmt;
  }
  PyStatement stmt;
  stmt.kind = PyStatement::Kind::kExpr;
  FLOCK_ASSIGN_OR_RETURN(stmt.value, ParseExprText(line));
  return stmt;
}

}  // namespace

std::string PyExpr::DottedPath() const {
  if (kind == Kind::kName) return name;
  if (kind == Kind::kAttribute && base != nullptr) {
    std::string prefix = base->DottedPath();
    if (prefix.empty()) return "";
    return prefix + "." + name;
  }
  return "";
}

StatusOr<PyExprPtr> ParsePyExpression(const std::string& text) {
  return ParseExprText(text);
}

StatusOr<Script> ParseScript(const std::string& name,
                             const std::string& source) {
  Script script;
  script.name = name;
  std::vector<std::string> lines = Split(source, '\n');
  size_t i = 0;
  while (i < lines.size()) {
    std::string line = StripComment(lines[i]);
    if (Trim(line).empty()) {
      ++i;
      continue;
    }
    std::string trimmed = Trim(line);
    if (StartsWith(trimmed, "def ")) {
      PyStatement def;
      def.kind = PyStatement::Kind::kFunctionDef;
      size_t paren = trimmed.find('(');
      def.func_name = Trim(trimmed.substr(4, paren == std::string::npos
                                                 ? std::string::npos
                                                 : paren - 4));
      size_t def_indent = IndentOf(line);
      ++i;
      // Collect the indented body (parsed leniently; failures become
      // opaque statements — mirroring real-world analyzer limits).
      while (i < lines.size()) {
        std::string body_line = StripComment(lines[i]);
        if (Trim(body_line).empty()) {
          ++i;
          continue;
        }
        if (IndentOf(body_line) <= def_indent) break;
        auto parsed = ParseLine(body_line);
        if (parsed.ok()) def.body.push_back(std::move(parsed).value());
        ++i;
      }
      script.statements.push_back(std::move(def));
      continue;
    }
    if (StartsWith(trimmed, "if ") || StartsWith(trimmed, "for ") ||
        StartsWith(trimmed, "while ") || StartsWith(trimmed, "return") ||
        StartsWith(trimmed, "print(") || trimmed == "else:" ||
        StartsWith(trimmed, "elif ")) {
      // Control flow is opaque to the analyzer; nested simple statements
      // still parse on their own lines (flow-insensitive analysis).
      ++i;
      continue;
    }
    auto parsed = ParseLine(line);
    if (!parsed.ok()) {
      return Status::ParseError("line " + std::to_string(i + 1) + " of " +
                                name + ": " + parsed.status().message());
    }
    script.statements.push_back(std::move(parsed).value());
    ++i;
  }
  return script;
}

}  // namespace flock::pyprov
