#include "pyprov/knowledge_base.h"

namespace flock::pyprov {

KnowledgeBase KnowledgeBase::Default() {
  KnowledgeBase kb;
  kb.model_ctors_ = {
      "LogisticRegression",     "LinearRegression",
      "Ridge",                  "Lasso",
      "DecisionTreeClassifier", "DecisionTreeRegressor",
      "RandomForestClassifier", "RandomForestRegressor",
      "GradientBoostingClassifier", "GradientBoostingRegressor",
      "XGBClassifier",          "XGBRegressor",
      "LGBMClassifier",         "LGBMRegressor",
      "SVC",                    "SVR",
      "KNeighborsClassifier",   "KMeans",
      "MLPClassifier",          "GaussianNB",
  };
  kb.featurizer_ctors_ = {
      "StandardScaler", "MinMaxScaler",   "OneHotEncoder",
      "LabelEncoder",   "SimpleImputer",  "CountVectorizer",
      "TfidfVectorizer", "PCA",           "PolynomialFeatures",
  };
  kb.readers_ = {
      "read_csv",     "read_parquet", "read_json", "read_table",
      "read_sql",     "read_excel",   "read_feather",
      "query",  // db.query('SELECT ...')
  };
  kb.metrics_ = {
      "accuracy_score",     "roc_auc_score",      "f1_score",
      "precision_score",    "recall_score",       "mean_squared_error",
      "mean_absolute_error", "r2_score",          "log_loss",
  };
  kb.fit_methods_ = {"fit", "fit_transform", "fit_predict"};
  kb.predict_methods_ = {"predict", "predict_proba", "transform",
                         "decision_function", "score"};
  kb.splitters_ = {"train_test_split", "KFold", "cross_val_score"};
  kb.combiners_ = {"concat", "merge", "join", "append", "dropna",
                   "fillna", "groupby", "sample", "copy", "head",
                   "reset_index", "drop", "get_dummies"};
  return kb;
}

}  // namespace flock::pyprov
