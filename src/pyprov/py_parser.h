#ifndef FLOCK_PYPROV_PY_PARSER_H_
#define FLOCK_PYPROV_PY_PARSER_H_

#include <string>

#include "common/status_or.h"
#include "pyprov/py_ast.h"

namespace flock::pyprov {

/// Parses a pipeline script (the mini-Python subset). Supports: `import m
/// [as a]`, `from m import a [as b], ...`, assignments (single and tuple
/// targets), expression statements, `def f(...):` with an indented body,
/// `#` comments, and expressions built from names, attribute access,
/// calls with keyword arguments, subscripts, lists, tuples, string/number
/// literals and binary operators.
StatusOr<Script> ParseScript(const std::string& name,
                             const std::string& source);

/// Parses a single expression (for tests).
StatusOr<PyExprPtr> ParsePyExpression(const std::string& text);

}  // namespace flock::pyprov

#endif  // FLOCK_PYPROV_PY_PARSER_H_
