#ifndef FLOCK_PYPROV_KNOWLEDGE_BASE_H_
#define FLOCK_PYPROV_KNOWLEDGE_BASE_H_

#include <set>
#include <string>

namespace flock::pyprov {

/// The "knowledge base of ML APIs that we maintain" (paper §4.2): which
/// callables construct models, read data, compute metrics, and which
/// methods train or score. Static analysis is exactly as good as this KB —
/// scripts using APIs outside it lose coverage, which is what Table 2's
/// Kaggle-vs-internal gap measures.
class KnowledgeBase {
 public:
  /// The default KB: pandas/sklearn-style API surface.
  static KnowledgeBase Default();

  bool IsModelConstructor(const std::string& name) const {
    return model_ctors_.count(name) > 0;
  }
  bool IsFeaturizerConstructor(const std::string& name) const {
    return featurizer_ctors_.count(name) > 0;
  }
  /// Matches the final path segment of reader calls ("read_csv" matches
  /// pd.read_csv and pandas.read_csv).
  bool IsReader(const std::string& name) const {
    return readers_.count(name) > 0;
  }
  bool IsMetric(const std::string& name) const {
    return metrics_.count(name) > 0;
  }
  bool IsFitMethod(const std::string& name) const {
    return fit_methods_.count(name) > 0;
  }
  bool IsPredictMethod(const std::string& name) const {
    return predict_methods_.count(name) > 0;
  }
  bool IsSplitter(const std::string& name) const {
    return splitters_.count(name) > 0;
  }
  bool IsCombiner(const std::string& name) const {
    return combiners_.count(name) > 0;
  }

  void AddModelConstructor(const std::string& name) {
    model_ctors_.insert(name);
  }
  void AddReader(const std::string& name) { readers_.insert(name); }
  void AddMetric(const std::string& name) { metrics_.insert(name); }

  size_t size() const {
    return model_ctors_.size() + featurizer_ctors_.size() +
           readers_.size() + metrics_.size() + fit_methods_.size() +
           predict_methods_.size() + splitters_.size() + combiners_.size();
  }

 private:
  std::set<std::string> model_ctors_;
  std::set<std::string> featurizer_ctors_;
  std::set<std::string> readers_;
  std::set<std::string> metrics_;
  std::set<std::string> fit_methods_;
  std::set<std::string> predict_methods_;
  std::set<std::string> splitters_;
  std::set<std::string> combiners_;
};

}  // namespace flock::pyprov

#endif  // FLOCK_PYPROV_KNOWLEDGE_BASE_H_
