#ifndef FLOCK_PYPROV_ANALYZER_H_
#define FLOCK_PYPROV_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "prov/catalog.h"
#include "pyprov/knowledge_base.h"
#include "pyprov/py_ast.h"

namespace flock::pyprov {

/// A model identified in a script.
struct ModelFinding {
  std::string variable;
  std::string type;  // constructor name, e.g. "LogisticRegression"
  std::map<std::string, std::string> hyperparameters;
  bool trained = false;
  /// Source identifiers ("file:loans.csv", "sql:SELECT ...") of the data
  /// that flowed into fit().
  std::set<std::string> training_sources;
};

struct DatasetFinding {
  std::string variable;
  std::string source;  // "file:..." or "sql:..." or "<dynamic>"
  bool is_sql = false;
};

struct MetricFinding {
  std::string name;            // e.g. "accuracy_score"
  std::string model_variable;  // evaluated model, when identified
};

/// Output of static analysis over one script — the paper's Python
/// provenance module "identif[ies] which Python variables correspond to
/// models, hyperparameters, model features and metrics ... and eventually
/// connect[s] them with the datasets used to generate training data".
struct AnalysisResult {
  std::vector<ModelFinding> models;
  std::vector<DatasetFinding> datasets;
  std::vector<MetricFinding> metrics;

  size_t models_with_training_data() const {
    size_t n = 0;
    for (const auto& m : models) {
      if (!m.training_sources.empty()) ++n;
    }
    return n;
  }
};

/// Flow-insensitive forward dataflow over the script using `kb`. Calls to
/// user-defined functions and unknown APIs are opaque — lineage flowing
/// through them is lost, which is the realistic coverage boundary that
/// Table 2 measures.
AnalysisResult Analyze(const Script& script, const KnowledgeBase& kb);

/// Publishes an analysis into the provenance catalog: the script, its
/// models (+hyperparameters), datasets, metrics, and the connecting edges.
/// SQL-backed datasets are named `sql:<normalized query>` so the bridge
/// (prov/bridge.h) can link them to table entities captured by the SQL
/// module — addressing cross-system challenge C3.
Status ExportToCatalog(const AnalysisResult& result,
                       const std::string& script_name,
                       prov::Catalog* catalog);

}  // namespace flock::pyprov

#endif  // FLOCK_PYPROV_ANALYZER_H_
