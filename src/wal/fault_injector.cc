#include "wal/fault_injector.h"

#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flock::wal {

FaultInjector::FaultInjector() {
  const char* point = std::getenv("FLOCK_FAULT_POINT");
  if (point == nullptr || point[0] == '\0') return;
  Mode mode = Mode::kCrash;
  const char* mode_env = std::getenv("FLOCK_FAULT_MODE");
  if (mode_env != nullptr && std::strcmp(mode_env, "error") == 0) {
    mode = Mode::kError;
  }
  int skip = 0;
  const char* skip_env = std::getenv("FLOCK_FAULT_SKIP");
  if (skip_env != nullptr && skip_env[0] != '\0') {
    // atoi would silently read garbage ("3x" → 3, "abc" → 0) and the
    // crash test would arm the wrong trigger count — a misconfigured
    // harness must fail loudly, not pass vacuously.
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(skip_env, &end, 10);
    if (end == skip_env || *end != '\0' || errno == ERANGE || parsed < 0 ||
        parsed > INT_MAX) {
      std::fprintf(stderr,
                   "FLOCK_FAULT_SKIP must be a non-negative integer, got "
                   "\"%s\"\n", skip_env);
      std::abort();
    }
    skip = static_cast<int>(parsed);
  }
  Arm(point, mode, skip);
}

FaultInjector* FaultInjector::Get() {
  static FaultInjector* instance = new FaultInjector();
  return instance;
}

const std::vector<std::string>& FaultInjector::Points() {
  static const std::vector<std::string>* points =
      new std::vector<std::string>{
          // WAL append path, in execution order.
          "wal.append.before_write",
          "wal.append.partial_write",
          "wal.append.before_fsync",
          "wal.append.after_fsync",
          // Checkpoint path, in execution order.
          "checkpoint.before_snapshot_write",
          "checkpoint.after_segment_flush",
          "checkpoint.before_snapshot_rename",
          "checkpoint.after_snapshot_rename",
          "checkpoint.after_wal_reset",
      };
  return *points;
}

Status FaultInjector::Hit(const std::string& point) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (point_ != point) return Status::OK();
  if (remaining_skips_ > 0) {
    --remaining_skips_;
    return Status::OK();
  }
  if (mode_ == Mode::kCrash) {
    // _exit: no atexit handlers, no stream flushes — as close to a power
    // cut as a live process can simulate.
    _exit(kCrashExitCode);
  }
  armed_.store(false, std::memory_order_release);
  return Status::Internal("injected fault at " + point);
}

bool FaultInjector::WillTrigger(const std::string& point) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return point_ == point && remaining_skips_ == 0;
}

void FaultInjector::Arm(const std::string& point, Mode mode, int skip) {
  std::lock_guard<std::mutex> lock(mu_);
  point_ = point;
  mode_ = mode;
  remaining_skips_ = skip;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

}  // namespace flock::wal
