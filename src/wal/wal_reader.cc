#include "wal/wal_reader.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/serialization.h"
#include "wal/wal_format.h"

namespace flock::wal {

StatusOr<std::unique_ptr<WalReader>> WalReader::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("wal file not found: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string buf = std::move(contents).str();

  if (buf.size() < kWalHeaderSize) {
    return Status::DataLoss("wal header truncated: " + path);
  }
  if (std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("bad wal magic: " + path);
  }
  storage::ByteReader header(buf.data() + sizeof(kWalMagic),
                             kWalHeaderSize - sizeof(kWalMagic));
  uint32_t version;
  uint64_t epoch;
  FLOCK_RETURN_NOT_OK(header.GetU32(&version));
  FLOCK_RETURN_NOT_OK(header.GetU64(&epoch));
  if (version != kWalFormatVersion) {
    return Status::DataLoss("unsupported wal format version " +
                            std::to_string(version));
  }
  return std::unique_ptr<WalReader>(new WalReader(std::move(buf), epoch));
}

WalReader::WalReader(std::string buf, uint64_t epoch)
    : buf_(std::move(buf)),
      epoch_(epoch),
      pos_(kWalHeaderSize),
      valid_size_(kWalHeaderSize) {}

Status WalReader::Next(WalRecord* record, bool* done) {
  *done = false;
  if (pos_ == buf_.size()) {
    *done = true;
    return Status::OK();
  }

  // A frame header or body extending past EOF can only be a torn final
  // append: the writer lays down the full frame with one write() and
  // only acks after fsync, so an incomplete frame never committed.
  if (buf_.size() - pos_ < kRecordHeaderSize) {
    tail_truncated_ = true;
    *done = true;
    return Status::OK();
  }
  storage::ByteReader frame(buf_.data() + pos_, buf_.size() - pos_);
  uint32_t len, crc;
  FLOCK_RETURN_NOT_OK(frame.GetU32(&len));
  FLOCK_RETURN_NOT_OK(frame.GetU32(&crc));
  if (len > kMaxRecordLen) {
    // An absurd length mid-log is corruption; at the tail it is
    // indistinguishable from a torn length word, so drop it.
    if (buf_.size() - pos_ <= kRecordHeaderSize + 8) {
      tail_truncated_ = true;
      *done = true;
      return Status::OK();
    }
    return Status::DataLoss("wal record length " + std::to_string(len) +
                            " exceeds limit at offset " +
                            std::to_string(pos_));
  }
  if (len < 1 || frame.remaining() < len) {
    tail_truncated_ = true;
    *done = true;
    return Status::OK();
  }

  const char* body = buf_.data() + pos_ + kRecordHeaderSize;
  if (Crc32(body, len) != crc) {
    if (pos_ + kRecordHeaderSize + len == buf_.size()) {
      // Bad checksum on the final record: torn write, never committed.
      tail_truncated_ = true;
      *done = true;
      return Status::OK();
    }
    return Status::DataLoss("wal checksum mismatch at offset " +
                            std::to_string(pos_));
  }

  auto decoded = DecodeRecordPayload(static_cast<WalRecordType>(
                                         static_cast<uint8_t>(body[0])),
                                     body + 1, len - 1);
  FLOCK_RETURN_NOT_OK(decoded.status());
  *record = *std::move(decoded);
  pos_ += kRecordHeaderSize + len;
  valid_size_ = pos_;
  ++records_read_;
  return Status::OK();
}

WalTailReader::WalTailReader(std::string path) : path_(std::move(path)) {}

StatusOr<std::string> WalTailReader::Load(bool* epoch_changed) {
  *epoch_changed = false;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return Status::NotFound("wal file not found: " + path_);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string buf = std::move(contents).str();

  // A header shorter than the fixed prefix can only be a log mid-creation
  // (the writer lays the header down with one write): not yet durable.
  if (buf.size() < kWalHeaderSize) {
    return Status::Unavailable("wal header not yet complete: " + path_);
  }
  if (std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("bad wal magic: " + path_);
  }
  storage::ByteReader header(buf.data() + sizeof(kWalMagic),
                             kWalHeaderSize - sizeof(kWalMagic));
  uint32_t version;
  uint64_t epoch;
  FLOCK_RETURN_NOT_OK(header.GetU32(&version));
  FLOCK_RETURN_NOT_OK(header.GetU64(&epoch));
  if (version != kWalFormatVersion) {
    return Status::DataLoss("unsupported wal format version " +
                            std::to_string(version));
  }
  if (!header_seen_ || epoch != epoch_) {
    *epoch_changed = header_seen_;
    header_seen_ = true;
    epoch_ = epoch;
    next_lsn_ = 0;
    offset_ = kWalHeaderSize;
  }
  return buf;
}

StatusOr<WalTailReader::PollResult> WalTailReader::Poll(
    size_t max_records) {
  PollResult result;
  FLOCK_ASSIGN_OR_RETURN(std::string buf, Load(&result.epoch_changed));
  if (result.epoch_changed) {
    // The file was swapped by a checkpoint; hand the epoch bump to the
    // caller before streaming from the new log.
    return result;
  }
  if (offset_ > buf.size()) {
    // The file shrank without an epoch change — the writer resumed over
    // a torn tail we had not consumed (truncation never crosses a
    // committed record, so a consumed position can only vanish if the
    // bytes on disk were rewritten out from under us).
    return Status::DataLoss("wal shrank below tail cursor at offset " +
                            std::to_string(offset_) + ": " + path_);
  }

  size_t pos = offset_;
  while (result.records.size() < max_records) {
    if (pos == buf.size()) {
      result.end_of_durable_log = true;
      break;
    }
    if (buf.size() - pos < kRecordHeaderSize) {
      // Partial frame header at the tail: an append in flight.
      result.end_of_durable_log = true;
      break;
    }
    storage::ByteReader frame(buf.data() + pos, buf.size() - pos);
    uint32_t len, crc;
    FLOCK_RETURN_NOT_OK(frame.GetU32(&len));
    FLOCK_RETURN_NOT_OK(frame.GetU32(&crc));
    if (len > kMaxRecordLen) {
      // At the tail this is indistinguishable from a torn length word
      // still being written; mid-log it is corruption.
      if (buf.size() - pos <= kRecordHeaderSize + 8) {
        result.end_of_durable_log = true;
        break;
      }
      return Status::DataLoss("wal record length " + std::to_string(len) +
                              " exceeds limit at offset " +
                              std::to_string(pos));
    }
    if (len < 1 || frame.remaining() < len) {
      // Body extends past EOF: the append (or its flush) is in flight.
      result.end_of_durable_log = true;
      break;
    }
    const char* body = buf.data() + pos + kRecordHeaderSize;
    if (Crc32(body, len) != crc) {
      if (pos + kRecordHeaderSize + len == buf.size()) {
        // Bad checksum on the final frame: a torn tail, not corruption —
        // this is exactly the live-tailing case where the old reader's
        // mid-log rule would misfire. End of durable log; the frame may
        // be completed (or truncated away by a resume) before the next
        // poll.
        result.end_of_durable_log = true;
        break;
      }
      return Status::DataLoss("wal checksum mismatch at offset " +
                              std::to_string(pos));
    }
    auto decoded = DecodeRecordPayload(static_cast<WalRecordType>(
                                           static_cast<uint8_t>(body[0])),
                                       body + 1, len - 1);
    FLOCK_RETURN_NOT_OK(decoded.status());
    result.records.push_back(*std::move(decoded));
    pos += kRecordHeaderSize + len;
    offset_ = pos;
    ++next_lsn_;
  }
  return result;
}

Status WalTailReader::Seek(uint64_t lsn) {
  header_seen_ = false;  // force a full reload incl. header re-validation
  bool epoch_changed = false;
  FLOCK_RETURN_NOT_OK(Load(&epoch_changed).status());
  while (next_lsn_ < lsn) {
    uint64_t remaining = lsn - next_lsn_;
    auto polled = Poll(static_cast<size_t>(remaining));
    FLOCK_RETURN_NOT_OK(polled.status());
    if (polled->records.size() < remaining) {
      return Status::OutOfRange(
          "wal holds " + std::to_string(next_lsn_) +
          " durable records, cannot seek to lsn " + std::to_string(lsn));
    }
  }
  return Status::OK();
}

}  // namespace flock::wal
