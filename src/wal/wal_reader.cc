#include "wal/wal_reader.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/serialization.h"
#include "wal/wal_format.h"

namespace flock::wal {

StatusOr<std::unique_ptr<WalReader>> WalReader::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("wal file not found: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string buf = std::move(contents).str();

  if (buf.size() < kWalHeaderSize) {
    return Status::DataLoss("wal header truncated: " + path);
  }
  if (std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("bad wal magic: " + path);
  }
  storage::ByteReader header(buf.data() + sizeof(kWalMagic),
                             kWalHeaderSize - sizeof(kWalMagic));
  uint32_t version;
  uint64_t epoch;
  FLOCK_RETURN_NOT_OK(header.GetU32(&version));
  FLOCK_RETURN_NOT_OK(header.GetU64(&epoch));
  if (version != kWalFormatVersion) {
    return Status::DataLoss("unsupported wal format version " +
                            std::to_string(version));
  }
  return std::unique_ptr<WalReader>(new WalReader(std::move(buf), epoch));
}

WalReader::WalReader(std::string buf, uint64_t epoch)
    : buf_(std::move(buf)),
      epoch_(epoch),
      pos_(kWalHeaderSize),
      valid_size_(kWalHeaderSize) {}

Status WalReader::Next(WalRecord* record, bool* done) {
  *done = false;
  if (pos_ == buf_.size()) {
    *done = true;
    return Status::OK();
  }

  // A frame header or body extending past EOF can only be a torn final
  // append: the writer lays down the full frame with one write() and
  // only acks after fsync, so an incomplete frame never committed.
  if (buf_.size() - pos_ < kRecordHeaderSize) {
    tail_truncated_ = true;
    *done = true;
    return Status::OK();
  }
  storage::ByteReader frame(buf_.data() + pos_, buf_.size() - pos_);
  uint32_t len, crc;
  FLOCK_RETURN_NOT_OK(frame.GetU32(&len));
  FLOCK_RETURN_NOT_OK(frame.GetU32(&crc));
  if (len > kMaxRecordLen) {
    // An absurd length mid-log is corruption; at the tail it is
    // indistinguishable from a torn length word, so drop it.
    if (buf_.size() - pos_ <= kRecordHeaderSize + 8) {
      tail_truncated_ = true;
      *done = true;
      return Status::OK();
    }
    return Status::DataLoss("wal record length " + std::to_string(len) +
                            " exceeds limit at offset " +
                            std::to_string(pos_));
  }
  if (len < 1 || frame.remaining() < len) {
    tail_truncated_ = true;
    *done = true;
    return Status::OK();
  }

  const char* body = buf_.data() + pos_ + kRecordHeaderSize;
  if (Crc32(body, len) != crc) {
    if (pos_ + kRecordHeaderSize + len == buf_.size()) {
      // Bad checksum on the final record: torn write, never committed.
      tail_truncated_ = true;
      *done = true;
      return Status::OK();
    }
    return Status::DataLoss("wal checksum mismatch at offset " +
                            std::to_string(pos_));
  }

  auto decoded = DecodeRecordPayload(static_cast<WalRecordType>(
                                         static_cast<uint8_t>(body[0])),
                                     body + 1, len - 1);
  FLOCK_RETURN_NOT_OK(decoded.status());
  *record = *std::move(decoded);
  pos_ += kRecordHeaderSize + len;
  valid_size_ = pos_;
  ++records_read_;
  return Status::OK();
}

}  // namespace flock::wal
