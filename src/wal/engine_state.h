#ifndef FLOCK_WAL_ENGINE_STATE_H_
#define FLOCK_WAL_ENGINE_STATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace flock::wal {

/// Serializable view of one deployed model. Only durable metadata is
/// captured; compiled graphs, optimizer specializations, and scoring
/// caches are derived state, rebuilt after restore.
struct ModelSnapshot {
  std::string name;
  uint64_t version = 0;
  std::string pipeline_text;  // ml::Pipeline::Serialize()
  std::string created_by;
  std::string lineage;
  std::vector<std::string> allowed_principals;  // empty = public
};

/// Serializable view of one registry audit event (mirrors
/// flock::AuditEvent without the enum dependency).
struct AuditEventSnapshot {
  uint8_t kind = 0;
  std::string model;
  std::string principal;
  uint64_t version = 0;
  uint64_t rows = 0;
};

/// Callbacks bridging the durability subsystem to the model registry.
///
/// The WAL library sits below flock_core (which owns FlockEngine and
/// ModelRegistry and links against flock_wal), so it cannot name those
/// types; the engine hands Open() this adapter instead. Each callback
/// must be safe to invoke during recovery (single-threaded, before the
/// engine serves traffic) and during checkpoints (under the engine's
/// exclusive statement lock).
struct EngineStateAdapter {
  /// All current model versions plus the registry audit log.
  std::function<std::vector<ModelSnapshot>()> snapshot_models;
  std::function<std::vector<AuditEventSnapshot>()> snapshot_audit;

  /// Restores one model at its exact recorded version (no audit event,
  /// no re-validation side effects beyond compilation).
  std::function<Status(const ModelSnapshot&)> restore_model;
  std::function<void(std::vector<AuditEventSnapshot>)> restore_audit;

  /// WAL replay of a committed deploy: registers the pipeline exactly as
  /// the original CREATE MODEL / deploy did (audit event included, so the
  /// audit trail regenerates deterministically).
  std::function<Status(const std::string& name,
                       const std::string& pipeline_text,
                       const std::string& created_by,
                       const std::string& lineage)>
      replay_deploy;

  /// WAL replay of a committed drop.
  std::function<Status(const std::string& name,
                       const std::string& principal)>
      replay_drop;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_ENGINE_STATE_H_
