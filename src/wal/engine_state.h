#ifndef FLOCK_WAL_ENGINE_STATE_H_
#define FLOCK_WAL_ENGINE_STATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace flock::wal {

/// Serializable view of one deployed model. Only durable metadata is
/// captured; compiled graphs, optimizer specializations, and scoring
/// caches are derived state, rebuilt after restore.
struct ModelSnapshot {
  std::string name;
  uint64_t version = 0;
  std::string pipeline_text;  // ml::Pipeline::Serialize()
  std::string created_by;
  std::string lineage;
  std::vector<std::string> allowed_principals;  // empty = public
};

/// Serializable view of one registry audit event (mirrors
/// flock::AuditEvent without the enum dependency).
struct AuditEventSnapshot {
  uint8_t kind = 0;
  std::string model;
  std::string principal;
  uint64_t version = 0;
  uint64_t rows = 0;
};

/// Serializable view of one model rollout (mirrors
/// lifecycle::RolloutState without the enum dependency). Each WAL record
/// carries the *complete* rollout — candidate pipeline and guard config
/// included — so replaying any prefix of transitions lands on exactly the
/// state the last transition committed, with no cross-record lookups.
struct RolloutSnapshot {
  std::string model;
  /// 0 = staged, 1 = shadow, 2 = canary, 3 = live, 4 = rolled_back.
  uint8_t state = 0;
  /// Sessions routed to the candidate in canary, out of 1000.
  uint32_t canary_permille = 0;
  std::string candidate_pipeline_text;  // ml::Pipeline::Serialize()
  std::string initiated_by;
  /// Version that was live when the rollout began (rollback target).
  uint64_t live_version = 0;
  // Guard rules; <= 0 disables the corresponding guard.
  double max_divergence_rate = 0.0;
  double max_latency_regression = 0.0;
  double max_drift_score = 0.0;
  uint64_t min_observations = 0;
};

/// Callbacks bridging the durability subsystem to the model registry.
///
/// The WAL library sits below flock_core (which owns FlockEngine and
/// ModelRegistry and links against flock_wal), so it cannot name those
/// types; the engine hands Open() this adapter instead. Each callback
/// must be safe to invoke during recovery (single-threaded, before the
/// engine serves traffic) and during checkpoints (under the engine's
/// exclusive statement lock).
struct EngineStateAdapter {
  /// All current model versions plus the registry audit log.
  std::function<std::vector<ModelSnapshot>()> snapshot_models;
  std::function<std::vector<AuditEventSnapshot>()> snapshot_audit;

  /// Restores one model at its exact recorded version (no audit event,
  /// no re-validation side effects beyond compilation).
  std::function<Status(const ModelSnapshot&)> restore_model;
  std::function<void(std::vector<AuditEventSnapshot>)> restore_audit;

  /// WAL replay of a committed deploy: registers the pipeline exactly as
  /// the original CREATE MODEL / deploy did (audit event included, so the
  /// audit trail regenerates deterministically).
  std::function<Status(const std::string& name,
                       const std::string& pipeline_text,
                       const std::string& created_by,
                       const std::string& lineage)>
      replay_deploy;

  /// WAL replay of a committed drop.
  std::function<Status(const std::string& name,
                       const std::string& principal)>
      replay_drop;

  /// All rollouts (active and terminal) for checkpointing.
  std::function<std::vector<RolloutSnapshot>()> snapshot_rollouts;

  /// Restores one rollout from a snapshot image (installs the candidate
  /// specialization when the recorded state is active).
  std::function<Status(const RolloutSnapshot&)> restore_rollout;

  /// WAL replay of one rollout state transition (idempotent: later
  /// records simply overwrite the stored state for the model).
  std::function<Status(const RolloutSnapshot&)> replay_rollout;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_ENGINE_STATE_H_
