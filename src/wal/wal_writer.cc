#include "wal/wal_writer.h"

// POSIX file I/O without <fcntl.h>: that header declares `struct flock`,
// which cannot coexist with our `namespace flock` in one translation
// unit. stdio FILE* handles plus fsync/ftruncate from <unistd.h> and
// dirfd from <dirent.h> cover everything the writer needs; every write
// is fflush()ed immediately so bytes reach the kernel even when the
// fsync policy is kNever (a crash simulated with _exit must still see
// them in the page cache).
#include <dirent.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "storage/serialization.h"
#include "wal/fault_injector.h"
#include "wal/wal_format.h"

namespace flock::wal {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path + ": " +
                          std::strerror(errno));
}

Status WriteAll(std::FILE* file, const char* data, size_t len,
                const std::string& path) {
  if (std::fwrite(data, 1, len, file) != len) {
    return Errno("write", path);
  }
  if (std::fflush(file) != 0) return Errno("flush", path);
  return Status::OK();
}

Status FsyncFile(std::FILE* file, const std::string& path) {
  if (::fsync(::fileno(file)) != 0) return Errno("fsync", path);
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  Status s = Status::OK();
  if (::fsync(::dirfd(d)) != 0) s = Errno("fsync dir", dir);
  ::closedir(d);
  return s;
}

std::string EncodeHeader(uint64_t epoch) {
  std::string header(kWalMagic, sizeof(kWalMagic));
  storage::PutU32(&header, kWalFormatVersion);
  storage::PutU64(&header, epoch);
  return header;
}

/// Writes a fresh WAL (header only) at `path`, truncating anything there,
/// and fsyncs the file and its directory. Returns the open handle.
StatusOr<std::FILE*> CreateLogFile(const std::string& path,
                                   uint64_t epoch) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Errno("open", path);
  std::string header = EncodeHeader(epoch);
  Status s = WriteAll(file, header.data(), header.size(), path);
  if (s.ok()) s = FsyncFile(file, path);
  if (s.ok()) s = FsyncDir(DirOf(path));
  if (!s.ok()) {
    std::fclose(file);
    return s;
  }
  return file;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every_record";
    case FsyncPolicy::kGroupCommit:
      return "group_commit";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, uint64_t epoch, WalWriterOptions options) {
  auto file = CreateLogFile(path, epoch);
  FLOCK_RETURN_NOT_OK(file.status());
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, *file, epoch, options));
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Resume(
    const std::string& path, uint64_t epoch, uint64_t valid_size,
    WalWriterOptions options, uint64_t records_in_log) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) return Errno("open", path);
  // Drop any torn tail so new records start at a record boundary.
  Status s = Status::OK();
  if (::ftruncate(::fileno(file), static_cast<off_t>(valid_size)) != 0) {
    s = Errno("ftruncate", path);
  }
  if (s.ok() && std::fseek(file, 0, SEEK_END) != 0) {
    s = Errno("seek", path);
  }
  if (s.ok()) s = FsyncFile(file, path);
  if (!s.ok()) {
    std::fclose(file);
    return s;
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(path, file, epoch, options));
  writer->epoch_records_.store(records_in_log, std::memory_order_relaxed);
  return writer;
}

WalWriter::WalWriter(std::string path, std::FILE* file, uint64_t epoch,
                     WalWriterOptions options)
    : path_(std::move(path)), options_(options), epoch_(epoch),
      file_(file) {
  if (options_.fsync_policy == FsyncPolicy::kGroupCommit) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    if (health_.ok() && options_.fsync_policy != FsyncPolicy::kNever) {
      ::fsync(::fileno(file_));
    }
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalWriter::Append(const WalRecord& record) {
  std::unique_lock<std::mutex> lock(mu_);
  return AppendLocked(record, &lock);
}

Status WalWriter::AppendLocked(const WalRecord& record,
                               std::unique_lock<std::mutex>* lock) {
  FLOCK_RETURN_NOT_OK(health_);

  std::string payload = EncodeRecordPayload(record);
  std::string body;
  body.reserve(1 + payload.size());
  storage::PutU8(&body, static_cast<uint8_t>(record.type));
  body.append(payload);

  std::string frame;
  frame.reserve(kRecordHeaderSize + body.size());
  storage::PutU32(&frame, static_cast<uint32_t>(body.size()));
  storage::PutU32(&frame, Crc32(body.data(), body.size()));
  frame.append(body);

  FaultInjector* faults = FaultInjector::Get();
  Status s = faults->Hit("wal.append.before_write");
  if (s.ok() && faults->WillTrigger("wal.append.partial_write")) {
    // Simulate a torn write: half the frame lands, then the power cut /
    // disk error hits. Recovery must treat the remnant as a torn tail.
    size_t half = frame.size() / 2;
    (void)WriteAll(file_, frame.data(), half, path_);
    (void)FsyncFile(file_, path_);
    s = faults->Hit("wal.append.partial_write");
  }
  if (s.ok()) s = WriteAll(file_, frame.data(), frame.size(), path_);

  if (s.ok()) {
    bytes_written_ += frame.size();
    switch (options_.fsync_policy) {
      case FsyncPolicy::kEveryRecord:
        s = faults->Hit("wal.append.before_fsync");
        if (s.ok()) s = SyncLocked();
        if (s.ok()) s = faults->Hit("wal.append.after_fsync");
        break;
      case FsyncPolicy::kGroupCommit: {
        uint64_t my_seq = ++written_seq_;
        flush_cv_.notify_all();
        flush_cv_.wait(*lock, [&] {
          return flushed_seq_ >= my_seq || !health_.ok();
        });
        s = health_;
        break;
      }
      case FsyncPolicy::kNever:
        break;
    }
  }

  if (!s.ok() && health_.ok()) {
    health_ = s;
    flush_cv_.notify_all();
  }
  if (s.ok()) {
    ++records_appended_;
    ++epoch_records_;
  }
  return s;
}

Status WalWriter::SyncLocked() {
  Status s = FsyncFile(file_, path_);
  if (s.ok()) {
    ++syncs_;
  } else if (health_.ok()) {
    health_ = s;
    flush_cv_.notify_all();
  }
  return s;
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  FLOCK_RETURN_NOT_OK(health_);
  if (options_.fsync_policy == FsyncPolicy::kGroupCommit) {
    uint64_t target = written_seq_;
    if (flushed_seq_ >= target) return Status::OK();
    flush_cv_.notify_all();
    flush_cv_.wait(lock,
                   [&] { return flushed_seq_ >= target || !health_.ok(); });
    return health_;
  }
  return SyncLocked();
}

void WalWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    flush_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.group_commit_interval_ms),
        [&] { return stop_flusher_ || written_seq_ > flushed_seq_; });
    if (written_seq_ > flushed_seq_ && health_.ok()) {
      uint64_t covers = written_seq_;
      Status s = FaultInjector::Get()->Hit("wal.append.before_fsync");
      if (s.ok()) {
        s = SyncLocked();
      } else if (health_.ok()) {
        health_ = s;
      }
      if (s.ok()) s = FaultInjector::Get()->Hit("wal.append.after_fsync");
      if (s.ok()) flushed_seq_ = covers;
      flush_cv_.notify_all();
    }
    if (stop_flusher_) return;
  }
}

Status WalWriter::ResetForEpoch(uint64_t new_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  FLOCK_RETURN_NOT_OK(health_);
  // Group commit: everything already appended must be flushed before the
  // old log is replaced (those records are covered by the snapshot, but a
  // failed rename must leave a fully-durable old log behind).
  if (options_.fsync_policy == FsyncPolicy::kGroupCommit &&
      flushed_seq_ < written_seq_) {
    Status s = SyncLocked();
    FLOCK_RETURN_NOT_OK(s);
    flushed_seq_ = written_seq_;
    flush_cv_.notify_all();
  }

  std::string tmp = path_ + ".tmp";
  auto file = CreateLogFile(tmp, new_epoch);
  Status s = file.status();
  if (s.ok()) {
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      s = Errno("rename", tmp);
      std::fclose(*file);
      std::remove(tmp.c_str());
    } else {
      s = FsyncDir(DirOf(path_));
    }
  }
  if (!s.ok()) {
    if (health_.ok()) health_ = s;
    return s;
  }
  std::fclose(file_);
  file_ = *file;
  epoch_ = new_epoch;
  epoch_records_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace flock::wal
