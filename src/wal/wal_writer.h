#ifndef FLOCK_WAL_WAL_WRITER_H_
#define FLOCK_WAL_WAL_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status_or.h"
#include "wal/wal_record.h"

namespace flock::wal {

/// When appends become durable.
enum class FsyncPolicy {
  /// fsync before every Append returns: strongest guarantee, one disk
  /// round trip per record.
  kEveryRecord,
  /// Appends block until a background flusher's next fsync covers them
  /// (interval-based group commit): one fsync amortized over every append
  /// that arrived in the window. Same guarantee as kEveryRecord — Append
  /// returning means the record is on disk — at far higher throughput.
  kGroupCommit,
  /// No fsync; the OS decides. Survives process crash (page cache is
  /// kernel-owned) but not power loss. For bulk loads and tests.
  kNever,
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct WalWriterOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Group-commit window. Smaller = lower commit latency, more fsyncs.
  int group_commit_interval_ms = 2;
};

/// Appends length-prefixed, CRC-checksummed records to the log. Thread-
/// safe; in the engine all appends arrive under the exclusive statement
/// lock, but the writer is independently safe so benches and the group-
/// commit tests can drive it from many threads.
///
/// Errors are sticky: after any write/fsync failure (including injected
/// faults) every subsequent Append returns the first error — a log that
/// failed once must not accept further records, or the failure window
/// would be silently spanned.
class WalWriter {
 public:
  /// Creates a fresh log (truncating any existing file) with `epoch` in
  /// the header; fsyncs the header and the directory.
  static StatusOr<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint64_t epoch, WalWriterOptions options);

  /// Opens an existing log for appending. `valid_size` is the byte offset
  /// of the end of the last intact record (from WalReader); anything
  /// after it (a torn tail) is truncated away before appending resumes.
  /// `records_in_log` is the number of intact records already in the log
  /// — it seeds the epoch-local LSN counter (`epoch_records()`).
  static StatusOr<std::unique_ptr<WalWriter>> Resume(
      const std::string& path, uint64_t epoch, uint64_t valid_size,
      WalWriterOptions options, uint64_t records_in_log = 0);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; returns once the record is durable per the
  /// fsync policy.
  Status Append(const WalRecord& record);

  /// Forces an fsync covering everything appended so far.
  Status Sync();

  /// Checkpoint truncation: atomically replaces the log with a fresh one
  /// whose header carries `new_epoch` (write temp + rename + dir fsync),
  /// then switches appends to it. Caller must guarantee no concurrent
  /// Append (the engine holds its exclusive lock across checkpoints).
  Status ResetForEpoch(uint64_t new_epoch);

  uint64_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }
  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_relaxed);
  }
  /// Records durable under the *current* epoch — i.e. the LSN the next
  /// append will get. Unlike records_appended() this resets to zero when
  /// ResetForEpoch cuts a fresh log; replication streams against it.
  uint64_t epoch_records() const {
    return epoch_records_.load(std::memory_order_relaxed);
  }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(std::string path, std::FILE* file, uint64_t epoch,
            WalWriterOptions options);

  Status AppendLocked(const WalRecord& record,
                      std::unique_lock<std::mutex>* lock);
  Status SyncLocked();
  void FlusherLoop();

  const std::string path_;
  const WalWriterOptions options_;
  uint64_t epoch_;

  std::mutex mu_;
  std::FILE* file_;
  Status health_;  // first error, sticky
  // Mutated under mu_, but atomic so the metrics registry can read them
  // lock-free while the serving path is appending.
  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> epoch_records_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> bytes_written_{0};

  // Group commit: appenders wait until flushed_seq_ >= their seq.
  std::condition_variable flush_cv_;
  uint64_t written_seq_ = 0;
  uint64_t flushed_seq_ = 0;
  bool stop_flusher_ = false;
  std::thread flusher_;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_WAL_WRITER_H_
