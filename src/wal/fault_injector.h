#ifndef FLOCK_WAL_FAULT_INJECTOR_H_
#define FLOCK_WAL_FAULT_INJECTOR_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace flock::wal {

/// Process-wide fault injection for the durability subsystem. The WAL
/// writer and checkpoint manager call `Hit(point)` at every crash-relevant
/// step; when the injector is armed at that point it either kills the
/// process immediately (`kCrash`, simulating a power cut — no destructors,
/// no buffered flushes) or returns an injected error (`kError`, simulating
/// a failing disk) exactly once.
///
/// Arming is programmatic (`Arm`) for in-process tests and the crash
/// matrix, or environment-driven for whole-binary testing:
///
///   FLOCK_FAULT_POINT=wal.append.before_fsync FLOCK_FAULT_MODE=crash
///   FLOCK_FAULT_SKIP=3 ./flock_server --data-dir=/tmp/d
///
/// kills the server on the 4th fsync. The environment is read once, on
/// first access.
class FaultInjector {
 public:
  enum class Mode { kCrash, kError };

  /// Exit code used by kCrash so harnesses can tell an injected crash
  /// from a genuine abort.
  static constexpr int kCrashExitCode = 42;

  static FaultInjector* Get();

  /// All registered crash points, in the order they occur on the write
  /// path then the checkpoint path. The crash-matrix test iterates this.
  static const std::vector<std::string>& Points();

  /// Returns OK when unarmed or `point` differs from the armed point.
  /// Otherwise skips the first `skip` hits, then crashes or returns an
  /// error (and disarms, so recovery code running later in the same
  /// process is not re-faulted).
  Status Hit(const std::string& point);

  /// True when armed at `point` and the skip budget is exhausted; used by
  /// the writer to produce a torn record before calling Hit.
  bool WillTrigger(const std::string& point);

  void Arm(const std::string& point, Mode mode, int skip = 0);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

 private:
  FaultInjector();

  std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::string point_;
  Mode mode_ = Mode::kCrash;
  int remaining_skips_ = 0;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_FAULT_INJECTOR_H_
