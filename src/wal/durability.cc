#include "wal/durability.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/trace.h"
#include "wal/checkpoint.h"
#include "wal/fault_injector.h"

namespace flock::wal {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Internal("mkdir failed for " + dir + ": " +
                          std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& dir, storage::Database* db, prov::Catalog* catalog,
    policy::PolicyEngine* policy, EngineStateAdapter adapter,
    DurabilityOptions options) {
  FLOCK_RETURN_NOT_OK(EnsureDir(dir));

  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(dir, db, catalog, policy, std::move(adapter),
                            std::move(options)));

  RecoveryManager recovery(dir, db, catalog, policy, manager->adapter_);
  FLOCK_ASSIGN_OR_RETURN(manager->recovery_, recovery.Recover());

  WalWriterOptions writer_options;
  writer_options.fsync_policy = manager->options_.fsync_policy;
  writer_options.group_commit_interval_ms =
      manager->options_.group_commit_interval_ms;
  const RecoveryResult& r = manager->recovery_;
  if (r.wal_found && !r.stale_wal_discarded) {
    FLOCK_ASSIGN_OR_RETURN(
        manager->writer_,
        WalWriter::Resume(recovery.wal_path(), r.epoch, r.wal_valid_size,
                          writer_options, r.wal_records_replayed));
  } else {
    uint64_t create_epoch = r.epoch;
    if (!r.snapshot_restored && !r.wal_found &&
        manager->options_.initial_epoch > create_epoch) {
      // Truly fresh directory: honor the seeded epoch (promotion fencing).
      create_epoch = manager->options_.initial_epoch;
    }
    FLOCK_ASSIGN_OR_RETURN(
        manager->writer_,
        WalWriter::Create(recovery.wal_path(), create_epoch,
                          writer_options));
  }

  // Attach observers only now: recovery's own replay mutations must not
  // be re-appended to the log.
  db->set_observer(manager.get());
  if (catalog != nullptr) catalog->set_listener(manager.get());
  if (policy != nullptr) policy->set_timeline_listener(manager.get());
  return manager;
}

DurabilityManager::DurabilityManager(std::string dir, storage::Database* db,
                                     prov::Catalog* catalog,
                                     policy::PolicyEngine* policy,
                                     EngineStateAdapter adapter,
                                     DurabilityOptions options)
    : dir_(std::move(dir)),
      db_(db),
      catalog_(catalog),
      policy_(policy),
      adapter_(std::move(adapter)),
      options_(std::move(options)) {}

DurabilityManager::~DurabilityManager() {
  db_->set_observer(nullptr);
  if (catalog_ != nullptr) catalog_->set_listener(nullptr);
  if (policy_ != nullptr) policy_->set_timeline_listener(nullptr);
}

bool DurabilityManager::Skip(const std::string& table) const {
  return options_.skip_tables.count(flock::ToLower(table)) > 0;
}

void DurabilityManager::Observe(const WalRecord& record) {
  // Observer callbacks fire on the request thread, so a traced request
  // sees its own WAL appends as spans (no-op when tracing is off).
  obs::ScopedSpan span("wal.append");
  Status s = writer_->Append(record);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (observer_health_.ok()) observer_health_ = s;
  }
}

Status DurabilityManager::health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return observer_health_;
}

Status DurabilityManager::Sync() {
  FLOCK_RETURN_NOT_OK(health());
  return writer_->Sync();
}

uint64_t DurabilityManager::records_logged() const {
  return writer_->records_appended();
}

uint64_t DurabilityManager::syncs() const { return writer_->syncs(); }

uint64_t DurabilityManager::bytes_written() const {
  return writer_->bytes_written();
}

SnapshotData DurabilityManager::BuildSnapshot(uint64_t epoch) const {
  SnapshotData data;
  data.epoch = epoch;
  for (const std::string& name : db_->ListTables()) {
    if (Skip(name)) continue;
    auto table = db_->GetTable(name);
    if (!table.ok()) continue;  // dropped between list and get
    TableSnapshot t;
    t.name = (*table)->name();
    t.schema = (*table)->schema();
    t.segment_capacity = (*table)->segment_capacity();
    t.segments.reserve((*table)->num_segments());
    for (size_t s = 0; s < (*table)->num_segments(); ++s) {
      // Zero-copy views: serialization reads them without materializing.
      t.segments.push_back((*table)->ScanSegment(s));
    }
    data.tables.push_back(std::move(t));
  }
  if (adapter_.snapshot_models) data.models = adapter_.snapshot_models();
  if (adapter_.snapshot_audit) data.audit = adapter_.snapshot_audit();
  if (adapter_.snapshot_rollouts) {
    data.rollouts = adapter_.snapshot_rollouts();
  }
  if (policy_ != nullptr) {
    data.timeline = policy_->timeline();
    data.policy_next_seq = policy_->next_seq();
  }
  if (catalog_ != nullptr) {
    data.entities = catalog_->entities();
    data.edges = catalog_->edges();
  }
  return data;
}

Status DurabilityManager::Checkpoint() {
  FLOCK_RETURN_NOT_OK(health());
  FaultInjector* faults = FaultInjector::Get();
  FLOCK_RETURN_NOT_OK(faults->Hit("checkpoint.before_snapshot_write"));
  // All appends so far must be durable before the snapshot supersedes the
  // log they live in.
  FLOCK_RETURN_NOT_OK(writer_->Sync());
  uint64_t new_epoch = writer_->epoch() + 1;
  CheckpointManager checkpoint(dir_);
  FLOCK_RETURN_NOT_OK(checkpoint.Write(BuildSnapshot(new_epoch)));
  FLOCK_RETURN_NOT_OK(writer_->ResetForEpoch(new_epoch));
  FLOCK_RETURN_NOT_OK(faults->Hit("checkpoint.after_wal_reset"));
  return Status::OK();
}

Status DurabilityManager::LogModelDeploy(const std::string& name,
                                         const std::string& pipeline_text,
                                         const std::string& created_by,
                                         const std::string& lineage) {
  obs::ScopedSpan span("wal.append");
  Status s = writer_->Append(
      WalRecord::DeployModel(name, pipeline_text, created_by, lineage));
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (observer_health_.ok()) observer_health_ = s;
  }
  return s;
}

Status DurabilityManager::LogModelDrop(const std::string& name,
                                       const std::string& principal) {
  obs::ScopedSpan span("wal.append");
  Status s = writer_->Append(WalRecord::DropModel(name, principal));
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (observer_health_.ok()) observer_health_ = s;
  }
  return s;
}

Status DurabilityManager::LogRolloutState(const RolloutSnapshot& rollout) {
  obs::ScopedSpan span("wal.append");
  Status s = writer_->Append(WalRecord::RolloutChange(rollout));
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (observer_health_.ok()) observer_health_ = s;
  }
  return s;
}

void DurabilityManager::OnCreateTable(const std::string& name,
                                      const storage::Schema& schema) {
  if (Skip(name)) return;
  Observe(WalRecord::CreateTable(name, schema));
}

void DurabilityManager::OnDropTable(const std::string& name) {
  if (Skip(name)) return;
  Observe(WalRecord::DropTable(name));
}

void DurabilityManager::OnAppendBatch(const storage::Table& table,
                                      const storage::RecordBatch& batch) {
  if (Skip(table.name())) return;
  Observe(WalRecord::AppendBatch(table.name(), batch));
}

void DurabilityManager::OnAppendRow(const storage::Table& table,
                                    const std::vector<storage::Value>& row) {
  if (Skip(table.name())) return;
  storage::RecordBatch batch(table.schema());
  Status s = batch.AppendRow(row);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (observer_health_.ok()) observer_health_ = s;
    return;
  }
  Observe(WalRecord::AppendBatch(table.name(), std::move(batch)));
}

void DurabilityManager::OnUpdateColumn(
    const storage::Table& table, size_t col,
    const std::vector<uint32_t>& rows,
    const std::vector<storage::Value>& values) {
  if (Skip(table.name())) return;
  Observe(WalRecord::UpdateColumn(table.name(),
                                  static_cast<uint32_t>(col), rows, values));
}

void DurabilityManager::OnDeleteRows(const storage::Table& table,
                                     const std::vector<bool>& keep,
                                     size_t removed) {
  if (Skip(table.name())) return;
  (void)removed;
  std::vector<uint8_t> bitmap(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) bitmap[i] = keep[i] ? 1 : 0;
  Observe(WalRecord::DeleteRows(table.name(), std::move(bitmap)));
}

void DurabilityManager::OnEntity(const prov::Entity& entity) {
  Observe(WalRecord::ProvEntity(entity.id,
                                static_cast<uint8_t>(entity.type),
                                entity.name, entity.version));
}

void DurabilityManager::OnEdge(const prov::Edge& edge) {
  Observe(WalRecord::ProvEdge(edge.src, edge.dst,
                              static_cast<uint8_t>(edge.type)));
}

void DurabilityManager::OnProperty(uint64_t id, const std::string& key,
                                   const std::string& value) {
  Observe(WalRecord::ProvProperty(id, key, value));
}

void DurabilityManager::OnTimelineEntry(const policy::TimelineEntry& entry) {
  Observe(WalRecord::PolicyAction(entry.seq, entry.policy,
                                  static_cast<uint8_t>(entry.action),
                                  entry.before, entry.after, entry.rejected,
                                  entry.context));
}

}  // namespace flock::wal
