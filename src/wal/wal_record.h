#ifndef FLOCK_WAL_WAL_RECORD_H_
#define FLOCK_WAL_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "storage/record_batch.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "wal/engine_state.h"

namespace flock::wal {

/// Typed logical redo records. One record = one committed mutation of
/// engine state; replaying a log against an empty (or snapshot-restored)
/// engine reproduces the exact committed state.
enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kAppendBatch = 3,
  kUpdateColumn = 4,
  kDeleteRows = 5,
  kDeployModel = 6,
  kDropModel = 7,
  kPolicyAction = 8,
  kProvEntity = 9,
  kProvEdge = 10,
  kProvProperty = 11,
  kRolloutState = 12,
};

const char* WalRecordTypeName(WalRecordType type);

/// A decoded record: `type` selects which field group is meaningful.
/// Kept flat (rather than a std::variant) so the codec and replay switch
/// stay simple; records are short-lived decode buffers, not a data model.
struct WalRecord {
  WalRecordType type = WalRecordType::kCreateTable;

  // kCreateTable / kDropTable / kAppendBatch / kUpdateColumn /
  // kDeleteRows: table name. kDeployModel / kDropModel: model name.
  // kPolicyAction: policy name.
  std::string name;

  storage::Schema schema;       // kCreateTable
  storage::RecordBatch batch;   // kAppendBatch

  uint32_t column = 0;                  // kUpdateColumn
  std::vector<uint32_t> rows;           // kUpdateColumn
  std::vector<storage::Value> values;   // kUpdateColumn
  std::vector<uint8_t> keep;            // kDeleteRows (1 = kept)

  std::string pipeline_text;  // kDeployModel (ml::Pipeline::Serialize)
  std::string created_by;     // kDeployModel
  std::string lineage;        // kDeployModel
  std::string principal;      // kDropModel

  // kPolicyAction (mirrors policy::TimelineEntry).
  uint64_t seq = 0;
  uint8_t action = 0;
  double before = 0.0;
  double after = 0.0;
  bool rejected = false;
  std::string context;

  // kProvEntity / kProvEdge / kProvProperty.
  uint64_t entity_id = 0;   // entity id (kProvEntity/kProvProperty)
  uint64_t src = 0;         // kProvEdge
  uint64_t dst = 0;         // kProvEdge
  uint8_t prov_type = 0;    // EntityType or EdgeType ordinal
  uint64_t version = 0;     // kProvEntity
  std::string key;          // kProvProperty
  std::string value;        // kProvProperty

  // kRolloutState: the full post-transition rollout.
  RolloutSnapshot rollout;

  // --- constructors, one per record type ---
  static WalRecord CreateTable(std::string name, storage::Schema schema);
  static WalRecord DropTable(std::string name);
  static WalRecord AppendBatch(std::string table,
                               storage::RecordBatch batch);
  static WalRecord UpdateColumn(std::string table, uint32_t column,
                                std::vector<uint32_t> rows,
                                std::vector<storage::Value> values);
  static WalRecord DeleteRows(std::string table, std::vector<uint8_t> keep);
  static WalRecord DeployModel(std::string name, std::string pipeline_text,
                               std::string created_by, std::string lineage);
  static WalRecord DropModel(std::string name, std::string principal);
  static WalRecord PolicyAction(uint64_t seq, std::string policy,
                                uint8_t action, double before, double after,
                                bool rejected, std::string context);
  static WalRecord ProvEntity(uint64_t id, uint8_t type, std::string name,
                              uint64_t version);
  static WalRecord ProvEdge(uint64_t src, uint64_t dst, uint8_t type);
  static WalRecord ProvProperty(uint64_t id, std::string key,
                                std::string value);
  static WalRecord RolloutChange(RolloutSnapshot rollout);
};

/// Encodes the payload (everything after the u8 type tag in the frame).
std::string EncodeRecordPayload(const WalRecord& record);

/// Decodes a payload; DataLoss on truncation, bad tags, or trailing bytes.
StatusOr<WalRecord> DecodeRecordPayload(WalRecordType type,
                                        const char* data, size_t size);

}  // namespace flock::wal

#endif  // FLOCK_WAL_WAL_RECORD_H_
