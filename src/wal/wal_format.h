#ifndef FLOCK_WAL_WAL_FORMAT_H_
#define FLOCK_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace flock::wal {

/// On-disk framing shared by the writer and reader.
///
/// WAL file layout:
///
///   +----------------------------+
///   | magic "FLOCKWAL" (8 bytes) |
///   | format version (u32)       |
///   | epoch (u64)                |  <- bumped by every checkpoint
///   +----------------------------+
///   | record 0                   |
///   | record 1                   |
///   | ...                        |
///
/// Each record:
///
///   +-----------+-----------+----------+------------------+
///   | len (u32) | crc (u32) | type(u8) | payload (len-1)  |
///   +-----------+-----------+----------+------------------+
///
/// `len` counts type + payload; `crc` is CRC-32 (reflected, poly
/// 0xEDB88320) over type + payload. A record that ends exactly at EOF but
/// fails its length or CRC check is a *torn tail* — the fsync that would
/// have committed it never completed — and is silently dropped; the same
/// damage anywhere else in the file is DataLoss.
inline constexpr char kWalMagic[8] = {'F', 'L', 'O', 'C',
                                      'K', 'W', 'A', 'L'};
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderSize = 8 + 4 + 8;
inline constexpr size_t kRecordHeaderSize = 4 + 4;
/// Sanity bound: a single record larger than this is corruption, not data.
inline constexpr uint32_t kMaxRecordLen = 1u << 30;

/// Snapshot file layout: magic, format version, epoch, sectioned payload,
/// then a trailing CRC-32 over everything after the magic.
///
/// Version history:
///   1 — one monolithic row batch per table.
///   2 — segmented tables: per-table segment capacity + one batch per
///       storage segment, so recovery reproduces the physical layout.
///   3 — trailing model-rollout section (lifecycle state machine).
/// DecodeSnapshot still reads older images: a version-1 table batch is
/// repacked into segments at the catalog's default capacity on restore,
/// and pre-version-3 images simply carry no rollouts.
inline constexpr char kSnapshotMagic[8] = {'F', 'L', 'O', 'C',
                                           'K', 'S', 'N', 'P'};
inline constexpr uint32_t kSnapshotFormatVersion = 3;
inline constexpr uint32_t kMinSupportedSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) over `len` bytes; `seed` chains calls.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace flock::wal

#endif  // FLOCK_WAL_WAL_FORMAT_H_
