#ifndef FLOCK_WAL_WAL_READER_H_
#define FLOCK_WAL_WAL_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "wal/wal_record.h"

namespace flock::wal {

/// Streaming reader over a WAL file. Loads the whole log into memory
/// (logs are bounded by checkpoint frequency) and iterates records,
/// distinguishing two kinds of damage:
///
///  - A bad record whose frame ends at (or runs past) EOF is a *torn
///    tail*: the crash happened mid-append and the record never committed.
///    Next() reports end-of-log; `tail_truncated()` turns true and
///    `valid_size()` marks where the intact prefix ends.
///  - The same damage anywhere else — or an unreadable header — is
///    unrecoverable corruption: Status::DataLoss.
class WalReader {
 public:
  static StatusOr<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Reads the next record. Sets *done=true (leaving *record untouched)
  /// at end of log — clean or torn.
  Status Next(WalRecord* record, bool* done);

  uint64_t epoch() const { return epoch_; }
  /// Byte offset of the end of the last intact record (or the header).
  uint64_t valid_size() const { return valid_size_; }
  /// True when the log ended in a torn record that was dropped.
  bool tail_truncated() const { return tail_truncated_; }
  uint64_t records_read() const { return records_read_; }

 private:
  WalReader(std::string buf, uint64_t epoch);

  std::string buf_;
  uint64_t epoch_;
  size_t pos_;
  uint64_t valid_size_;
  bool tail_truncated_ = false;
  uint64_t records_read_ = 0;
};

/// Incremental reader over a *live* WAL that a writer is still appending
/// to — the replication publisher tails the primary's log with one of
/// these. Two things distinguish tailing from the recovery-time
/// WalReader above:
///
///  - A torn or partial record at the tail is NOT a crash artifact to
///    truncate: the writer may simply be mid-append (or mid-flush), and
///    the frame may complete by the next poll. Poll() stops at the last
///    intact record boundary and reports "end of durable log" — never a
///    CRC error, and never a sticky truncation — so the caller retries
///    later from the same position. Damage strictly *before* the tail
///    frame is still DataLoss (real corruption).
///
///  - Checkpoints atomically replace the file with a fresh, empty log
///    under a bumped epoch. Poll() detects the swap via the header epoch
///    and reports it (`epoch_changed`), resetting its cursor to the new
///    log's start; the caller decides whether it can continue (it was
///    fully caught up) or must re-bootstrap from a snapshot.
///
/// Positions are LSNs: the index of the next record within the current
/// epoch's log (record 0 is the first record after the header).
class WalTailReader {
 public:
  explicit WalTailReader(std::string path);

  struct PollResult {
    /// Records decoded this poll, in log order.
    std::vector<WalRecord> records;
    /// True when the intact prefix of the log is exhausted — clean EOF or
    /// a (possibly still in-flight) torn tail frame.
    bool end_of_durable_log = false;
    /// True when the log file was replaced by a checkpoint: the reader
    /// now sits at LSN 0 of the new epoch and `records` is empty.
    bool epoch_changed = false;
  };

  /// Reads up to `max_records` records from the current position.
  /// NotFound until the log file exists; DataLoss only on mid-log
  /// corruption (a damaged final frame is end-of-durable-log instead).
  StatusOr<PollResult> Poll(size_t max_records);

  /// Repositions to `lsn` within the current log (re-reading from the
  /// header). OutOfRange when the durable log holds fewer records.
  Status Seek(uint64_t lsn);

  /// Epoch of the log the cursor is in (0 before the first Poll).
  uint64_t epoch() const { return epoch_; }
  /// LSN of the next record Poll would return.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Byte offset of the cursor (end of the last intact record consumed).
  uint64_t offset() const { return offset_; }

 private:
  /// Loads the file, validates the header, and detects epoch swaps.
  /// Returns the file contents; positions offset_ appropriately.
  StatusOr<std::string> Load(bool* epoch_changed);

  std::string path_;
  uint64_t epoch_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t offset_ = 0;
  bool header_seen_ = false;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_WAL_READER_H_
