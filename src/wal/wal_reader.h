#ifndef FLOCK_WAL_WAL_READER_H_
#define FLOCK_WAL_WAL_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status_or.h"
#include "wal/wal_record.h"

namespace flock::wal {

/// Streaming reader over a WAL file. Loads the whole log into memory
/// (logs are bounded by checkpoint frequency) and iterates records,
/// distinguishing two kinds of damage:
///
///  - A bad record whose frame ends at (or runs past) EOF is a *torn
///    tail*: the crash happened mid-append and the record never committed.
///    Next() reports end-of-log; `tail_truncated()` turns true and
///    `valid_size()` marks where the intact prefix ends.
///  - The same damage anywhere else — or an unreadable header — is
///    unrecoverable corruption: Status::DataLoss.
class WalReader {
 public:
  static StatusOr<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Reads the next record. Sets *done=true (leaving *record untouched)
  /// at end of log — clean or torn.
  Status Next(WalRecord* record, bool* done);

  uint64_t epoch() const { return epoch_; }
  /// Byte offset of the end of the last intact record (or the header).
  uint64_t valid_size() const { return valid_size_; }
  /// True when the log ended in a torn record that was dropped.
  bool tail_truncated() const { return tail_truncated_; }
  uint64_t records_read() const { return records_read_; }

 private:
  WalReader(std::string buf, uint64_t epoch);

  std::string buf_;
  uint64_t epoch_;
  size_t pos_;
  uint64_t valid_size_;
  bool tail_truncated_ = false;
  uint64_t records_read_ = 0;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_WAL_READER_H_
