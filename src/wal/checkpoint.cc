#include "wal/checkpoint.h"

// stdio + dirent instead of <fcntl.h>: that header's `struct flock`
// cannot coexist with our `namespace flock` in one translation unit.
#include <dirent.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/serialization.h"
#include "wal/fault_injector.h"
#include "wal/wal_format.h"

namespace flock::wal {

using storage::ByteReader;
using storage::PutDouble;
using storage::PutString;
using storage::PutU32;
using storage::PutU64;
using storage::PutU8;

namespace {

constexpr uint8_t kMaxActionKind = 4;    // policy::ActionKind::kAlert
constexpr uint8_t kMaxEntityType = 10;   // prov::EntityType::kVersionRun
constexpr uint8_t kMaxEdgeType = 8;      // prov::EdgeType::kHasParam
constexpr uint8_t kMaxRolloutState = 4;  // rolled_back

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path + ": " +
                          std::strerror(errno));
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& data) {
  std::string payload;
  PutU32(&payload, kSnapshotFormatVersion);
  PutU64(&payload, data.epoch);

  PutU32(&payload, static_cast<uint32_t>(data.tables.size()));
  for (const TableSnapshot& t : data.tables) {
    PutString(&payload, t.name);
    storage::SerializeSchema(t.schema, &payload);
    PutU64(&payload, t.segment_capacity);
    PutU32(&payload, static_cast<uint32_t>(t.segments.size()));
    for (const storage::RecordBatch& segment : t.segments) {
      storage::SerializeBatch(segment, &payload);
    }
  }

  PutU32(&payload, static_cast<uint32_t>(data.models.size()));
  for (const ModelSnapshot& m : data.models) {
    PutString(&payload, m.name);
    PutU64(&payload, m.version);
    PutString(&payload, m.pipeline_text);
    PutString(&payload, m.created_by);
    PutString(&payload, m.lineage);
    PutU32(&payload, static_cast<uint32_t>(m.allowed_principals.size()));
    for (const std::string& p : m.allowed_principals) {
      PutString(&payload, p);
    }
  }

  PutU32(&payload, static_cast<uint32_t>(data.audit.size()));
  for (const AuditEventSnapshot& e : data.audit) {
    PutU8(&payload, e.kind);
    PutString(&payload, e.model);
    PutString(&payload, e.principal);
    PutU64(&payload, e.version);
    PutU64(&payload, e.rows);
  }

  PutU64(&payload, data.policy_next_seq);
  PutU32(&payload, static_cast<uint32_t>(data.timeline.size()));
  for (const policy::TimelineEntry& e : data.timeline) {
    PutU64(&payload, e.seq);
    PutString(&payload, e.policy);
    PutU8(&payload, static_cast<uint8_t>(e.action));
    PutDouble(&payload, e.before);
    PutDouble(&payload, e.after);
    PutU8(&payload, e.rejected ? 1 : 0);
    PutString(&payload, e.context);
  }

  PutU32(&payload, static_cast<uint32_t>(data.entities.size()));
  for (const prov::Entity& entity : data.entities) {
    PutU8(&payload, static_cast<uint8_t>(entity.type));
    PutString(&payload, entity.name);
    PutU64(&payload, entity.version);
    PutU32(&payload, static_cast<uint32_t>(entity.properties.size()));
    for (const auto& [key, value] : entity.properties) {
      PutString(&payload, key);
      PutString(&payload, value);
    }
  }
  PutU32(&payload, static_cast<uint32_t>(data.edges.size()));
  for (const prov::Edge& edge : data.edges) {
    PutU64(&payload, edge.src);
    PutU64(&payload, edge.dst);
    PutU8(&payload, static_cast<uint8_t>(edge.type));
  }

  PutU32(&payload, static_cast<uint32_t>(data.rollouts.size()));
  for (const RolloutSnapshot& r : data.rollouts) {
    PutString(&payload, r.model);
    PutU8(&payload, r.state);
    PutU32(&payload, r.canary_permille);
    PutString(&payload, r.candidate_pipeline_text);
    PutString(&payload, r.initiated_by);
    PutU64(&payload, r.live_version);
    PutDouble(&payload, r.max_divergence_rate);
    PutDouble(&payload, r.max_latency_regression);
    PutDouble(&payload, r.max_drift_score);
    PutU64(&payload, r.min_observations);
  }

  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.append(payload);
  PutU32(&out, Crc32(payload.data(), payload.size()));
  return out;
}

StatusOr<SnapshotData> DecodeSnapshot(const std::string& buf) {
  if (buf.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(buf.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::DataLoss("snapshot missing or bad magic");
  }
  size_t payload_size = buf.size() - sizeof(kSnapshotMagic) - 4;
  const char* payload = buf.data() + sizeof(kSnapshotMagic);
  ByteReader crc_in(buf.data() + buf.size() - 4, 4);
  uint32_t expected_crc;
  FLOCK_RETURN_NOT_OK(crc_in.GetU32(&expected_crc));
  if (Crc32(payload, payload_size) != expected_crc) {
    return Status::DataLoss("snapshot checksum mismatch");
  }

  ByteReader in(payload, payload_size);
  SnapshotData data;
  uint32_t version;
  FLOCK_RETURN_NOT_OK(in.GetU32(&version));
  if (version < kMinSupportedSnapshotVersion ||
      version > kSnapshotFormatVersion) {
    return Status::DataLoss("unsupported snapshot format version " +
                            std::to_string(version));
  }
  FLOCK_RETURN_NOT_OK(in.GetU64(&data.epoch));

  uint32_t n;
  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.tables.resize(n);
  for (TableSnapshot& t : data.tables) {
    FLOCK_RETURN_NOT_OK(in.GetString(&t.name));
    FLOCK_RETURN_NOT_OK(storage::DeserializeSchema(&in, &t.schema));
    if (version >= 2) {
      FLOCK_RETURN_NOT_OK(in.GetU64(&t.segment_capacity));
      if (t.segment_capacity == 0) {
        return Status::DataLoss("snapshot table has zero segment capacity");
      }
      uint32_t num_segments;
      FLOCK_RETURN_NOT_OK(in.GetU32(&num_segments));
      t.segments.resize(num_segments);
      for (storage::RecordBatch& segment : t.segments) {
        FLOCK_RETURN_NOT_OK(storage::DeserializeBatch(&in, &segment));
      }
    } else {
      // Version 1: one monolithic batch; capacity stays 0 so restore
      // repacks it into segments at the catalog default.
      storage::RecordBatch rows;
      FLOCK_RETURN_NOT_OK(storage::DeserializeBatch(&in, &rows));
      if (rows.num_rows() > 0) t.segments.push_back(std::move(rows));
    }
  }

  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.models.resize(n);
  for (ModelSnapshot& m : data.models) {
    FLOCK_RETURN_NOT_OK(in.GetString(&m.name));
    FLOCK_RETURN_NOT_OK(in.GetU64(&m.version));
    FLOCK_RETURN_NOT_OK(in.GetString(&m.pipeline_text));
    FLOCK_RETURN_NOT_OK(in.GetString(&m.created_by));
    FLOCK_RETURN_NOT_OK(in.GetString(&m.lineage));
    uint32_t acl;
    FLOCK_RETURN_NOT_OK(in.GetU32(&acl));
    m.allowed_principals.resize(acl);
    for (std::string& p : m.allowed_principals) {
      FLOCK_RETURN_NOT_OK(in.GetString(&p));
    }
  }

  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.audit.resize(n);
  for (AuditEventSnapshot& e : data.audit) {
    FLOCK_RETURN_NOT_OK(in.GetU8(&e.kind));
    FLOCK_RETURN_NOT_OK(in.GetString(&e.model));
    FLOCK_RETURN_NOT_OK(in.GetString(&e.principal));
    FLOCK_RETURN_NOT_OK(in.GetU64(&e.version));
    FLOCK_RETURN_NOT_OK(in.GetU64(&e.rows));
  }

  FLOCK_RETURN_NOT_OK(in.GetU64(&data.policy_next_seq));
  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.timeline.resize(n);
  for (policy::TimelineEntry& e : data.timeline) {
    uint8_t action, rejected;
    FLOCK_RETURN_NOT_OK(in.GetU64(&e.seq));
    FLOCK_RETURN_NOT_OK(in.GetString(&e.policy));
    FLOCK_RETURN_NOT_OK(in.GetU8(&action));
    FLOCK_RETURN_NOT_OK(in.GetDouble(&e.before));
    FLOCK_RETURN_NOT_OK(in.GetDouble(&e.after));
    FLOCK_RETURN_NOT_OK(in.GetU8(&rejected));
    FLOCK_RETURN_NOT_OK(in.GetString(&e.context));
    if (action > kMaxActionKind) {
      return Status::DataLoss("snapshot timeline entry has bad action");
    }
    e.action = static_cast<policy::ActionKind>(action);
    e.rejected = rejected != 0;
  }

  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.entities.resize(n);
  for (size_t i = 0; i < data.entities.size(); ++i) {
    prov::Entity& entity = data.entities[i];
    entity.id = i + 1;
    uint8_t type;
    FLOCK_RETURN_NOT_OK(in.GetU8(&type));
    if (type > kMaxEntityType) {
      return Status::DataLoss("snapshot provenance entity has bad type");
    }
    entity.type = static_cast<prov::EntityType>(type);
    FLOCK_RETURN_NOT_OK(in.GetString(&entity.name));
    FLOCK_RETURN_NOT_OK(in.GetU64(&entity.version));
    uint32_t props;
    FLOCK_RETURN_NOT_OK(in.GetU32(&props));
    for (uint32_t p = 0; p < props; ++p) {
      std::string key, value;
      FLOCK_RETURN_NOT_OK(in.GetString(&key));
      FLOCK_RETURN_NOT_OK(in.GetString(&value));
      entity.properties[key] = value;
    }
  }
  FLOCK_RETURN_NOT_OK(in.GetU32(&n));
  data.edges.resize(n);
  for (prov::Edge& edge : data.edges) {
    uint8_t type;
    FLOCK_RETURN_NOT_OK(in.GetU64(&edge.src));
    FLOCK_RETURN_NOT_OK(in.GetU64(&edge.dst));
    FLOCK_RETURN_NOT_OK(in.GetU8(&type));
    if (type > kMaxEdgeType) {
      return Status::DataLoss("snapshot provenance edge has bad type");
    }
    edge.type = static_cast<prov::EdgeType>(type);
  }

  if (version >= 3) {
    FLOCK_RETURN_NOT_OK(in.GetU32(&n));
    data.rollouts.resize(n);
    for (RolloutSnapshot& r : data.rollouts) {
      FLOCK_RETURN_NOT_OK(in.GetString(&r.model));
      FLOCK_RETURN_NOT_OK(in.GetU8(&r.state));
      if (r.state > kMaxRolloutState) {
        return Status::DataLoss("snapshot rollout has bad state");
      }
      FLOCK_RETURN_NOT_OK(in.GetU32(&r.canary_permille));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.candidate_pipeline_text));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.initiated_by));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.live_version));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.max_divergence_rate));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.max_latency_regression));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.max_drift_score));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.min_observations));
    }
  }

  if (!in.exhausted()) {
    return Status::DataLoss("snapshot has trailing bytes");
  }
  return data;
}

CheckpointManager::CheckpointManager(std::string dir)
    : dir_(std::move(dir)) {}

Status CheckpointManager::Write(const SnapshotData& data) {
  std::string image = EncodeSnapshot(data);
  const std::string tmp = temp_path();
  FaultInjector* faults = FaultInjector::Get();

  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Errno("open", tmp);
  // Two flushed writes: the body (all table segments), then the trailing
  // CRC. The fault point between them models a crash after segment data
  // reached disk but before the image was completed — the CRC-less tmp is
  // never read by recovery, so the old snapshot + WAL replay still covers
  // every segment exactly once.
  const size_t body_size = image.size() - 4;  // trailing CRC-32
  Status s = Status::OK();
  if (std::fwrite(image.data(), 1, body_size, file) != body_size) {
    s = Errno("write", tmp);
  }
  if (s.ok() && std::fflush(file) != 0) s = Errno("flush", tmp);
  if (s.ok() && ::fsync(::fileno(file)) != 0) s = Errno("fsync", tmp);
  if (s.ok()) s = faults->Hit("checkpoint.after_segment_flush");
  if (s.ok() &&
      std::fwrite(image.data() + body_size, 1, 4, file) != 4) {
    s = Errno("write", tmp);
  }
  if (s.ok() && std::fflush(file) != 0) s = Errno("flush", tmp);
  if (s.ok() && ::fsync(::fileno(file)) != 0) s = Errno("fsync", tmp);
  std::fclose(file);
  if (!s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }

  FLOCK_RETURN_NOT_OK(faults->Hit("checkpoint.before_snapshot_rename"));
  if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    Status rs = Errno("rename", tmp);
    std::remove(tmp.c_str());
    return rs;
  }
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return Errno("opendir", dir_);
  if (::fsync(::dirfd(d)) != 0) {
    s = Errno("fsync dir", dir_);
    ::closedir(d);
    return s;
  }
  ::closedir(d);
  FLOCK_RETURN_NOT_OK(faults->Hit("checkpoint.after_snapshot_rename"));
  return Status::OK();
}

StatusOr<SnapshotData> CheckpointManager::Read() const {
  std::ifstream in(snapshot_path(), std::ios::binary);
  if (!in) {
    return Status::NotFound("no snapshot at " + snapshot_path());
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return DecodeSnapshot(std::move(contents).str());
}

}  // namespace flock::wal
