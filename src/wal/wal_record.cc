#include "wal/wal_record.h"

#include "storage/serialization.h"

namespace flock::wal {

using storage::ByteReader;
using storage::PutDouble;
using storage::PutString;
using storage::PutU32;
using storage::PutU64;
using storage::PutU8;

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateTable:
      return "CREATE_TABLE";
    case WalRecordType::kDropTable:
      return "DROP_TABLE";
    case WalRecordType::kAppendBatch:
      return "APPEND_BATCH";
    case WalRecordType::kUpdateColumn:
      return "UPDATE_COLUMN";
    case WalRecordType::kDeleteRows:
      return "DELETE_ROWS";
    case WalRecordType::kDeployModel:
      return "DEPLOY_MODEL";
    case WalRecordType::kDropModel:
      return "DROP_MODEL";
    case WalRecordType::kPolicyAction:
      return "POLICY_ACTION";
    case WalRecordType::kProvEntity:
      return "PROV_ENTITY";
    case WalRecordType::kProvEdge:
      return "PROV_EDGE";
    case WalRecordType::kProvProperty:
      return "PROV_PROPERTY";
    case WalRecordType::kRolloutState:
      return "ROLLOUT_STATE";
  }
  return "?";
}

WalRecord WalRecord::CreateTable(std::string name, storage::Schema schema) {
  WalRecord r;
  r.type = WalRecordType::kCreateTable;
  r.name = std::move(name);
  r.schema = std::move(schema);
  return r;
}

WalRecord WalRecord::DropTable(std::string name) {
  WalRecord r;
  r.type = WalRecordType::kDropTable;
  r.name = std::move(name);
  return r;
}

WalRecord WalRecord::AppendBatch(std::string table,
                                 storage::RecordBatch batch) {
  WalRecord r;
  r.type = WalRecordType::kAppendBatch;
  r.name = std::move(table);
  r.batch = std::move(batch);
  return r;
}

WalRecord WalRecord::UpdateColumn(std::string table, uint32_t column,
                                  std::vector<uint32_t> rows,
                                  std::vector<storage::Value> values) {
  WalRecord r;
  r.type = WalRecordType::kUpdateColumn;
  r.name = std::move(table);
  r.column = column;
  r.rows = std::move(rows);
  r.values = std::move(values);
  return r;
}

WalRecord WalRecord::DeleteRows(std::string table,
                                std::vector<uint8_t> keep) {
  WalRecord r;
  r.type = WalRecordType::kDeleteRows;
  r.name = std::move(table);
  r.keep = std::move(keep);
  return r;
}

WalRecord WalRecord::DeployModel(std::string name,
                                 std::string pipeline_text,
                                 std::string created_by,
                                 std::string lineage) {
  WalRecord r;
  r.type = WalRecordType::kDeployModel;
  r.name = std::move(name);
  r.pipeline_text = std::move(pipeline_text);
  r.created_by = std::move(created_by);
  r.lineage = std::move(lineage);
  return r;
}

WalRecord WalRecord::DropModel(std::string name, std::string principal) {
  WalRecord r;
  r.type = WalRecordType::kDropModel;
  r.name = std::move(name);
  r.principal = std::move(principal);
  return r;
}

WalRecord WalRecord::PolicyAction(uint64_t seq, std::string policy,
                                  uint8_t action, double before,
                                  double after, bool rejected,
                                  std::string context) {
  WalRecord r;
  r.type = WalRecordType::kPolicyAction;
  r.seq = seq;
  r.name = std::move(policy);
  r.action = action;
  r.before = before;
  r.after = after;
  r.rejected = rejected;
  r.context = std::move(context);
  return r;
}

WalRecord WalRecord::ProvEntity(uint64_t id, uint8_t type,
                                std::string name, uint64_t version) {
  WalRecord r;
  r.type = WalRecordType::kProvEntity;
  r.entity_id = id;
  r.prov_type = type;
  r.name = std::move(name);
  r.version = version;
  return r;
}

WalRecord WalRecord::ProvEdge(uint64_t src, uint64_t dst, uint8_t type) {
  WalRecord r;
  r.type = WalRecordType::kProvEdge;
  r.src = src;
  r.dst = dst;
  r.prov_type = type;
  return r;
}

WalRecord WalRecord::ProvProperty(uint64_t id, std::string key,
                                  std::string value) {
  WalRecord r;
  r.type = WalRecordType::kProvProperty;
  r.entity_id = id;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

WalRecord WalRecord::RolloutChange(RolloutSnapshot rollout) {
  WalRecord r;
  r.type = WalRecordType::kRolloutState;
  r.rollout = std::move(rollout);
  return r;
}

std::string EncodeRecordPayload(const WalRecord& record) {
  std::string out;
  switch (record.type) {
    case WalRecordType::kCreateTable:
      PutString(&out, record.name);
      storage::SerializeSchema(record.schema, &out);
      break;
    case WalRecordType::kDropTable:
      PutString(&out, record.name);
      break;
    case WalRecordType::kAppendBatch:
      PutString(&out, record.name);
      storage::SerializeBatch(record.batch, &out);
      break;
    case WalRecordType::kUpdateColumn:
      PutString(&out, record.name);
      PutU32(&out, record.column);
      PutU32(&out, static_cast<uint32_t>(record.rows.size()));
      for (uint32_t row : record.rows) PutU32(&out, row);
      for (const storage::Value& v : record.values) {
        storage::SerializeValue(v, &out);
      }
      break;
    case WalRecordType::kDeleteRows:
      PutString(&out, record.name);
      PutU64(&out, record.keep.size());
      out.append(reinterpret_cast<const char*>(record.keep.data()),
                 record.keep.size());
      break;
    case WalRecordType::kDeployModel:
      PutString(&out, record.name);
      PutString(&out, record.pipeline_text);
      PutString(&out, record.created_by);
      PutString(&out, record.lineage);
      break;
    case WalRecordType::kDropModel:
      PutString(&out, record.name);
      PutString(&out, record.principal);
      break;
    case WalRecordType::kPolicyAction:
      PutU64(&out, record.seq);
      PutString(&out, record.name);
      PutU8(&out, record.action);
      PutDouble(&out, record.before);
      PutDouble(&out, record.after);
      PutU8(&out, record.rejected ? 1 : 0);
      PutString(&out, record.context);
      break;
    case WalRecordType::kProvEntity:
      PutU64(&out, record.entity_id);
      PutU8(&out, record.prov_type);
      PutString(&out, record.name);
      PutU64(&out, record.version);
      break;
    case WalRecordType::kProvEdge:
      PutU64(&out, record.src);
      PutU64(&out, record.dst);
      PutU8(&out, record.prov_type);
      break;
    case WalRecordType::kProvProperty:
      PutU64(&out, record.entity_id);
      PutString(&out, record.key);
      PutString(&out, record.value);
      break;
    case WalRecordType::kRolloutState:
      PutString(&out, record.rollout.model);
      PutU8(&out, record.rollout.state);
      PutU32(&out, record.rollout.canary_permille);
      PutString(&out, record.rollout.candidate_pipeline_text);
      PutString(&out, record.rollout.initiated_by);
      PutU64(&out, record.rollout.live_version);
      PutDouble(&out, record.rollout.max_divergence_rate);
      PutDouble(&out, record.rollout.max_latency_regression);
      PutDouble(&out, record.rollout.max_drift_score);
      PutU64(&out, record.rollout.min_observations);
      break;
  }
  return out;
}

StatusOr<WalRecord> DecodeRecordPayload(WalRecordType type,
                                        const char* data, size_t size) {
  ByteReader in(data, size);
  WalRecord r;
  r.type = type;
  switch (type) {
    case WalRecordType::kCreateTable:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(storage::DeserializeSchema(&in, &r.schema));
      break;
    case WalRecordType::kDropTable:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      break;
    case WalRecordType::kAppendBatch:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(storage::DeserializeBatch(&in, &r.batch));
      break;
    case WalRecordType::kUpdateColumn: {
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(in.GetU32(&r.column));
      uint32_t n;
      FLOCK_RETURN_NOT_OK(in.GetU32(&n));
      r.rows.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        FLOCK_RETURN_NOT_OK(in.GetU32(&r.rows[i]));
      }
      r.values.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        FLOCK_RETURN_NOT_OK(storage::DeserializeValue(&in, &r.values[i]));
      }
      break;
    }
    case WalRecordType::kDeleteRows: {
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      uint64_t n;
      FLOCK_RETURN_NOT_OK(in.GetU64(&n));
      if (in.remaining() < n) {
        return Status::DataLoss("truncated DELETE_ROWS bitmap");
      }
      r.keep.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint8_t b;
        FLOCK_RETURN_NOT_OK(in.GetU8(&b));
        r.keep[i] = b;
      }
      break;
    }
    case WalRecordType::kDeployModel:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.pipeline_text));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.created_by));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.lineage));
      break;
    case WalRecordType::kDropModel:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.principal));
      break;
    case WalRecordType::kPolicyAction: {
      uint8_t rejected;
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.seq));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(in.GetU8(&r.action));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.before));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.after));
      FLOCK_RETURN_NOT_OK(in.GetU8(&rejected));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.context));
      r.rejected = rejected != 0;
      break;
    }
    case WalRecordType::kProvEntity:
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.entity_id));
      FLOCK_RETURN_NOT_OK(in.GetU8(&r.prov_type));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.name));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.version));
      break;
    case WalRecordType::kProvEdge:
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.src));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.dst));
      FLOCK_RETURN_NOT_OK(in.GetU8(&r.prov_type));
      break;
    case WalRecordType::kProvProperty:
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.entity_id));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.key));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.value));
      break;
    case WalRecordType::kRolloutState:
      FLOCK_RETURN_NOT_OK(in.GetString(&r.rollout.model));
      FLOCK_RETURN_NOT_OK(in.GetU8(&r.rollout.state));
      FLOCK_RETURN_NOT_OK(in.GetU32(&r.rollout.canary_permille));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.rollout.candidate_pipeline_text));
      FLOCK_RETURN_NOT_OK(in.GetString(&r.rollout.initiated_by));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.rollout.live_version));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.rollout.max_divergence_rate));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.rollout.max_latency_regression));
      FLOCK_RETURN_NOT_OK(in.GetDouble(&r.rollout.max_drift_score));
      FLOCK_RETURN_NOT_OK(in.GetU64(&r.rollout.min_observations));
      break;
    default:
      return Status::DataLoss("unknown wal record type " +
                              std::to_string(static_cast<int>(type)));
  }
  if (!in.exhausted()) {
    return Status::DataLoss(std::string(WalRecordTypeName(type)) +
                            " record has trailing bytes");
  }
  return r;
}

}  // namespace flock::wal
