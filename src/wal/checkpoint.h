#ifndef FLOCK_WAL_CHECKPOINT_H_
#define FLOCK_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "policy/policy_engine.h"
#include "prov/entity.h"
#include "storage/record_batch.h"
#include "storage/schema.h"
#include "wal/engine_state.h"

namespace flock::wal {

struct TableSnapshot {
  std::string name;
  storage::Schema schema;
  /// One batch per storage segment, in row order. BuildSnapshot fills
  /// these with zero-copy views over the live table's segment columns;
  /// a decoded version-1 image holds a single batch.
  std::vector<storage::RecordBatch> segments;
  /// The table's segment capacity, so recovery reproduces the physical
  /// layout. 0 = unknown (version-1 image): restore repacks the rows at
  /// the catalog's default capacity.
  uint64_t segment_capacity = 0;
};

/// Everything a snapshot file holds: a point-in-time image of the durable
/// engine state, plus the epoch of the (empty) WAL that was cut at the
/// same checkpoint. Recovery = restore this + replay that WAL.
struct SnapshotData {
  uint64_t epoch = 0;
  std::vector<TableSnapshot> tables;
  std::vector<ModelSnapshot> models;
  std::vector<AuditEventSnapshot> audit;
  std::vector<policy::TimelineEntry> timeline;
  uint64_t policy_next_seq = 0;
  std::vector<prov::Entity> entities;
  std::vector<prov::Edge> edges;
  /// Model rollouts (format version >= 3; older images simply have none).
  std::vector<RolloutSnapshot> rollouts;
};

/// Writes and reads versioned snapshot files with crash-atomic
/// replacement: the image is serialized to `snapshot.tmp`, fsynced,
/// renamed over `snapshot.fsnap`, and the directory is fsynced — a crash
/// at any step leaves either the old snapshot or the new one, never a
/// hybrid. A trailing CRC-32 over the payload detects torn or corrupted
/// images at read time (Status::DataLoss).
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir);

  std::string snapshot_path() const { return dir_ + "/snapshot.fsnap"; }
  std::string temp_path() const { return dir_ + "/snapshot.tmp"; }

  /// Atomically replaces the snapshot. Fault points:
  /// checkpoint.before_snapshot_rename, checkpoint.after_snapshot_rename.
  Status Write(const SnapshotData& data);

  /// NotFound when no snapshot exists; DataLoss on corruption.
  StatusOr<SnapshotData> Read() const;

 private:
  std::string dir_;
};

/// Exposed for tests: the raw (de)serialization without the file dance.
std::string EncodeSnapshot(const SnapshotData& data);
StatusOr<SnapshotData> DecodeSnapshot(const std::string& buf);

}  // namespace flock::wal

#endif  // FLOCK_WAL_CHECKPOINT_H_
