#ifndef FLOCK_WAL_DURABILITY_H_
#define FLOCK_WAL_DURABILITY_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "policy/policy_engine.h"
#include "prov/catalog.h"
#include "storage/database.h"
#include "storage/observer.h"
#include "wal/engine_state.h"
#include "wal/recovery.h"
#include "wal/wal_writer.h"

namespace flock::wal {

struct DurabilityOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  int group_commit_interval_ms = 2;
  /// Tables excluded from logging and snapshots (derived catalog tables
  /// the engine rebuilds itself, e.g. flock_models / flock_audit).
  std::set<std::string> skip_tables;
  /// Epoch stamped into a *freshly created* log (ignored when recovery
  /// finds existing state). Replication failover seeds this above the old
  /// primary's epoch so the promoted replica fences its predecessor.
  uint64_t initial_epoch = 1;
};

/// The durability facade: one object per data directory that
///
///  1. runs recovery on Open (snapshot restore + WAL replay),
///  2. observes every committed mutation — storage DDL/DML via
///     storage::DatabaseObserver, provenance via prov::CatalogListener,
///     policy decisions via policy::TimelineListener, model deploys via
///     explicit Log* calls from the engine — and appends it to the WAL,
///  3. takes checkpoints: snapshot to disk, then cut a fresh WAL under a
///     bumped epoch.
///
/// Observer callbacks cannot return errors, so append failures park in a
/// sticky health() status; the engine checks it after every exclusive
/// statement and refuses further writes once the log is wedged. Open
/// attaches the observers itself, after recovery, so replayed mutations
/// are not re-logged.
class DurabilityManager : public storage::DatabaseObserver,
                          public prov::CatalogListener,
                          public policy::TimelineListener {
 public:
  /// Recovers `dir` (created if missing) into the supplied components and
  /// starts logging. `catalog` / `policy` may be null when the deployment
  /// does not use them — recovery then fails cleanly if the log disagrees.
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const std::string& dir, storage::Database* db, prov::Catalog* catalog,
      policy::PolicyEngine* policy, EngineStateAdapter adapter,
      DurabilityOptions options);

  ~DurabilityManager() override;

  /// What recovery found and replayed.
  const RecoveryResult& recovery() const { return recovery_; }

  /// Snapshot + WAL reset. The caller must hold whatever lock serializes
  /// mutations (the engine's exclusive statement lock): the snapshot must
  /// be a point-in-time image and no append may interleave with the log
  /// swap. Fault points: checkpoint.before_snapshot_write,
  /// checkpoint.before_snapshot_rename, checkpoint.after_snapshot_rename,
  /// checkpoint.after_wal_reset.
  Status Checkpoint();

  /// First WAL append/fsync error, sticky. OK while the log is healthy.
  Status health() const;

  /// Forces everything appended so far to disk.
  Status Sync();

  uint64_t epoch() const { return writer_->epoch(); }
  const std::string& directory() const { return dir_; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  /// Epoch-local LSN: number of records durable in the current epoch's
  /// log — the position a fully caught-up replica would sit at.
  uint64_t lsn() const { return writer_->epoch_records(); }
  uint64_t records_logged() const;
  /// Cumulative fsyncs / bytes appended (lock-free; for the metrics
  /// registry).
  uint64_t syncs() const;
  uint64_t bytes_written() const;

  // --- engine-driven logging (models are not observable from storage) ---
  Status LogModelDeploy(const std::string& name,
                        const std::string& pipeline_text,
                        const std::string& created_by,
                        const std::string& lineage);
  Status LogModelDrop(const std::string& name,
                      const std::string& principal);
  Status LogRolloutState(const RolloutSnapshot& rollout);

  // --- storage::DatabaseObserver ---
  void OnCreateTable(const std::string& name,
                     const storage::Schema& schema) override;
  void OnDropTable(const std::string& name) override;
  void OnAppendBatch(const storage::Table& table,
                     const storage::RecordBatch& batch) override;
  void OnAppendRow(const storage::Table& table,
                   const std::vector<storage::Value>& row) override;
  void OnUpdateColumn(const storage::Table& table, size_t col,
                      const std::vector<uint32_t>& rows,
                      const std::vector<storage::Value>& values) override;
  void OnDeleteRows(const storage::Table& table,
                    const std::vector<bool>& keep, size_t removed) override;

  // --- prov::CatalogListener ---
  void OnEntity(const prov::Entity& entity) override;
  void OnEdge(const prov::Edge& edge) override;
  void OnProperty(uint64_t id, const std::string& key,
                  const std::string& value) override;

  // --- policy::TimelineListener ---
  void OnTimelineEntry(const policy::TimelineEntry& entry) override;

 private:
  DurabilityManager(std::string dir, storage::Database* db,
                    prov::Catalog* catalog, policy::PolicyEngine* policy,
                    EngineStateAdapter adapter, DurabilityOptions options);

  bool Skip(const std::string& table) const;
  void Observe(const WalRecord& record);
  SnapshotData BuildSnapshot(uint64_t epoch) const;

  std::string dir_;
  storage::Database* db_;
  prov::Catalog* catalog_;
  policy::PolicyEngine* policy_;
  EngineStateAdapter adapter_;
  DurabilityOptions options_;
  std::unique_ptr<WalWriter> writer_;
  RecoveryResult recovery_;

  mutable std::mutex health_mu_;
  Status observer_health_;  // first failed observed append, sticky
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_DURABILITY_H_
