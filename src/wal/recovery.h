#ifndef FLOCK_WAL_RECOVERY_H_
#define FLOCK_WAL_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "policy/policy_engine.h"
#include "prov/catalog.h"
#include "storage/database.h"
#include "wal/checkpoint.h"
#include "wal/engine_state.h"
#include "wal/wal_record.h"

namespace flock::wal {

struct RecoveryResult {
  bool snapshot_restored = false;
  bool wal_found = false;
  uint64_t wal_records_replayed = 0;
  /// The final record was torn (crash mid-append) and dropped.
  bool tail_truncated = true;
  /// A WAL older than the snapshot was discarded (crash between snapshot
  /// rename and WAL reset during a checkpoint).
  bool stale_wal_discarded = false;
  /// Epoch the resumed (or fresh) WAL must carry.
  uint64_t epoch = 1;
  /// Byte size of the intact WAL prefix; Resume truncates to this.
  uint64_t wal_valid_size = 0;
};

/// The component set a WAL record or snapshot is applied into. Shared by
/// crash recovery and the replication applier (src/repl) so a replica
/// streams records through the exact same replay path a restart does —
/// one switch, one set of invariants.
struct WalReplayTarget {
  storage::Database* db = nullptr;
  prov::Catalog* catalog = nullptr;        // may be null
  policy::PolicyEngine* policy = nullptr;  // may be null
  const EngineStateAdapter* adapter = nullptr;
};

/// Applies one committed redo record. Internal/DataLoss when the record
/// names a component the target lacks or carries malformed enum tags.
Status ApplyWalRecord(const WalReplayTarget& target,
                      const WalRecord& record);

/// Restores a full snapshot image into an empty target (tables, models,
/// audit log, policy timeline, provenance graph).
Status RestoreSnapshotState(const WalReplayTarget& target,
                            const SnapshotData& snapshot);

/// Rebuilds durable state from a data directory: restores the latest
/// snapshot (if any), then replays the WAL tail on top. Epoch fencing
/// guards the snapshot/WAL pair: the snapshot records the epoch of the
/// WAL cut at the same checkpoint, and a WAL from any *later* epoch —
/// which would mean a missing snapshot — is DataLoss, while one from an
/// earlier epoch is a leftover already covered by the snapshot and is
/// discarded instead of double-replayed.
///
/// Derived state (plan caches, catalog tables, optimizer
/// specializations) is NOT rebuilt here; the engine does that after
/// recovery returns.
class RecoveryManager {
 public:
  RecoveryManager(std::string dir, storage::Database* db,
                  prov::Catalog* catalog, policy::PolicyEngine* policy,
                  EngineStateAdapter adapter);

  StatusOr<RecoveryResult> Recover();

  std::string wal_path() const { return dir_ + "/wal.log"; }

 private:
  WalReplayTarget Target() const;

  std::string dir_;
  storage::Database* db_;
  prov::Catalog* catalog_;
  policy::PolicyEngine* policy_;
  EngineStateAdapter adapter_;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_RECOVERY_H_
