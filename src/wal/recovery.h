#ifndef FLOCK_WAL_RECOVERY_H_
#define FLOCK_WAL_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "policy/policy_engine.h"
#include "prov/catalog.h"
#include "storage/database.h"
#include "wal/checkpoint.h"
#include "wal/engine_state.h"
#include "wal/wal_record.h"

namespace flock::wal {

struct RecoveryResult {
  bool snapshot_restored = false;
  bool wal_found = false;
  uint64_t wal_records_replayed = 0;
  /// The final record was torn (crash mid-append) and dropped.
  bool tail_truncated = true;
  /// A WAL older than the snapshot was discarded (crash between snapshot
  /// rename and WAL reset during a checkpoint).
  bool stale_wal_discarded = false;
  /// Epoch the resumed (or fresh) WAL must carry.
  uint64_t epoch = 1;
  /// Byte size of the intact WAL prefix; Resume truncates to this.
  uint64_t wal_valid_size = 0;
};

/// Rebuilds durable state from a data directory: restores the latest
/// snapshot (if any), then replays the WAL tail on top. Epoch fencing
/// guards the snapshot/WAL pair: the snapshot records the epoch of the
/// WAL cut at the same checkpoint, and a WAL from any *later* epoch —
/// which would mean a missing snapshot — is DataLoss, while one from an
/// earlier epoch is a leftover already covered by the snapshot and is
/// discarded instead of double-replayed.
///
/// Derived state (plan caches, catalog tables, optimizer
/// specializations) is NOT rebuilt here; the engine does that after
/// recovery returns.
class RecoveryManager {
 public:
  RecoveryManager(std::string dir, storage::Database* db,
                  prov::Catalog* catalog, policy::PolicyEngine* policy,
                  EngineStateAdapter adapter);

  StatusOr<RecoveryResult> Recover();

  std::string wal_path() const { return dir_ + "/wal.log"; }

 private:
  Status RestoreSnapshot(const SnapshotData& snapshot);
  Status ApplyRecord(const WalRecord& record);

  std::string dir_;
  storage::Database* db_;
  prov::Catalog* catalog_;
  policy::PolicyEngine* policy_;
  EngineStateAdapter adapter_;
};

}  // namespace flock::wal

#endif  // FLOCK_WAL_RECOVERY_H_
