#include "wal/recovery.h"

#include <sys/stat.h>

#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace flock::wal {

namespace {

constexpr uint8_t kMaxActionKind = 4;    // policy::ActionKind::kAlert
constexpr uint8_t kMaxEntityType = 10;   // prov::EntityType::kVersionRun
constexpr uint8_t kMaxEdgeType = 8;      // prov::EdgeType::kHasParam
constexpr uint8_t kMaxRolloutState = 4;  // rolled_back

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

RecoveryManager::RecoveryManager(std::string dir, storage::Database* db,
                                 prov::Catalog* catalog,
                                 policy::PolicyEngine* policy,
                                 EngineStateAdapter adapter)
    : dir_(std::move(dir)),
      db_(db),
      catalog_(catalog),
      policy_(policy),
      adapter_(std::move(adapter)) {}

WalReplayTarget RecoveryManager::Target() const {
  return WalReplayTarget{db_, catalog_, policy_, &adapter_};
}

StatusOr<RecoveryResult> RecoveryManager::Recover() {
  RecoveryResult result;
  result.tail_truncated = false;

  CheckpointManager checkpoint(dir_);
  uint64_t snap_epoch = 0;
  auto snapshot = checkpoint.Read();
  if (snapshot.ok()) {
    FLOCK_RETURN_NOT_OK(RestoreSnapshotState(Target(), *snapshot));
    result.snapshot_restored = true;
    snap_epoch = snapshot->epoch;
    result.epoch = snap_epoch;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  auto reader = WalReader::Open(wal_path());
  if (!reader.ok()) {
    if (reader.status().code() == StatusCode::kNotFound) {
      return result;  // fresh directory (or snapshot-only)
    }
    if (!result.snapshot_restored &&
        reader.status().code() == StatusCode::kDataLoss &&
        FileSize(wal_path()) < kWalHeaderSize) {
      // Crash during the very first WAL creation, before any record could
      // have committed: nothing to lose, start over.
      result.stale_wal_discarded = true;
      return result;
    }
    return reader.status();
  }

  uint64_t wal_epoch = (*reader)->epoch();
  if (!result.snapshot_restored) {
    if (wal_epoch != 1) {
      return Status::DataLoss("wal is from epoch " +
                              std::to_string(wal_epoch) +
                              " but no snapshot exists");
    }
  } else if (wal_epoch < snap_epoch) {
    // Crash between the checkpoint's snapshot rename and its WAL reset:
    // everything in this older log is already inside the snapshot.
    result.wal_found = true;
    result.stale_wal_discarded = true;
    return result;
  } else if (wal_epoch > snap_epoch) {
    return Status::DataLoss(
        "wal is from epoch " + std::to_string(wal_epoch) +
        " but latest snapshot is from epoch " + std::to_string(snap_epoch));
  }

  result.wal_found = true;
  result.epoch = wal_epoch;
  WalRecord record;
  bool done = false;
  while (true) {
    FLOCK_RETURN_NOT_OK((*reader)->Next(&record, &done));
    if (done) break;
    FLOCK_RETURN_NOT_OK(ApplyWalRecord(Target(), record));
    ++result.wal_records_replayed;
  }
  result.tail_truncated = (*reader)->tail_truncated();
  result.wal_valid_size = (*reader)->valid_size();
  return result;
}

Status RestoreSnapshotState(const WalReplayTarget& target,
                            const SnapshotData& snapshot) {
  storage::Database* db = target.db;
  for (const TableSnapshot& t : snapshot.tables) {
    FLOCK_RETURN_NOT_OK(db->CreateTable(
        t.name, t.schema, static_cast<size_t>(t.segment_capacity)));
    if (t.segments.empty()) continue;
    FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table, db->GetTable(t.name));
    if (t.segment_capacity > 0) {
      // Version-2 image: install the recorded segments verbatim so the
      // restored physical layout (and zone maps) matches the original.
      FLOCK_RETURN_NOT_OK(table->RestoreSegments(t.segments));
    } else {
      // Version-1 image: one monolithic batch; a plain append repacks it
      // into segments at the catalog's default capacity.
      FLOCK_RETURN_NOT_OK(table->AppendBatch(t.segments[0]));
    }
  }
  const EngineStateAdapter* adapter = target.adapter;
  for (const ModelSnapshot& m : snapshot.models) {
    if (adapter == nullptr || !adapter->restore_model) {
      return Status::Internal(
          "snapshot contains models but no restore_model adapter");
    }
    FLOCK_RETURN_NOT_OK(adapter->restore_model(m));
  }
  if (!snapshot.audit.empty() && adapter != nullptr &&
      adapter->restore_audit) {
    adapter->restore_audit(snapshot.audit);
  }
  for (const RolloutSnapshot& r : snapshot.rollouts) {
    if (adapter == nullptr || !adapter->restore_rollout) {
      return Status::Internal(
          "snapshot contains rollouts but no restore_rollout adapter");
    }
    FLOCK_RETURN_NOT_OK(adapter->restore_rollout(r));
  }
  if (!snapshot.timeline.empty() || snapshot.policy_next_seq > 0) {
    if (target.policy == nullptr) {
      return Status::Internal(
          "snapshot contains a policy timeline but no policy engine is "
          "attached");
    }
    target.policy->RestoreTimeline(snapshot.timeline,
                                   snapshot.policy_next_seq);
  }
  if (!snapshot.entities.empty() || !snapshot.edges.empty()) {
    if (target.catalog == nullptr) {
      return Status::Internal(
          "snapshot contains provenance but no catalog is attached");
    }
    FLOCK_RETURN_NOT_OK(
        target.catalog->Restore(snapshot.entities, snapshot.edges));
  }
  return Status::OK();
}

Status ApplyWalRecord(const WalReplayTarget& target, const WalRecord& r) {
  storage::Database* db = target.db;
  prov::Catalog* catalog = target.catalog;
  policy::PolicyEngine* policy = target.policy;
  const EngineStateAdapter* adapter = target.adapter;
  switch (r.type) {
    case WalRecordType::kCreateTable:
      return db->CreateTable(r.name, r.schema);
    case WalRecordType::kDropTable:
      return db->DropTable(r.name);
    case WalRecordType::kAppendBatch: {
      FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table, db->GetTable(r.name));
      return table->AppendBatch(r.batch);
    }
    case WalRecordType::kUpdateColumn: {
      FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table, db->GetTable(r.name));
      return table->UpdateColumn(r.column, r.rows, r.values);
    }
    case WalRecordType::kDeleteRows: {
      FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table, db->GetTable(r.name));
      std::vector<bool> keep(r.keep.begin(), r.keep.end());
      if (keep.size() != table->num_rows()) {
        return Status::DataLoss(
            "DELETE_ROWS bitmap for '" + r.name + "' covers " +
            std::to_string(keep.size()) + " rows but table has " +
            std::to_string(table->num_rows()));
      }
      table->FilterInPlace(keep);
      return Status::OK();
    }
    case WalRecordType::kDeployModel:
      if (adapter == nullptr || !adapter->replay_deploy) {
        return Status::Internal(
            "wal contains model deploys but no replay_deploy adapter");
      }
      return adapter->replay_deploy(r.name, r.pipeline_text, r.created_by,
                                    r.lineage);
    case WalRecordType::kDropModel:
      if (adapter == nullptr || !adapter->replay_drop) {
        return Status::Internal(
            "wal contains model drops but no replay_drop adapter");
      }
      return adapter->replay_drop(r.name, r.principal);
    case WalRecordType::kPolicyAction: {
      if (policy == nullptr) {
        return Status::Internal(
            "wal contains policy actions but no policy engine is attached");
      }
      if (r.action > kMaxActionKind) {
        return Status::DataLoss("policy action record has bad action kind");
      }
      policy::TimelineEntry entry;
      entry.seq = r.seq;
      entry.policy = r.name;
      entry.action = static_cast<policy::ActionKind>(r.action);
      entry.before = r.before;
      entry.after = r.after;
      entry.rejected = r.rejected;
      entry.context = r.context;
      policy->ReplayTimelineEntry(std::move(entry));
      return Status::OK();
    }
    case WalRecordType::kProvEntity:
      if (catalog == nullptr) {
        return Status::Internal(
            "wal contains provenance but no catalog is attached");
      }
      if (r.prov_type > kMaxEntityType) {
        return Status::DataLoss("provenance record has bad entity type");
      }
      return catalog->ReplayEntity(
          r.entity_id, static_cast<prov::EntityType>(r.prov_type), r.name,
          r.version);
    case WalRecordType::kProvEdge:
      if (catalog == nullptr) {
        return Status::Internal(
            "wal contains provenance but no catalog is attached");
      }
      if (r.prov_type > kMaxEdgeType) {
        return Status::DataLoss("provenance record has bad edge type");
      }
      catalog->AddEdge(r.src, r.dst,
                        static_cast<prov::EdgeType>(r.prov_type));
      return Status::OK();
    case WalRecordType::kProvProperty:
      if (catalog == nullptr) {
        return Status::Internal(
            "wal contains provenance but no catalog is attached");
      }
      return catalog->SetProperty(r.entity_id, r.key, r.value);
    case WalRecordType::kRolloutState:
      if (adapter == nullptr || !adapter->replay_rollout) {
        return Status::Internal(
            "wal contains rollout transitions but no replay_rollout "
            "adapter");
      }
      if (r.rollout.state > kMaxRolloutState) {
        return Status::DataLoss("rollout record has bad state");
      }
      return adapter->replay_rollout(r.rollout);
  }
  return Status::DataLoss("unknown wal record type during replay");
}

}  // namespace flock::wal
