#include "workload/scripts.h"

#include "common/random.h"
#include "common/string_util.h"

namespace flock::workload {

namespace {

const char* kModelCtors[] = {
    "LogisticRegression",         "RandomForestClassifier",
    "GradientBoostingClassifier", "DecisionTreeClassifier",
    "LinearRegression",           "Ridge",
    "XGBClassifier",              "SVC",
};
const char* kModelModules[] = {
    "sklearn.linear_model", "sklearn.ensemble", "sklearn.ensemble",
    "sklearn.tree",         "sklearn.linear_model", "sklearn.linear_model",
    "xgboost",              "sklearn.svm",
};
const char* kMetrics[] = {"accuracy_score", "roc_auc_score", "f1_score",
                          "mean_squared_error"};

struct ScriptBuilder {
  std::string out;
  void Line(const std::string& line) {
    out += line;
    out += "\n";
  }
};

}  // namespace

std::vector<GeneratedScript> GenerateScriptCorpus(
    const ScriptCorpusOptions& options) {
  Random rng(options.seed);
  std::vector<GeneratedScript> corpus;
  corpus.reserve(options.num_scripts);

  for (size_t s = 0; s < options.num_scripts; ++s) {
    GeneratedScript script;
    script.name = "script_" + std::to_string(s) + ".py";
    ScriptBuilder b;
    b.Line("import pandas as pd");
    b.Line("import numpy as np");
    b.Line("from sklearn.model_selection import train_test_split");

    size_t num_models = 1 + rng.Uniform(2);  // 1-2 models per script
    script.true_models = num_models;

    // Decide the data-loading style for this script.
    bool sql_read = rng.NextDouble() < options.sql_read_fraction;
    bool opaque_data = rng.NextDouble() < options.opaque_data_probability;

    std::string table = "features_" + std::to_string(rng.Uniform(20));
    if (opaque_data) {
      // The loader is a user helper or an API outside the KB: the model
      // may still be found, but its training data cannot be traced.
      if (rng.NextBool()) {
        b.Line("def load_data():");
        b.Line("    return pd.read_csv('" + table + ".csv')");
        b.Line("df = load_data()");
      } else {
        b.Line("raw = np.loadtxt('" + table + ".txt')");
        b.Line("df = pd.DataFrame(raw)");
      }
    } else if (sql_read) {
      b.Line("df = db.query('SELECT * FROM " + table + "')");
    } else {
      b.Line("df = pd.read_csv('" + table + ".csv')");
    }
    b.Line("df = df.dropna()");
    b.Line("X = df[['f0', 'f1', 'f2', 'f3']]");
    b.Line("y = df['label']");
    b.Line(
        "X_train, X_test, y_train, y_test = train_test_split(X, y, "
        "test_size=0.25)");

    for (size_t m = 0; m < num_models; ++m) {
      size_t which = rng.Uniform(8);
      std::string ctor = kModelCtors[which];
      std::string module = kModelModules[which];
      std::string var = "model_" + std::to_string(m);
      bool helper_model =
          rng.NextDouble() < options.helper_model_probability;
      if (helper_model) {
        // Model constructed behind a helper: invisible to the analyzer.
        b.Line("def build_" + var + "():");
        b.Line("    return make_estimator('" + ctor + "')");
        b.Line(var + " = build_" + var + "()");
      } else {
        b.Line("from " + module + " import " + ctor);
        std::string params;
        if (rng.NextBool(0.7)) {
          params = "max_iter=" +
                   std::to_string(rng.UniformInt(100, 500));
          if (rng.NextBool(0.5)) {
            params += ", random_state=" +
                      std::to_string(rng.UniformInt(0, 99));
          }
        }
        b.Line(var + " = " + ctor + "(" + params + ")");
      }
      b.Line(var + ".fit(X_train, y_train)");
      script.true_training_links += 1;
      if (rng.NextBool(0.8)) {
        std::string metric = kMetrics[rng.Uniform(4)];
        b.Line("from sklearn.metrics import " + metric);
        b.Line("pred_" + std::to_string(m) + " = " + var +
               ".predict(X_test)");
        b.Line("score_" + std::to_string(m) + " = " + metric +
               "(y_test, pred_" + std::to_string(m) + ")");
      }
    }
    script.source = std::move(b.out);
    corpus.push_back(std::move(script));
  }
  return corpus;
}

std::vector<GeneratedScript> GenerateKaggleCorpus(uint64_t seed) {
  ScriptCorpusOptions options;
  options.num_scripts = 49;
  options.seed = seed;
  options.helper_model_probability = 0.04;
  options.opaque_data_probability = 0.38;
  options.sql_read_fraction = 0.05;
  return GenerateScriptCorpus(options);
}

std::vector<GeneratedScript> GenerateInternalCorpus(uint64_t seed) {
  ScriptCorpusOptions options;
  options.num_scripts = 37;
  options.seed = seed ^ 0xABCDEF;
  options.helper_model_probability = 0.0;
  options.opaque_data_probability = 0.0;
  options.sql_read_fraction = 0.6;  // production pipelines read the DBMS
  return GenerateScriptCorpus(options);
}

}  // namespace flock::workload
