#ifndef FLOCK_WORKLOAD_TPCH_H_
#define FLOCK_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/database.h"

namespace flock::workload {

/// TPC-H workload generator for the provenance-capture experiment
/// (paper §4.2, Table 1: "queries generated out of all query templates in
/// TPC-H", 2,208 of them).
///
/// The 8 TPC-H tables are created with their standard columns. The 22
/// query templates are adapted to Flock's SQL dialect — correlated
/// subqueries are flattened into joins or split into their outer shape —
/// while preserving each template's table/column footprint, which is what
/// determines the size of the captured provenance graph. (Documented
/// substitution; see DESIGN.md.)
class TpchWorkload {
 public:
  explicit TpchWorkload(uint64_t seed = 42) : rng_(seed) {}

  /// Creates the 8 TPC-H tables in `db` (empty; capture only needs
  /// schemas).
  Status CreateSchema(storage::Database* db);

  /// Fills the tables with `units` scale units of referentially consistent
  /// synthetic data (customers = units, orders = 3x, lineitems = ~9x).
  /// Used by the end-to-end query-execution tests and benches.
  Status PopulateData(storage::Database* db, size_t units);

  /// Number of distinct query templates (22).
  static size_t NumTemplates();

  /// Instantiates template `i` (0-based) with fresh random parameters.
  std::string Instantiate(size_t template_index);

  /// Generates `count` queries by cycling through all templates.
  std::vector<std::string> GenerateQueryStream(size_t count);

 private:
  Random rng_;
};

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_TPCH_H_
