#include "workload/landscape.h"

#include <sstream>

namespace flock::workload {

const char* SupportName(Support s) {
  switch (s) {
    case Support::kGood:
      return "Good";
    case Support::kOk:
      return "OK";
    case Support::kNo:
      return "No";
    case Support::kUnknown:
      return "?";
  }
  return "?";
}

namespace {
constexpr Support G = Support::kGood;
constexpr Support O = Support::kOk;
constexpr Support N = Support::kNo;
constexpr Support U = Support::kUnknown;
}  // namespace

Landscape::Landscape() {
  using FC = FeatureCategory;
  features_ = {
      {"Experiment Tracking", FC::kTraining},
      {"Managed Notebooks", FC::kTraining},
      {"Pipelines / Projects", FC::kTraining},
      {"Multi-Framework", FC::kTraining},
      {"Proprietary Algos", FC::kTraining},
      {"Distributed Training", FC::kTraining},
      {"Auto ML", FC::kTraining},
      {"Batch prediction", FC::kServing},
      {"On-prem deployment", FC::kServing},
      {"Model Monitoring", FC::kServing},
      {"Model Validation", FC::kServing},
      {"Data Provenance", FC::kDataManagement},
      {"Data testing", FC::kDataManagement},
      {"Feature Store", FC::kDataManagement},
      {"Featurization DSL", FC::kDataManagement},
      {"Labelling", FC::kDataManagement},
      {"In-DB ML", FC::kDataManagement},
  };

  // Encoded from the paper's Figure 3 (its caption stresses this is the
  // authors' subjective reading at time of writing, 2019).
  systems_ = {
      // name, proprietary, 17 feature levels in features_ order
      {"Bing", true,
       {G, O, G, O, G, G, O, G, N, G, G, G, G, G, G, G, N}},
      {"Uber Michelangelo", true,
       {G, O, G, G, N, G, O, G, N, G, G, G, O, G, G, O, N}},
      {"LinkedIn ProML", true,
       {G, O, G, O, G, G, O, G, N, G, O, G, O, G, G, O, N}},
      {"Azure ML", false,
       {G, G, G, G, O, G, G, G, O, O, O, O, N, N, N, G, O}},
      {"AWS SageMaker", false,
       {O, G, G, G, O, G, G, G, N, O, N, N, N, N, N, G, N}},
      {"Google Cloud AI", false,
       {O, G, G, O, O, G, G, G, N, O, N, N, N, N, N, G, O}},
      {"MLflow", false,
       {G, N, G, G, N, N, N, O, G, N, O, N, N, N, N, N, N}},
      {"Kubeflow", false,
       {O, G, G, G, N, G, O, O, G, N, N, N, N, N, N, N, N}},
      {"TFX", false,
       {N, N, G, N, N, G, N, G, G, O, G, O, G, N, G, N, N}},
  };
}

double Landscape::CategoryScore(const LandscapeSystem& system,
                                FeatureCategory category) const {
  double total = 0.0;
  size_t count = 0;
  for (size_t f = 0; f < features_.size(); ++f) {
    if (features_[f].category != category) continue;
    if (system.support[f] == Support::kUnknown) continue;
    total += static_cast<double>(static_cast<int>(system.support[f]));
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double Landscape::ProprietaryDataManagementGap() const {
  double prop = 0.0, pub = 0.0;
  size_t prop_n = 0, pub_n = 0;
  for (const LandscapeSystem& system : systems_) {
    double score =
        CategoryScore(system, FeatureCategory::kDataManagement);
    if (system.proprietary) {
      prop += score;
      ++prop_n;
    } else {
      pub += score;
      ++pub_n;
    }
  }
  if (prop_n == 0 || pub_n == 0) return 0.0;
  return prop / static_cast<double>(prop_n) -
         pub / static_cast<double>(pub_n);
}

double Landscape::OverallGoodFraction() const {
  size_t good = 0, total = 0;
  for (const LandscapeSystem& system : systems_) {
    for (Support s : system.support) {
      if (s == Support::kUnknown) continue;
      ++total;
      if (s == Support::kGood) ++good;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(good) /
                          static_cast<double>(total);
}

std::string Landscape::Render() const {
  std::ostringstream out;
  out << "Feature                 ";
  for (const LandscapeSystem& system : systems_) {
    out << " | " << system.name.substr(0, 10);
  }
  out << "\n";
  FeatureCategory last = FeatureCategory::kTraining;
  bool first = true;
  for (size_t f = 0; f < features_.size(); ++f) {
    if (first || features_[f].category != last) {
      const char* header =
          features_[f].category == FeatureCategory::kTraining
              ? "-- Training --"
              : (features_[f].category == FeatureCategory::kServing
                     ? "-- Serving --"
                     : "-- Data Management --");
      out << header << "\n";
      last = features_[f].category;
      first = false;
    }
    std::string name = features_[f].name;
    name.resize(24, ' ');
    out << name;
    for (const LandscapeSystem& system : systems_) {
      std::string cell = SupportName(system.support[f]);
      cell.resize(10, ' ');
      out << " | " << cell;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace flock::workload
