#include "workload/notebooks.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace flock::workload {

NotebookCorpus GenerateNotebookCorpus(
    const NotebookCorpusOptions& options) {
  NotebookCorpus corpus;
  corpus.num_packages = options.num_packages;
  corpus.notebooks.reserve(options.num_notebooks);
  ZipfSampler zipf(options.num_packages, options.zipf_skew, options.seed);
  Random rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < options.num_notebooks; ++i) {
    // Import count: 1 + Poisson-ish via geometric mixing.
    size_t count = 1;
    while (rng.NextDouble() <
               1.0 - 1.0 / options.mean_packages_per_notebook &&
           count < 30) {
      ++count;
    }
    std::vector<uint32_t> pkgs;
    pkgs.reserve(count);
    for (size_t p = 0; p < count; ++p) {
      pkgs.push_back(static_cast<uint32_t>(zipf.Next()));
    }
    std::sort(pkgs.begin(), pkgs.end());
    pkgs.erase(std::unique(pkgs.begin(), pkgs.end()), pkgs.end());
    corpus.notebooks.push_back(std::move(pkgs));
  }
  return corpus;
}

std::vector<double> CoverageCurve(const NotebookCorpus& corpus,
                                  const std::vector<size_t>& top_k) {
  // Rank packages by corpus frequency.
  std::vector<size_t> freq(corpus.num_packages, 0);
  for (const auto& nb : corpus.notebooks) {
    for (uint32_t pkg : nb) ++freq[pkg];
  }
  std::vector<uint32_t> order(corpus.num_packages);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return freq[a] > freq[b];
  });
  // rank[pkg] = popularity position (0 = most popular).
  std::vector<uint32_t> rank(corpus.num_packages, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<uint32_t>(i);
  }
  // Per-notebook max rank — covered by top-K iff max rank < K.
  std::vector<uint32_t> max_rank;
  max_rank.reserve(corpus.notebooks.size());
  for (const auto& nb : corpus.notebooks) {
    uint32_t m = 0;
    for (uint32_t pkg : nb) m = std::max(m, rank[pkg]);
    max_rank.push_back(m);
  }
  std::vector<double> out;
  out.reserve(top_k.size());
  for (size_t k : top_k) {
    size_t covered = 0;
    for (uint32_t m : max_rank) {
      if (m < k) ++covered;
    }
    out.push_back(corpus.notebooks.empty()
                      ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(corpus.notebooks.size()));
  }
  return out;
}

}  // namespace flock::workload
