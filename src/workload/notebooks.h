#ifndef FLOCK_WORKLOAD_NOTEBOOKS_H_
#define FLOCK_WORKLOAD_NOTEBOOKS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flock::workload {

/// A synthetic stand-in for the paper's GitHub corpus (§3, Figure 2: ">4
/// million public Python notebooks"). Each notebook imports a set of
/// packages drawn from a Zipf-like popularity distribution; Figure 2 plots
/// the fraction of notebooks *completely supported* when only the top-K
/// most popular packages are covered.
struct NotebookCorpus {
  size_t num_packages = 0;
  /// Per-notebook package-id sets (sorted, unique).
  std::vector<std::vector<uint32_t>> notebooks;
};

struct NotebookCorpusOptions {
  size_t num_notebooks = 50000;
  /// Package-vocabulary size: the paper observed 3x growth 2017 -> 2019.
  size_t num_packages = 400;
  /// Zipf skew of package popularity; higher = more head-concentrated
  /// (the paper's "initial convergence: a few packages are becoming
  /// dominant").
  double zipf_skew = 1.5;
  /// Mean number of distinct imports per notebook.
  double mean_packages_per_notebook = 5.0;
  uint64_t seed = 42;
};

NotebookCorpus GenerateNotebookCorpus(const NotebookCorpusOptions& options);

/// Fraction of notebooks whose every import falls within the top-K most
/// popular packages (popularity measured inside the corpus), for each K.
std::vector<double> CoverageCurve(const NotebookCorpus& corpus,
                                  const std::vector<size_t>& top_k);

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_NOTEBOOKS_H_
