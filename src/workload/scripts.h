#ifndef FLOCK_WORKLOAD_SCRIPTS_H_
#define FLOCK_WORKLOAD_SCRIPTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flock::workload {

/// One generated data-science script plus its ground truth (known by
/// construction), used to evaluate the Python provenance module's coverage
/// exactly as the paper's Table 2 does ("how often the module identifies
/// correctly ML models and training datasets").
struct GeneratedScript {
  std::string name;
  std::string source;
  size_t true_models = 0;
  /// Model <- dataset training links that exist in the script.
  size_t true_training_links = 0;
};

struct ScriptCorpusOptions {
  size_t num_scripts = 49;
  uint64_t seed = 42;
  /// Probability that a model is constructed behind a user-defined helper
  /// function (static analysis cannot see through it).
  double helper_model_probability = 0.0;
  /// Probability that a model's training data flows through an API outside
  /// the knowledge base (custom loader, unknown library) — the dataset
  /// link is lost even when the model is found.
  double opaque_data_probability = 0.0;
  /// Fraction of data reads that go through SQL (db.query) rather than
  /// files; both are in the KB, but SQL reads can later be bridged to
  /// table entities (C3).
  double sql_read_fraction = 0.25;
};

/// Messy public-notebook-style corpus (the paper's Kaggle dataset: 49
/// scripts, 95% models / 61% training datasets identified).
std::vector<GeneratedScript> GenerateKaggleCorpus(uint64_t seed = 42);

/// Disciplined production-style corpus (the paper's Microsoft-internal
/// dataset: 37 scripts, 100% / 100%).
std::vector<GeneratedScript> GenerateInternalCorpus(uint64_t seed = 42);

/// Fully parameterized generator.
std::vector<GeneratedScript> GenerateScriptCorpus(
    const ScriptCorpusOptions& options);

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_SCRIPTS_H_
