#include "workload/synthetic.h"

#include <cmath>

#include "common/random.h"
#include "ml/tree.h"

namespace flock::workload {

using storage::ColumnDef;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

StatusOr<InferenceWorkload> BuildInferenceWorkload(
    ::flock::flock::FlockEngine* engine,
    const InferenceWorkloadOptions& options) {
  const size_t numeric = options.num_numeric;
  const size_t width = numeric + 1;  // + categorical "segment"
  const char* segments[] = {"web", "mobile", "tablet"};

  // Schema: id, f0..f{n-1}, segment.
  Schema schema;
  schema.AddColumn(ColumnDef{"id", DataType::kInt64, false});
  for (size_t c = 0; c < numeric; ++c) {
    schema.AddColumn(
        ColumnDef{"f" + std::to_string(c), DataType::kDouble, true});
  }
  schema.AddColumn(ColumnDef{"segment", DataType::kString, true});
  FLOCK_RETURN_NOT_OK(
      engine->database()->CreateTable(options.table_name, schema));
  FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table,
                         engine->database()->GetTable(options.table_name));

  Random rng(options.seed);
  InferenceWorkload workload;
  workload.raw = ml::Matrix(options.num_rows, width);
  std::vector<double> labels(options.num_rows);

  RecordBatch staging(schema);
  for (size_t r = 0; r < options.num_rows; ++r) {
    std::vector<Value> row;
    row.reserve(width + 1);
    row.push_back(Value::Int(static_cast<int64_t>(r)));
    double z = 0.0;
    for (size_t c = 0; c < numeric; ++c) {
      double v = rng.NextGaussian() * 1.5 + 0.5;
      workload.raw.at(r, c) = v;
      row.push_back(Value::Double(v));
      if (c < options.signal_features) {
        double w = (c % 2 == 0 ? 0.8 : -0.6) *
                   (1.0 + 0.15 * static_cast<double>(c));
        z += w * v;
      }
    }
    size_t segment = rng.Uniform(3);
    workload.raw.at(r, numeric) = static_cast<double>(segment);
    row.push_back(Value::String(segments[segment]));
    z += segment == 0 ? 0.7 : (segment == 1 ? -0.2 : -0.8);
    z += rng.NextGaussian() * 0.4;
    labels[r] = z > 0.2 ? 1.0 : 0.0;
    FLOCK_RETURN_NOT_OK(staging.AppendRow(row));
    if (staging.num_rows() >= 65536 || r + 1 == options.num_rows) {
      FLOCK_RETURN_NOT_OK(table->AppendBatch(staging));
      staging = RecordBatch(schema);
    }
  }

  // Pipeline over the raw feature columns (without id).
  std::vector<ml::FeatureSpec> specs;
  for (size_t c = 0; c < numeric; ++c) {
    specs.push_back(ml::FeatureSpec{"f" + std::to_string(c),
                                    ml::FeatureKind::kNumeric,
                                    {}});
  }
  specs.push_back(ml::FeatureSpec{
      "segment", ml::FeatureKind::kCategorical, {"web", "mobile",
                                                 "tablet"}});
  workload.pipeline.SetInputs(std::move(specs));
  workload.pipeline.set_task(ml::ModelTask::kBinaryClassification);

  // Train on a sample.
  size_t train_rows = std::min(options.train_rows, options.num_rows);
  ml::Matrix train_raw(train_rows, width);
  ml::Dataset train;
  train.y.resize(train_rows);
  for (size_t r = 0; r < train_rows; ++r) {
    size_t src = r * (options.num_rows / train_rows);
    for (size_t c = 0; c < width; ++c) {
      train_raw.at(r, c) = workload.raw.at(src, c);
    }
    train.y[r] = labels[src];
  }
  workload.pipeline.FitFeaturizers(train_raw, true, true);
  train.x = workload.pipeline.Transform(train_raw);
  ml::GbtOptions gbt;
  gbt.num_trees = options.gbt_trees;
  gbt.max_depth = options.gbt_depth;
  gbt.seed = options.seed;
  // Regularize weak splits away so the trained model exhibits the feature
  // sparsity real CTR models have — the raw material for FeaturePruning.
  gbt.min_split_gain = 8.0;
  workload.pipeline.SetTreeModel(ml::TrainGradientBoosting(train, gbt));

  FLOCK_RETURN_NOT_OK(engine->DeployModel(
      options.model_name, workload.pipeline, "workload-generator",
      "synthetic-fig4"));
  return workload;
}

}  // namespace flock::workload
