#include "workload/tpcc.h"

#include "common/string_util.h"
#include "sql/parser.h"

namespace flock::workload {

namespace {

const char* kSchemas[] = {
    "CREATE TABLE warehouse (w_id INT, w_name VARCHAR, w_street VARCHAR, "
    "w_city VARCHAR, w_state VARCHAR, w_zip VARCHAR, w_tax DOUBLE, "
    "w_ytd DOUBLE)",
    "CREATE TABLE district (d_id INT, d_w_id INT, d_name VARCHAR, "
    "d_street VARCHAR, d_city VARCHAR, d_state VARCHAR, d_zip VARCHAR, "
    "d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id INT)",
    "CREATE TABLE customer (c_id INT, c_d_id INT, c_w_id INT, "
    "c_first VARCHAR, c_middle VARCHAR, c_last VARCHAR, c_street VARCHAR, "
    "c_city VARCHAR, c_state VARCHAR, c_zip VARCHAR, c_phone VARCHAR, "
    "c_since VARCHAR, c_credit VARCHAR, c_credit_lim DOUBLE, "
    "c_discount DOUBLE, c_balance DOUBLE, c_ytd_payment DOUBLE, "
    "c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR)",
    "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, "
    "h_d_id INT, h_w_id INT, h_date VARCHAR, h_amount DOUBLE, "
    "h_data VARCHAR)",
    "CREATE TABLE new_order (no_o_id INT, no_d_id INT, no_w_id INT)",
    "CREATE TABLE orders (o_id INT, o_d_id INT, o_w_id INT, o_c_id INT, "
    "o_entry_d VARCHAR, o_carrier_id INT, o_ol_cnt INT, o_all_local INT)",
    "CREATE TABLE order_line (ol_o_id INT, ol_d_id INT, ol_w_id INT, "
    "ol_number INT, ol_i_id INT, ol_supply_w_id INT, ol_delivery_d "
    "VARCHAR, ol_quantity INT, ol_amount DOUBLE, ol_dist_info VARCHAR)",
    "CREATE TABLE item (i_id INT, i_im_id INT, i_name VARCHAR, "
    "i_price DOUBLE, i_data VARCHAR)",
    "CREATE TABLE stock (s_i_id INT, s_w_id INT, s_quantity INT, "
    "s_dist_01 VARCHAR, s_ytd DOUBLE, s_order_cnt INT, s_remote_cnt INT, "
    "s_data VARCHAR)",
};

}  // namespace

Status TpccWorkload::CreateSchema(storage::Database* db) {
  for (const char* ddl : kSchemas) {
    FLOCK_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::Parser::Parse(ddl));
    const auto& create =
        static_cast<const sql::CreateTableStatement&>(*stmt);
    FLOCK_RETURN_NOT_OK(db->CreateTable(create.table_name, create.schema));
  }
  return Status::OK();
}

std::vector<std::string> TpccWorkload::NewOrder() {
  int w = static_cast<int>(rng_.UniformInt(1, 10));
  int d = static_cast<int>(rng_.UniformInt(1, 10));
  int c = static_cast<int>(rng_.UniformInt(1, 3000));
  int o = static_cast<int>(rng_.UniformInt(1, 100000));
  std::vector<std::string> out;
  out.push_back("SELECT c_discount, c_last, c_credit FROM customer WHERE "
                "c_w_id = " + std::to_string(w) +
                " AND c_d_id = " + std::to_string(d) +
                " AND c_id = " + std::to_string(c));
  out.push_back("SELECT w_tax FROM warehouse WHERE w_id = " +
                std::to_string(w));
  out.push_back("SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = " +
                std::to_string(w) + " AND d_id = " + std::to_string(d));
  out.push_back("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE "
                "d_w_id = " + std::to_string(w) +
                " AND d_id = " + std::to_string(d));
  out.push_back("INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, "
                "o_ol_cnt, o_all_local) VALUES (" + std::to_string(o) +
                ", " + std::to_string(d) + ", " + std::to_string(w) +
                ", " + std::to_string(c) + ", 5, 1)");
  out.push_back("INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES "
                "(" + std::to_string(o) + ", " + std::to_string(d) + ", " +
                std::to_string(w) + ")");
  size_t lines = static_cast<size_t>(rng_.UniformInt(2, 4));
  for (size_t ol = 1; ol <= lines; ++ol) {
    int item = static_cast<int>(rng_.UniformInt(1, 100000));
    out.push_back("SELECT i_price, i_name, i_data FROM item WHERE i_id = " +
                  std::to_string(item));
    out.push_back("SELECT s_quantity, s_data, s_dist_01 FROM stock WHERE "
                  "s_i_id = " + std::to_string(item) +
                  " AND s_w_id = " + std::to_string(w));
    out.push_back("UPDATE stock SET s_quantity = s_quantity - " +
                  std::to_string(rng_.UniformInt(1, 10)) +
                  ", s_ytd = s_ytd + 1, s_order_cnt = s_order_cnt + 1 "
                  "WHERE s_i_id = " + std::to_string(item) +
                  " AND s_w_id = " + std::to_string(w));
    out.push_back("INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, "
                  "ol_number, ol_i_id, ol_supply_w_id, ol_quantity, "
                  "ol_amount) VALUES (" + std::to_string(o) + ", " +
                  std::to_string(d) + ", " + std::to_string(w) + ", " +
                  std::to_string(ol) + ", " + std::to_string(item) +
                  ", " + std::to_string(w) + ", 5, " +
                  FormatDouble(rng_.UniformDouble(1.0, 9999.0), 2) + ")");
  }
  return out;
}

std::vector<std::string> TpccWorkload::Payment() {
  int w = static_cast<int>(rng_.UniformInt(1, 10));
  int d = static_cast<int>(rng_.UniformInt(1, 10));
  int c = static_cast<int>(rng_.UniformInt(1, 3000));
  std::string amount = FormatDouble(rng_.UniformDouble(1.0, 5000.0), 2);
  std::vector<std::string> out;
  out.push_back("UPDATE warehouse SET w_ytd = w_ytd + " + amount +
                " WHERE w_id = " + std::to_string(w));
  out.push_back("SELECT w_street, w_city, w_state, w_zip, w_name FROM "
                "warehouse WHERE w_id = " + std::to_string(w));
  out.push_back("UPDATE district SET d_ytd = d_ytd + " + amount +
                " WHERE d_w_id = " + std::to_string(w) +
                " AND d_id = " + std::to_string(d));
  out.push_back("SELECT d_street, d_city, d_state, d_zip, d_name FROM "
                "district WHERE d_w_id = " + std::to_string(w) +
                " AND d_id = " + std::to_string(d));
  out.push_back("SELECT c_first, c_middle, c_last, c_balance, c_credit "
                "FROM customer WHERE c_w_id = " + std::to_string(w) +
                " AND c_d_id = " + std::to_string(d) +
                " AND c_id = " + std::to_string(c));
  out.push_back("UPDATE customer SET c_balance = c_balance - " + amount +
                ", c_ytd_payment = c_ytd_payment + " + amount +
                ", c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = " +
                std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
                " AND c_id = " + std::to_string(c));
  out.push_back("INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, "
                "h_w_id, h_amount) VALUES (" + std::to_string(c) + ", " +
                std::to_string(d) + ", " + std::to_string(w) + ", " +
                std::to_string(d) + ", " + std::to_string(w) + ", " +
                amount + ")");
  return out;
}

std::vector<std::string> TpccWorkload::OrderStatus() {
  int w = static_cast<int>(rng_.UniformInt(1, 10));
  int d = static_cast<int>(rng_.UniformInt(1, 10));
  int c = static_cast<int>(rng_.UniformInt(1, 3000));
  std::vector<std::string> out;
  out.push_back("SELECT c_balance, c_first, c_middle, c_last FROM "
                "customer WHERE c_w_id = " + std::to_string(w) +
                " AND c_d_id = " + std::to_string(d) +
                " AND c_id = " + std::to_string(c));
  out.push_back("SELECT o_id, o_carrier_id, o_entry_d FROM orders WHERE "
                "o_w_id = " + std::to_string(w) +
                " AND o_d_id = " + std::to_string(d) +
                " AND o_c_id = " + std::to_string(c) +
                " ORDER BY o_id DESC LIMIT 1");
  out.push_back("SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, "
                "ol_delivery_d FROM order_line WHERE ol_w_id = " +
                std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
                " AND ol_o_id = " +
                std::to_string(rng_.UniformInt(1, 100000)));
  return out;
}

std::vector<std::string> TpccWorkload::Delivery() {
  int w = static_cast<int>(rng_.UniformInt(1, 10));
  int o = static_cast<int>(rng_.UniformInt(1, 100000));
  std::vector<std::string> out;
  for (int d = 1; d <= 3; ++d) {
    out.push_back("SELECT no_o_id FROM new_order WHERE no_d_id = " +
                  std::to_string(d) + " AND no_w_id = " +
                  std::to_string(w) + " ORDER BY no_o_id LIMIT 1");
    out.push_back("DELETE FROM new_order WHERE no_o_id = " +
                  std::to_string(o) + " AND no_d_id = " +
                  std::to_string(d) + " AND no_w_id = " +
                  std::to_string(w));
    out.push_back("UPDATE orders SET o_carrier_id = " +
                  std::to_string(rng_.UniformInt(1, 10)) +
                  " WHERE o_id = " + std::to_string(o) +
                  " AND o_d_id = " + std::to_string(d) +
                  " AND o_w_id = " + std::to_string(w));
    out.push_back("UPDATE order_line SET ol_delivery_d = '2026-07-05' "
                  "WHERE ol_o_id = " + std::to_string(o) +
                  " AND ol_d_id = " + std::to_string(d) +
                  " AND ol_w_id = " + std::to_string(w));
    out.push_back("UPDATE customer SET c_balance = c_balance + " +
                  FormatDouble(rng_.UniformDouble(1.0, 5000.0), 2) +
                  ", c_delivery_cnt = c_delivery_cnt + 1 WHERE c_id = " +
                  std::to_string(rng_.UniformInt(1, 3000)) +
                  " AND c_d_id = " + std::to_string(d) +
                  " AND c_w_id = " + std::to_string(w));
  }
  return out;
}

std::vector<std::string> TpccWorkload::StockLevel() {
  int w = static_cast<int>(rng_.UniformInt(1, 10));
  int d = static_cast<int>(rng_.UniformInt(1, 10));
  std::vector<std::string> out;
  out.push_back("SELECT d_next_o_id FROM district WHERE d_w_id = " +
                std::to_string(w) + " AND d_id = " + std::to_string(d));
  out.push_back("SELECT COUNT(DISTINCT s.s_i_id) AS stock_count FROM "
                "order_line ol JOIN stock s ON s.s_i_id = ol.ol_i_id "
                "WHERE ol.ol_w_id = " + std::to_string(w) +
                " AND ol.ol_d_id = " + std::to_string(d) +
                " AND s.s_w_id = " + std::to_string(w) +
                " AND s.s_quantity < " +
                std::to_string(rng_.UniformInt(10, 20)));
  return out;
}

std::vector<std::string> TpccWorkload::GenerateQueryStream(size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  while (out.size() < count) {
    uint64_t roll = rng_.Uniform(100);
    std::vector<std::string> txn;
    if (roll < 45) {
      txn = NewOrder();
    } else if (roll < 88) {
      txn = Payment();
    } else if (roll < 92) {
      txn = OrderStatus();
    } else if (roll < 96) {
      txn = Delivery();
    } else {
      txn = StockLevel();
    }
    for (auto& stmt : txn) {
      if (out.size() >= count) break;
      out.push_back(std::move(stmt));
    }
  }
  return out;
}

}  // namespace flock::workload
