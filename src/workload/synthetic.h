#ifndef FLOCK_WORKLOAD_SYNTHETIC_H_
#define FLOCK_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "flock/flock_engine.h"
#include "ml/matrix.h"
#include "ml/pipeline.h"

namespace flock::workload {

/// The Figure-4 inference workload: a wide tabular table (default 28
/// columns: 24 numeric + 3 noise + 1 categorical — matching the paper's
/// "end-to-end prediction pipelines composed of featurizers and models")
/// and a GBDT pipeline trained on a subset of the columns, so that model
/// sparsity exists for FeaturePruning to exploit.
struct InferenceWorkloadOptions {
  size_t num_rows = 100000;
  size_t num_numeric = 27;  // + 1 categorical = 28 total
  size_t signal_features = 8;
  size_t gbt_trees = 40;
  size_t gbt_depth = 6;
  size_t train_rows = 8000;
  uint64_t seed = 42;
  std::string table_name = "clickstream";
  std::string model_name = "ctr";
};

struct InferenceWorkload {
  ml::Pipeline pipeline;
  /// Raw numeric-encoded matrix of the whole table (for standalone
  /// baselines that score outside the DBMS).
  ml::Matrix raw;
};

/// Creates the table in `engine`'s database, fills it, trains the
/// pipeline, and deploys it under `options.model_name`.
StatusOr<InferenceWorkload> BuildInferenceWorkload(
    ::flock::flock::FlockEngine* engine,
    const InferenceWorkloadOptions& options);

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_SYNTHETIC_H_
