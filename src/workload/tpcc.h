#ifndef FLOCK_WORKLOAD_TPCC_H_
#define FLOCK_WORKLOAD_TPCC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/database.h"

namespace flock::workload {

/// TPC-C workload generator for the provenance-capture experiment (paper
/// §4.2, Table 1: 2,200 TPC-C queries). Emits the SQL statement streams of
/// the five transaction profiles (New-Order, Payment, Order-Status,
/// Delivery, Stock-Level) over the nine standard tables. Because TPC-C is
/// update-heavy, its captured provenance graph grows faster than TPC-H's —
/// every INSERT/UPDATE creates a new table-version entity, which is
/// exactly the effect the paper's Table 1 numbers show.
class TpccWorkload {
 public:
  explicit TpccWorkload(uint64_t seed = 42) : rng_(seed) {}

  Status CreateSchema(storage::Database* db);

  /// One transaction profile's statement list.
  std::vector<std::string> NewOrder();
  std::vector<std::string> Payment();
  std::vector<std::string> OrderStatus();
  std::vector<std::string> Delivery();
  std::vector<std::string> StockLevel();

  /// Generates a stream of `count` statements using the standard TPC-C
  /// transaction mix (45/43/4/4/4).
  std::vector<std::string> GenerateQueryStream(size_t count);

 private:
  Random rng_;
};

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_TPCC_H_
