#include "workload/tpch.h"

#include "common/string_util.h"
#include "sql/parser.h"

namespace flock::workload {

namespace {

const char* kSchemas[] = {
    "CREATE TABLE region (r_regionkey INT, r_name VARCHAR, "
    "r_comment VARCHAR)",
    "CREATE TABLE nation (n_nationkey INT, n_name VARCHAR, "
    "n_regionkey INT, n_comment VARCHAR)",
    "CREATE TABLE supplier (s_suppkey INT, s_name VARCHAR, "
    "s_address VARCHAR, s_nationkey INT, s_phone VARCHAR, "
    "s_acctbal DOUBLE, s_comment VARCHAR)",
    "CREATE TABLE customer (c_custkey INT, c_name VARCHAR, "
    "c_address VARCHAR, c_nationkey INT, c_phone VARCHAR, "
    "c_acctbal DOUBLE, c_mktsegment VARCHAR, c_comment VARCHAR)",
    "CREATE TABLE part (p_partkey INT, p_name VARCHAR, p_mfgr VARCHAR, "
    "p_brand VARCHAR, p_type VARCHAR, p_size INT, p_container VARCHAR, "
    "p_retailprice DOUBLE, p_comment VARCHAR)",
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, "
    "ps_availqty INT, ps_supplycost DOUBLE, ps_comment VARCHAR)",
    "CREATE TABLE orders (o_orderkey INT, o_custkey INT, "
    "o_orderstatus VARCHAR, o_totalprice DOUBLE, o_orderdate VARCHAR, "
    "o_orderpriority VARCHAR, o_clerk VARCHAR, o_shippriority INT, "
    "o_comment VARCHAR)",
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, "
    "l_linenumber INT, l_quantity DOUBLE, l_extendedprice DOUBLE, "
    "l_discount DOUBLE, l_tax DOUBLE, l_returnflag VARCHAR, "
    "l_linestatus VARCHAR, l_shipdate VARCHAR, l_commitdate VARCHAR, "
    "l_receiptdate VARCHAR, l_shipinstruct VARCHAR, l_shipmode VARCHAR, "
    "l_comment VARCHAR)",
};

const char* kSegments[] = {"BUILDING", "AUTOMOBILE", "MACHINERY",
                           "HOUSEHOLD", "FURNITURE"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kShipmodes[] = {"AIR", "MAIL", "SHIP", "TRUCK", "RAIL",
                            "REG AIR", "FOB"};
const char* kBrands[] = {"Brand#11", "Brand#22", "Brand#33", "Brand#44",
                         "Brand#55"};
const char* kTypes[] = {"ECONOMY ANODIZED STEEL", "STANDARD POLISHED TIN",
                        "MEDIUM BRUSHED NICKEL", "SMALL PLATED COPPER",
                        "PROMO BURNISHED BRASS"};
const char* kContainers[] = {"SM CASE", "MED BOX", "LG JAR", "WRAP PACK"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

}  // namespace

Status TpchWorkload::CreateSchema(storage::Database* db) {
  for (const char* ddl : kSchemas) {
    FLOCK_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::Parser::Parse(ddl));
    const auto& create =
        static_cast<const sql::CreateTableStatement&>(*stmt);
    FLOCK_RETURN_NOT_OK(db->CreateTable(create.table_name, create.schema));
  }
  return Status::OK();
}

Status TpchWorkload::PopulateData(storage::Database* db, size_t units) {
  using storage::RecordBatch;
  using storage::TablePtr;
  using storage::Value;

  auto date = [&]() {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                  static_cast<int>(rng_.UniformInt(1992, 1998)),
                  static_cast<int>(rng_.UniformInt(1, 12)),
                  static_cast<int>(rng_.UniformInt(1, 28)));
    return std::string(buf);
  };

  const size_t num_suppliers = units / 5 + 5;
  const size_t num_parts = units * 2;
  const size_t num_customers = units;
  const size_t num_orders = units * 3;

  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("region"));
    RecordBatch batch(t->schema());
    for (int r = 0; r < 5; ++r) {
      FLOCK_RETURN_NOT_OK(batch.AppendRow({Value::Int(r),
                                           Value::String(kRegions[r]),
                                           Value::String("c")}));
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("nation"));
    RecordBatch batch(t->schema());
    for (int n = 0; n < 25; ++n) {
      // Reuse region names for a fifth of nations so Q11-style
      // n_name = '<REGION>' predicates match rows.
      std::string name = n < 5 ? kRegions[n] : "NATION" + std::to_string(n);
      FLOCK_RETURN_NOT_OK(batch.AppendRow({Value::Int(n),
                                           Value::String(name),
                                           Value::Int(n % 5),
                                           Value::String("c")}));
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("supplier"));
    RecordBatch batch(t->schema());
    for (size_t s = 0; s < num_suppliers; ++s) {
      FLOCK_RETURN_NOT_OK(batch.AppendRow(
          {Value::Int(static_cast<int64_t>(s)),
           Value::String("Supplier#" + std::to_string(s)),
           Value::String("addr"), Value::Int(rng_.UniformInt(0, 24)),
           Value::String(std::to_string(rng_.UniformInt(10, 34)) +
                         "-555"),
           Value::Double(rng_.UniformDouble(-999, 9999)),
           Value::String("c")}));
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("customer"));
    RecordBatch batch(t->schema());
    for (size_t c = 0; c < num_customers; ++c) {
      FLOCK_RETURN_NOT_OK(batch.AppendRow(
          {Value::Int(static_cast<int64_t>(c)),
           Value::String("Customer#" + std::to_string(c)),
           Value::String("addr"), Value::Int(rng_.UniformInt(0, 24)),
           Value::String(std::to_string(rng_.UniformInt(10, 34)) +
                         "-555"),
           Value::Double(rng_.UniformDouble(-999, 9999)),
           Value::String(kSegments[rng_.Uniform(5)]),
           Value::String("c")}));
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("part"));
    RecordBatch batch(t->schema());
    for (size_t p = 0; p < num_parts; ++p) {
      std::string name =
          std::string(1, static_cast<char>('a' + rng_.Uniform(26))) +
          "part" + std::to_string(p);
      FLOCK_RETURN_NOT_OK(batch.AppendRow(
          {Value::Int(static_cast<int64_t>(p)), Value::String(name),
           Value::String("MFGR#" + std::to_string(rng_.UniformInt(1, 5))),
           Value::String(kBrands[rng_.Uniform(5)]),
           Value::String(kTypes[rng_.Uniform(5)]),
           Value::Int(rng_.UniformInt(1, 50)),
           Value::String(kContainers[rng_.Uniform(4)]),
           Value::Double(rng_.UniformDouble(900, 2000)),
           Value::String("c")}));
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr t, db->GetTable("partsupp"));
    RecordBatch batch(t->schema());
    for (size_t p = 0; p < num_parts; ++p) {
      for (int dup = 0; dup < 2; ++dup) {
        FLOCK_RETURN_NOT_OK(batch.AppendRow(
            {Value::Int(static_cast<int64_t>(p)),
             Value::Int(static_cast<int64_t>(
                 rng_.Uniform(num_suppliers))),
             Value::Int(rng_.UniformInt(1, 9999)),
             Value::Double(rng_.UniformDouble(1, 1000)),
             Value::String("c")}));
      }
    }
    FLOCK_RETURN_NOT_OK(t->AppendBatch(batch));
  }
  {
    FLOCK_ASSIGN_OR_RETURN(TablePtr orders_t, db->GetTable("orders"));
    FLOCK_ASSIGN_OR_RETURN(TablePtr lineitem_t, db->GetTable("lineitem"));
    RecordBatch orders(orders_t->schema());
    RecordBatch lineitems(lineitem_t->schema());
    for (size_t o = 0; o < num_orders; ++o) {
      FLOCK_RETURN_NOT_OK(orders.AppendRow(
          {Value::Int(static_cast<int64_t>(o)),
           Value::Int(static_cast<int64_t>(rng_.Uniform(num_customers))),
           Value::String(rng_.NextBool() ? "O" : "F"),
           Value::Double(rng_.UniformDouble(1000, 400000)),
           Value::String(date()),
           Value::String(kPriorities[rng_.Uniform(5)]),
           Value::String("Clerk#" + std::to_string(rng_.Uniform(100))),
           Value::Int(0), Value::String("c")}));
      size_t lines = 1 + rng_.Uniform(5);
      for (size_t l = 0; l < lines; ++l) {
        std::string ship = date();
        FLOCK_RETURN_NOT_OK(lineitems.AppendRow(
            {Value::Int(static_cast<int64_t>(o)),
             Value::Int(static_cast<int64_t>(rng_.Uniform(num_parts))),
             Value::Int(static_cast<int64_t>(
                 rng_.Uniform(num_suppliers))),
             Value::Int(static_cast<int64_t>(l + 1)),
             Value::Double(rng_.UniformInt(1, 50)),
             Value::Double(rng_.UniformDouble(900, 100000)),
             Value::Double(rng_.UniformDouble(0.0, 0.1)),
             Value::Double(rng_.UniformDouble(0.0, 0.08)),
             Value::String(rng_.NextBool(0.25) ? "R"
                                               : (rng_.NextBool() ? "A"
                                                                  : "N")),
             Value::String(rng_.NextBool() ? "O" : "F"),
             Value::String(ship), Value::String(date()),
             Value::String(date()), Value::String("NONE"),
             Value::String(kShipmodes[rng_.Uniform(7)]),
             Value::String("c")}));
      }
    }
    FLOCK_RETURN_NOT_OK(orders_t->AppendBatch(orders));
    FLOCK_RETURN_NOT_OK(lineitem_t->AppendBatch(lineitems));
  }
  return Status::OK();
}

size_t TpchWorkload::NumTemplates() { return 22; }

std::string TpchWorkload::Instantiate(size_t template_index) {
  auto date = [&](int year_lo, int year_hi) {
    int year = static_cast<int>(rng_.UniformInt(year_lo, year_hi));
    int month = static_cast<int>(rng_.UniformInt(1, 12));
    int day = static_cast<int>(rng_.UniformInt(1, 28));
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
    return std::string("'") + buf + "'";
  };
  auto pick = [&](const char* const* options, size_t n) {
    return std::string("'") + options[rng_.Uniform(n)] + "'";
  };
  auto num = [&](int lo, int hi) {
    return std::to_string(rng_.UniformInt(lo, hi));
  };
  auto frac = [&](double lo, double hi) {
    return FormatDouble(rng_.UniformDouble(lo, hi), 2);
  };

  switch (template_index % 22) {
    case 0:  // Q1 pricing summary
      return "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS "
             "sum_qty, SUM(l_extendedprice) AS sum_base_price, "
             "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
             "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS "
             "avg_price, AVG(l_discount) AS avg_disc, COUNT(*) AS "
             "count_order FROM lineitem WHERE l_shipdate <= " +
             date(1998, 1998) +
             " GROUP BY l_returnflag, l_linestatus "
             "ORDER BY l_returnflag, l_linestatus";
    case 1:  // Q2 minimum cost supplier (flattened)
      return "SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, "
             "p.p_mfgr, s.s_address, s.s_phone, s.s_comment FROM part p "
             "JOIN partsupp ps ON p.p_partkey = ps.ps_partkey "
             "JOIN supplier s ON s.s_suppkey = ps.ps_suppkey "
             "JOIN nation n ON s.s_nationkey = n.n_nationkey "
             "JOIN region r ON n.n_regionkey = r.r_regionkey "
             "WHERE p.p_size = " +
             num(1, 50) + " AND r.r_name = " + pick(kRegions, 5) +
             " ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey "
             "LIMIT 100";
    case 2:  // Q3 shipping priority
      return "SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - "
             "l.l_discount)) AS revenue, o.o_orderdate, o.o_shippriority "
             "FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
             "JOIN lineitem l ON l.l_orderkey = o.o_orderkey WHERE "
             "c.c_mktsegment = " +
             pick(kSegments, 5) + " AND o.o_orderdate < " +
             date(1995, 1995) + " AND l.l_shipdate > " + date(1995, 1995) +
             " GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority "
             "ORDER BY revenue DESC, o.o_orderdate LIMIT 10";
    case 3:  // Q4 order priority checking (semi-join flattened)
      return "SELECT o.o_orderpriority, COUNT(*) AS order_count FROM "
             "orders o JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
             "WHERE o.o_orderdate >= " +
             date(1993, 1997) +
             " AND l.l_commitdate < l.l_receiptdate GROUP BY "
             "o.o_orderpriority ORDER BY o.o_orderpriority";
    case 4:  // Q5 local supplier volume
      return "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount))"
             " AS revenue FROM customer c JOIN orders o ON c.c_custkey = "
             "o.o_custkey JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
             "JOIN supplier s ON l.l_suppkey = s.s_suppkey JOIN nation n "
             "ON s.s_nationkey = n.n_nationkey JOIN region r ON "
             "n.n_regionkey = r.r_regionkey WHERE r.r_name = " +
             pick(kRegions, 5) + " AND o.o_orderdate >= " +
             date(1993, 1997) +
             " GROUP BY n.n_name ORDER BY revenue DESC";
    case 5:  // Q6 forecasting revenue change
      return "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM "
             "lineitem WHERE l_shipdate >= " +
             date(1993, 1997) + " AND l_discount BETWEEN " +
             frac(0.02, 0.04) + " AND " + frac(0.05, 0.09) +
             " AND l_quantity < " + num(24, 25);
    case 6:  // Q7 volume shipping
      return "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
             "SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
             "FROM supplier s JOIN lineitem l ON s.s_suppkey = "
             "l.l_suppkey JOIN orders o ON o.o_orderkey = l.l_orderkey "
             "JOIN customer c ON c.c_custkey = o.o_custkey JOIN nation n1 "
             "ON s.s_nationkey = n1.n_nationkey JOIN nation n2 ON "
             "c.c_nationkey = n2.n_nationkey WHERE l.l_shipdate BETWEEN " +
             date(1995, 1995) + " AND " + date(1996, 1996) +
             " GROUP BY n1.n_name, n2.n_name ORDER BY supp_nation, "
             "cust_nation";
    case 7:  // Q8 national market share (outer shape)
      return "SELECT o.o_orderdate, SUM(l.l_extendedprice * (1 - "
             "l.l_discount)) AS volume FROM part p JOIN lineitem l ON "
             "p.p_partkey = l.l_partkey JOIN supplier s ON s.s_suppkey = "
             "l.l_suppkey JOIN orders o ON l.l_orderkey = o.o_orderkey "
             "JOIN customer c ON o.o_custkey = c.c_custkey JOIN nation n "
             "ON c.c_nationkey = n.n_nationkey JOIN region r ON "
             "n.n_regionkey = r.r_regionkey WHERE r.r_name = " +
             pick(kRegions, 5) + " AND p.p_type = " + pick(kTypes, 5) +
             " GROUP BY o.o_orderdate ORDER BY o.o_orderdate";
    case 8:  // Q9 product type profit
      return "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)"
             " - ps.ps_supplycost * l.l_quantity) AS sum_profit FROM part "
             "p JOIN lineitem l ON p.p_partkey = l.l_partkey JOIN "
             "supplier s ON s.s_suppkey = l.l_suppkey JOIN partsupp ps ON "
             "ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey "
             "JOIN orders o ON o.o_orderkey = l.l_orderkey JOIN nation n "
             "ON s.s_nationkey = n.n_nationkey WHERE p.p_name LIKE '%" +
             std::string(1, static_cast<char>('a' + rng_.Uniform(26))) +
             "%' GROUP BY n.n_name ORDER BY sum_profit DESC";
    case 9:  // Q10 returned item reporting
      return "SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - "
             "l.l_discount)) AS revenue, c.c_acctbal, n.n_name, "
             "c.c_address, c.c_phone, c.c_comment FROM customer c JOIN "
             "orders o ON c.c_custkey = o.o_custkey JOIN lineitem l ON "
             "l.l_orderkey = o.o_orderkey JOIN nation n ON c.c_nationkey "
             "= n.n_nationkey WHERE o.o_orderdate >= " +
             date(1993, 1994) +
             " AND l.l_returnflag = 'R' GROUP BY c.c_custkey, c.c_name, "
             "c.c_acctbal, c.c_phone, n.n_name, c.c_address, c.c_comment "
             "ORDER BY revenue DESC LIMIT 20";
    case 10:  // Q11 important stock identification
      return "SELECT ps.ps_partkey, SUM(ps.ps_supplycost * "
             "ps.ps_availqty) AS value FROM partsupp ps JOIN supplier s "
             "ON ps.ps_suppkey = s.s_suppkey JOIN nation n ON "
             "s.s_nationkey = n.n_nationkey WHERE n.n_name = " +
             pick(kRegions, 5) +
             " GROUP BY ps.ps_partkey ORDER BY value DESC LIMIT 100";
    case 11:  // Q12 shipping modes
      return "SELECT l.l_shipmode, COUNT(*) AS line_count FROM orders o "
             "JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE "
             "l.l_shipmode IN (" +
             pick(kShipmodes, 7) + ", " + pick(kShipmodes, 7) +
             ") AND l.l_receiptdate >= " + date(1993, 1997) +
             " AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < "
             "l.l_commitdate GROUP BY l.l_shipmode ORDER BY l.l_shipmode";
    case 12:  // Q13 customer distribution (outer join)
      return "SELECT c.c_custkey, COUNT(o.o_orderkey) AS c_count FROM "
             "customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey "
             "GROUP BY c.c_custkey ORDER BY c_count DESC LIMIT 100";
    case 13:  // Q14 promotion effect
      return "SELECT SUM(CASE WHEN p.p_type LIKE 'PROMO%' THEN "
             "l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) AS "
             "promo_revenue, SUM(l.l_extendedprice * (1 - l.l_discount)) "
             "AS total_revenue FROM lineitem l JOIN part p ON l.l_partkey "
             "= p.p_partkey WHERE l.l_shipdate >= " +
             date(1995, 1995);
    case 14:  // Q15 top supplier (view flattened)
      return "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) "
             "AS total_revenue FROM lineitem WHERE l_shipdate >= " +
             date(1996, 1996) +
             " GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 1";
    case 15:  // Q16 parts/supplier relationship
      return "SELECT p.p_brand, p.p_type, p.p_size, "
             "COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt FROM partsupp "
             "ps JOIN part p ON p.p_partkey = ps.ps_partkey WHERE "
             "p.p_brand <> " +
             pick(kBrands, 5) + " AND p.p_size IN (" + num(1, 10) + ", " +
             num(11, 20) + ", " + num(21, 30) +
             ") GROUP BY p.p_brand, p.p_type, p.p_size ORDER BY "
             "supplier_cnt DESC";
    case 16:  // Q17 small-quantity-order revenue (agg-subquery flattened)
      return "SELECT AVG(l.l_extendedprice) AS avg_yearly FROM lineitem l "
             "JOIN part p ON p.p_partkey = l.l_partkey WHERE p.p_brand = " +
             pick(kBrands, 5) + " AND p.p_container = " +
             pick(kContainers, 4) + " AND l.l_quantity < " + num(2, 11);
    case 17:  // Q18 large volume customer
      return "SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, "
             "o.o_totalprice, SUM(l.l_quantity) AS total_qty FROM "
             "customer c JOIN orders o ON c.c_custkey = o.o_custkey JOIN "
             "lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY "
             "c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, "
             "o.o_totalprice HAVING SUM(l.l_quantity) > " +
             num(300, 315) + " ORDER BY o.o_totalprice DESC LIMIT 100";
    case 18:  // Q19 discounted revenue
      return "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS "
             "revenue FROM lineitem l JOIN part p ON p.p_partkey = "
             "l.l_partkey WHERE p.p_brand = " +
             pick(kBrands, 5) + " AND l.l_quantity BETWEEN " + num(1, 10) +
             " AND " + num(11, 20) +
             " AND p.p_size BETWEEN 1 AND 15 AND l.l_shipmode IN ('AIR', "
             "'REG AIR')";
    case 19:  // Q20 potential part promotion (flattened)
      return "SELECT s.s_name, s.s_address FROM supplier s JOIN nation n "
             "ON s.s_nationkey = n.n_nationkey JOIN partsupp ps ON "
             "ps.ps_suppkey = s.s_suppkey JOIN part p ON p.p_partkey = "
             "ps.ps_partkey WHERE n.n_name = " +
             pick(kRegions, 5) + " AND p.p_name LIKE '" +
             std::string(1, static_cast<char>('a' + rng_.Uniform(26))) +
             "%' ORDER BY s.s_name";
    case 20:  // Q21 suppliers who kept orders waiting
      return "SELECT s.s_name, COUNT(*) AS numwait FROM supplier s JOIN "
             "lineitem l ON s.s_suppkey = l.l_suppkey JOIN orders o ON "
             "o.o_orderkey = l.l_orderkey JOIN nation n ON s.s_nationkey "
             "= n.n_nationkey WHERE o.o_orderstatus = 'F' AND "
             "l.l_receiptdate > l.l_commitdate AND n.n_name = " +
             pick(kRegions, 5) +
             " GROUP BY s.s_name ORDER BY numwait DESC, s.s_name "
             "LIMIT 100";
    case 21:  // Q22 global sales opportunity
    default:
      return "SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, COUNT(*) AS "
             "numcust, SUM(c_acctbal) AS totacctbal FROM customer WHERE "
             "c_acctbal > " +
             frac(0.0, 5000.0) + " AND SUBSTR(c_phone, 1, 2) IN ('" +
             num(10, 35) + "', '" + num(10, 35) +
             "') GROUP BY SUBSTR(c_phone, 1, 2) ORDER BY cntrycode";
  }
}

std::vector<std::string> TpchWorkload::GenerateQueryStream(size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Instantiate(i % NumTemplates()));
  }
  return out;
}

}  // namespace flock::workload
