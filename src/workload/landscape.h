#ifndef FLOCK_WORKLOAD_LANDSCAPE_H_
#define FLOCK_WORKLOAD_LANDSCAPE_H_

#include <string>
#include <vector>

namespace flock::workload {

/// Support levels in the paper's Figure 3 matrix.
enum class Support { kGood = 2, kOk = 1, kNo = 0, kUnknown = -1 };

const char* SupportName(Support s);

enum class FeatureCategory { kTraining, kServing, kDataManagement };

struct LandscapeFeature {
  std::string name;
  FeatureCategory category;
};

struct LandscapeSystem {
  std::string name;
  bool proprietary = false;  // "unicorn" in-house stack vs public offering
  std::vector<Support> support;  // parallel to Features()
};

/// The Figure 3 dataset: 9 systems x 17 features, encoded from the paper's
/// matrix (which the authors themselves describe as "a subjective
/// judgement based on a few weeks of analysis"). We reproduce the figure's
/// *data* and the two trends the paper derives from it.
class Landscape {
 public:
  Landscape();

  const std::vector<LandscapeFeature>& features() const {
    return features_;
  }
  const std::vector<LandscapeSystem>& systems() const { return systems_; }

  /// Mean support (kGood=2, kOk=1, kNo=0; kUnknown skipped) for a system
  /// over one category.
  double CategoryScore(const LandscapeSystem& system,
                       FeatureCategory category) const;

  /// Trend 1: proprietary stacks' mean data-management score minus public
  /// offerings' (paper: "mature proprietary solutions have stronger
  /// support for data management").
  double ProprietaryDataManagementGap() const;

  /// Trend 2: the overall fraction of Good cells — low values support
  /// "providing complete and usable third-party solutions in this space
  /// is non-trivial".
  double OverallGoodFraction() const;

  /// Renders the matrix as aligned text (the figure itself).
  std::string Render() const;

 private:
  std::vector<LandscapeFeature> features_;
  std::vector<LandscapeSystem> systems_;
};

}  // namespace flock::workload

#endif  // FLOCK_WORKLOAD_LANDSCAPE_H_
