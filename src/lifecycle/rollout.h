#ifndef FLOCK_LIFECYCLE_ROLLOUT_H_
#define FLOCK_LIFECYCLE_ROLLOUT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "flock/flock_engine.h"
#include "lifecycle/monitor.h"
#include "obs/metrics_registry.h"
#include "serve/metrics.h"
#include "sql/engine.h"

namespace flock::lifecycle {

/// Stage of a model rollout. The byte values are the wire/WAL encoding
/// (wal::RolloutSnapshot::state) — do not renumber.
enum class RolloutStage : uint8_t {
  kStaged = 0,      // candidate deployed as a specialization, no traffic
  kShadow = 1,      // every scoring query also scores the candidate
  kCanary = 2,      // a deterministic fraction of sessions gets the candidate
  kLive = 3,        // candidate promoted to the live version
  kRolledBack = 4,  // candidate retired (guard breach or manual abort)
};

const char* StageName(RolloutStage stage);

/// Guard rules evaluated after every shadow/canary request. A breached
/// guard triggers automatic rollback; a limit of 0 disables that guard.
struct GuardConfig {
  /// Max fraction of compared rows whose predictions diverge (candidate
  /// errors count as fully diverged rows).
  double max_divergence_rate = 0.05;
  /// Max candidate-p99 / live-p99 latency ratio.
  double max_latency_regression = 3.0;
  /// Max feature drift (ModelMonitor::DriftScore) in training std-devs.
  double max_drift_score = 6.0;
  /// Guards stay silent until this many observations accumulate.
  uint64_t min_observations = 200;
};

struct RolloutConfig {
  /// Sessions-per-thousand routed to the candidate in canary stage.
  uint32_t canary_permille = 100;
  GuardConfig guard;
};

/// Point-in-time view of one rollout: durable identity plus the
/// process-local serving statistics the guards evaluate.
struct RolloutStatusView {
  std::string model;
  RolloutStage stage = RolloutStage::kStaged;
  uint32_t canary_permille = 0;
  std::string initiated_by;
  uint64_t live_version = 0;
  uint64_t shadow_scored = 0;
  uint64_t canary_routed = 0;
  uint64_t canary_fallbacks = 0;
  uint64_t compared_rows = 0;
  uint64_t diverged_rows = 0;
  uint64_t candidate_errors = 0;
  double max_divergence = 0.0;
  double live_p99_ms = 0.0;
  double candidate_p99_ms = 0.0;
  double drift_score = 0.0;
  std::string guard_breach;  // empty while healthy
};

/// Rewrites the model-name argument of every PREDICT / PREDICT_{GT,GE,
/// LT,LE} call naming `model` (bare identifier or quoted string,
/// case-insensitive) to `replacement`, leaving everything else — including
/// other string literals — untouched. Returns the input unchanged when no
/// call references the model. Exposed for tests.
std::string RewritePredictCalls(const std::string& sql,
                                const std::string& model,
                                const std::string& replacement);

/// Drives a model version through staged → shadow → canary → live, with
/// `rolled_back` as the failure exit (paper §4.2: deployment is a
/// first-class, governed lifecycle step, not a file copy).
///
/// The durable truth (stage, candidate pipeline, guard limits) lives in
/// the engine's rollout store — every transition goes through
/// FlockEngine::UpdateRolloutState, which WAL-logs it, so rollouts survive
/// crash recovery and replicate to read replicas. This class adds the
/// process-local serving machinery on top: the interceptor that shadow-
/// scores / canary-routes traffic, the drift monitor, and the guard loop
/// that rolls back automatically through DeployTransaction.
///
/// Thread safety: Intercept runs concurrently on serve worker threads;
/// transitions (Begin/Promote/Abort and automatic rollback) serialize on
/// an internal mutex and never run under an engine lock.
class RolloutManager {
 public:
  explicit RolloutManager(flock::FlockEngine* engine);
  ~RolloutManager();

  RolloutManager(const RolloutManager&) = delete;
  RolloutManager& operator=(const RolloutManager&) = delete;

  /// Adopts the rollouts recovered into the engine (crash recovery or
  /// replica bootstrap) and attaches the drift monitor to the PREDICT
  /// kernels. Call once after FlockEngine::Open, before serving.
  Status Resume();

  /// Starts a rollout of `source_model`'s latest pipeline as the
  /// candidate for `model` (begins in kStaged; Promote advances it).
  Status Begin(const std::string& model, const std::string& source_model,
               const RolloutConfig& config, const std::string& initiated_by);

  /// Same, with the candidate pipeline supplied directly.
  Status BeginWithPipeline(const std::string& model, ml::Pipeline candidate,
                           const RolloutConfig& config,
                           const std::string& initiated_by);

  /// Advances one stage: staged→shadow, shadow→canary, canary→live. The
  /// final promotion registers the candidate as the model's new version
  /// through DeployTransaction (atomic cutover under the engine lock).
  Status Promote(const std::string& model);

  /// Manually retires the candidate (→ rolled_back). The live version is
  /// untouched, so no redeploy is needed — retiring the specialization
  /// under the engine's exclusive lock is the whole cutover.
  Status Abort(const std::string& model);

  StatusOr<RolloutStatusView> Describe(const std::string& model) const;
  std::vector<RolloutStatusView> ListRollouts() const;

  /// {"rollouts": [{...status..., "monitor": {...}}, ...]}
  std::string StatusJson() const;

  /// The serving hook: returns live results while shadow-scoring or
  /// canary-routing the candidate. Falls back to the live model on any
  /// candidate failure, so no request ever fails because of a rollout.
  /// Matches serve::ServerOptions::interceptor.
  StatusOr<sql::QueryResult> Intercept(
      const std::string& principal, const std::string& sql,
      const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
          execute);

  std::function<StatusOr<sql::QueryResult>(
      const std::string&, const std::string&,
      const std::function<StatusOr<sql::QueryResult>(const std::string&)>&)>
  MakeInterceptor();

  /// Publishes lifecycle.* counters/gauges/histograms.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  ModelMonitor* monitor() { return &monitor_; }

  uint64_t auto_rollbacks() const {
    return auto_rollbacks_.load(std::memory_order_relaxed);
  }
  uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }

 private:
  /// One tracked rollout. Identity and guard limits are immutable after
  /// construction; `stage`/`finalizing` and the counters are atomics so
  /// serve workers never take the manager mutex on the scoring path.
  struct ActiveRollout {
    std::string model;  // as stored in the durable snapshot
    uint32_t canary_permille = 0;
    GuardConfig guard;
    std::string initiated_by;
    uint64_t live_version = 0;
    std::string candidate_pipeline_text;

    std::atomic<uint8_t> stage{0};
    /// Claimed (exactly once) by whichever terminal transition fires
    /// first — automatic rollback, Abort, or the final Promote.
    std::atomic<bool> finalizing{false};

    std::atomic<uint64_t> shadow_scored{0};
    std::atomic<uint64_t> canary_routed{0};
    std::atomic<uint64_t> canary_fallbacks{0};
    std::atomic<uint64_t> compared_rows{0};
    std::atomic<uint64_t> diverged_rows{0};
    std::atomic<uint64_t> candidate_errors{0};
    std::atomic<double> max_divergence{0.0};
    serve::LatencyHistogram live_latency;
    serve::LatencyHistogram candidate_latency;

    mutable std::mutex breach_mu;
    std::string guard_breach;
  };

  static std::shared_ptr<ActiveRollout> FromSnapshot(
      const wal::RolloutSnapshot& snapshot);
  static wal::RolloutSnapshot ToSnapshot(const ActiveRollout& rollout,
                                         uint8_t state);

  std::shared_ptr<ActiveRollout> Find(const std::string& model) const;
  void RecountActive();
  RolloutStatusView BuildView(const ActiveRollout& rollout) const;

  StatusOr<sql::QueryResult> ShadowExecute(
      const std::shared_ptr<ActiveRollout>& rollout,
      const std::string& sql, const std::string& rewritten,
      const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
          execute);
  StatusOr<sql::QueryResult> CanaryExecute(
      const std::shared_ptr<ActiveRollout>& rollout,
      const std::string& principal, const std::string& sql,
      const std::string& rewritten,
      const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
          execute);

  /// Counts divergence between the live and candidate result batches.
  void CompareResults(const storage::RecordBatch& live,
                      const storage::RecordBatch& candidate,
                      ActiveRollout* rollout);

  /// Evaluates the guard rules; on the first breach, claims the rollout
  /// and rolls back automatically.
  void CheckGuards(const std::shared_ptr<ActiveRollout>& rollout);

  /// Re-registers the pinned live version through DeployTransaction
  /// (Register's specialization prefix-erase retires the candidate
  /// atomically under the engine's exclusive lock), then records the
  /// terminal rolled_back state. Caller has claimed `finalizing`.
  Status RollBack(const std::shared_ptr<ActiveRollout>& rollout,
                  const std::string& reason);

  uint64_t Sum(
      const std::function<uint64_t(const ActiveRollout&)>& fn) const;

  flock::FlockEngine* engine_;
  ModelMonitor monitor_;
  mutable std::mutex mu_;
  /// All rollouts this process knows, keyed by lowercased model name —
  /// active and terminal (terminal ones keep their stats inspectable).
  std::map<std::string, std::shared_ptr<ActiveRollout>> rollouts_;
  /// Rollouts in shadow/canary; the interceptor's fast path checks this
  /// single atomic and stays out of the way when it is zero.
  std::atomic<size_t> active_count_{0};
  std::atomic<uint64_t> auto_rollbacks_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> guard_breaches_{0};
};

}  // namespace flock::lifecycle

#endif  // FLOCK_LIFECYCLE_ROLLOUT_H_
