#include "lifecycle/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace flock::lifecycle {

std::string ModelMonitor::Key(const std::string& model) {
  return ToLower(model);
}

void ModelMonitor::InputSketch::Observe(double v) {
  if (std::isnan(v)) return;
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  mean += (v - mean) / static_cast<double>(count);
  if (++since_last_sample >= stride) {
    since_last_sample = 0;
    sample.push_back(v);
    if (sample.size() >= kSampleCapacity) {
      // Keep every second element; the survivors are spaced 2*stride
      // apart, so the sample stays uniform over the whole stream.
      size_t kept = 0;
      for (size_t i = 0; i < sample.size(); i += 2) {
        sample[kept++] = sample[i];
      }
      sample.resize(kept);
      stride *= 2;
    }
  }
}

double ModelMonitor::InputSketch::Quantile(double p) const {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void ModelMonitor::ObserveFeatures(const flock::ModelEntry& entry,
                                   const ml::Matrix& raw,
                                   size_t num_rows) {
  const std::string& owner =
      entry.base_name.empty() ? entry.name : entry.base_name;
  std::lock_guard<std::mutex> lock(mu_);
  ModelState& state = models_[Key(owner)];
  if (state.inputs.size() < raw.cols()) state.inputs.resize(raw.cols());
  if (state.train_mean.empty() && !entry.training_profile.empty()) {
    state.train_mean = entry.training_profile.mean;
    state.train_std = entry.training_profile.std;
  }
  for (size_t r = 0; r < num_rows; ++r) {
    const double* row = raw.row(r);
    for (size_t c = 0; c < raw.cols(); ++c) {
      state.inputs[c].Observe(row[c]);
    }
  }
}

void ModelMonitor::RecordScores(const std::string& model,
                                const std::string& version_label,
                                const storage::RecordBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  ScoreAccumulator& hist = models_[Key(model)].scores[version_label];
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::vector<storage::Value> row = batch.GetRow(r);
    for (const storage::Value& v : row) {
      if (v.is_null() || v.type() != storage::DataType::kDouble) continue;
      double score = v.double_value();
      if (std::isnan(score)) continue;
      ++hist.count;
      hist.sum += score;
      double clamped = std::clamp(score, 0.0, 1.0);
      size_t bucket = std::min(
          static_cast<size_t>(clamped * kScoreBuckets), kScoreBuckets - 1);
      ++hist.buckets[bucket];
    }
  }
}

double ModelMonitor::DriftScore(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(model));
  if (it == models_.end()) return 0.0;
  const ModelState& state = it->second;
  double drift = 0.0;
  size_t n = std::min(state.inputs.size(), state.train_mean.size());
  for (size_t c = 0; c < n; ++c) {
    const InputSketch& sketch = state.inputs[c];
    if (sketch.count == 0) continue;
    double std_dev = c < state.train_std.size() ? state.train_std[c] : 0.0;
    if (std_dev <= 1e-12) continue;  // constant input: no scale to judge by
    drift = std::max(drift,
                     std::abs(sketch.mean - state.train_mean[c]) / std_dev);
  }
  return drift;
}

std::vector<FeatureSketchSnapshot> ModelMonitor::FeatureSketches(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeatureSketchSnapshot> out;
  auto it = models_.find(Key(model));
  if (it == models_.end()) return out;
  const ModelState& state = it->second;
  out.reserve(state.inputs.size());
  for (size_t c = 0; c < state.inputs.size(); ++c) {
    const InputSketch& sketch = state.inputs[c];
    FeatureSketchSnapshot snap;
    snap.count = sketch.count;
    snap.min = sketch.min;
    snap.max = sketch.max;
    snap.mean = sketch.mean;
    snap.p50 = sketch.Quantile(0.50);
    snap.p95 = sketch.Quantile(0.95);
    if (c < state.train_mean.size()) {
      snap.train_mean = state.train_mean[c];
      snap.train_std =
          c < state.train_std.size() ? state.train_std[c] : 0.0;
      if (snap.train_std > 1e-12 && sketch.count > 0) {
        snap.drift = std::abs(sketch.mean - snap.train_mean) /
                     snap.train_std;
      }
    }
    out.push_back(snap);
  }
  return out;
}

ScoreHistogramSnapshot ModelMonitor::ScoreHistogram(
    const std::string& model, const std::string& version_label) const {
  std::lock_guard<std::mutex> lock(mu_);
  ScoreHistogramSnapshot snap;
  auto it = models_.find(Key(model));
  if (it == models_.end()) return snap;
  auto hit = it->second.scores.find(version_label);
  if (hit == it->second.scores.end()) return snap;
  snap.count = hit->second.count;
  snap.mean = hit->second.count > 0
                  ? hit->second.sum / static_cast<double>(hit->second.count)
                  : 0.0;
  snap.buckets = hit->second.buckets;
  return snap;
}

void ModelMonitor::Forget(const std::string& model) {
  std::lock_guard<std::mutex> lock(mu_);
  models_.erase(Key(model));
}

std::string ModelMonitor::StatusJson(const std::string& model) const {
  std::vector<FeatureSketchSnapshot> inputs = FeatureSketches(model);
  std::ostringstream out;
  out << "{\"inputs\":[";
  for (size_t c = 0; c < inputs.size(); ++c) {
    const FeatureSketchSnapshot& s = inputs[c];
    if (c > 0) out << ",";
    out << "{\"count\":" << s.count << ",\"min\":" << s.min
        << ",\"max\":" << s.max << ",\"mean\":" << s.mean
        << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95
        << ",\"train_mean\":" << s.train_mean
        << ",\"train_std\":" << s.train_std << ",\"drift\":" << s.drift
        << "}";
  }
  out << "],\"drift_score\":" << DriftScore(model) << ",\"scores\":{";
  bool first = true;
  for (const char* label : {"live", "candidate"}) {
    ScoreHistogramSnapshot hist = ScoreHistogram(model, label);
    if (!first) out << ",";
    first = false;
    out << "\"" << label << "\":{\"count\":" << hist.count
        << ",\"mean\":" << hist.mean << ",\"buckets\":[";
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      if (b > 0) out << ",";
      out << hist.buckets[b];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace flock::lifecycle
