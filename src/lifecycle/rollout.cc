#include "lifecycle/rollout.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/hash.h"
#include "common/string_util.h"

namespace flock::lifecycle {

namespace {

constexpr double kDivergenceEps = 1e-9;

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void UpdateMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* StageName(RolloutStage stage) {
  switch (stage) {
    case RolloutStage::kStaged: return "staged";
    case RolloutStage::kShadow: return "shadow";
    case RolloutStage::kCanary: return "canary";
    case RolloutStage::kLive: return "live";
    case RolloutStage::kRolledBack: return "rolled_back";
  }
  return "unknown";
}

std::string RewritePredictCalls(const std::string& sql,
                                const std::string& model,
                                const std::string& replacement) {
  const std::string model_lower = ToLower(model);
  std::string out;
  out.reserve(sql.size() + 16);
  const size_t n = sql.size();
  size_t i = 0;
  while (i < n) {
    char c = sql[i];
    if (c == '\'') {
      // Copy string literals verbatim so a PREDICT-like word inside one
      // is never mistaken for a call.
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      size_t end = std::min(j + 1, n);
      out.append(sql, i, end - i);
      i = end;
      continue;
    }
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') {
      out += c;
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && IsIdentChar(sql[j])) ++j;
    const std::string word = sql.substr(i, j - i);
    out += word;
    i = j;
    const std::string lower = ToLower(word);
    if (lower != "predict" && lower != "predict_gt" &&
        lower != "predict_ge" && lower != "predict_lt" &&
        lower != "predict_le") {
      continue;
    }
    // Look ahead for "( <model-name>" — bare identifier or quoted string.
    size_t k = i;
    while (k < n && std::isspace(static_cast<unsigned char>(sql[k]))) ++k;
    if (k >= n || sql[k] != '(') continue;
    ++k;
    while (k < n && std::isspace(static_cast<unsigned char>(sql[k]))) ++k;
    const size_t arg_start = k;
    size_t arg_end = k;
    std::string arg;
    if (k < n && sql[k] == '\'') {
      size_t e = k + 1;
      while (e < n && sql[e] != '\'') ++e;
      if (e >= n) continue;  // unterminated literal: leave untouched
      arg = sql.substr(k + 1, e - k - 1);
      arg_end = e + 1;
    } else {
      size_t e = k;
      while (e < n && IsIdentChar(sql[e])) ++e;
      if (e == k) continue;
      arg = sql.substr(k, e - k);
      arg_end = e;
    }
    if (ToLower(arg) != model_lower) continue;
    out.append(sql, i, arg_start - i);  // "(", surrounding whitespace
    out += replacement;
    i = arg_end;
  }
  return out;
}

RolloutManager::RolloutManager(flock::FlockEngine* engine)
    : engine_(engine) {}

RolloutManager::~RolloutManager() { engine_->SetFeatureObserver(nullptr); }

std::shared_ptr<RolloutManager::ActiveRollout> RolloutManager::FromSnapshot(
    const wal::RolloutSnapshot& snapshot) {
  auto rollout = std::make_shared<ActiveRollout>();
  rollout->model = snapshot.model;
  rollout->canary_permille = snapshot.canary_permille;
  rollout->guard.max_divergence_rate = snapshot.max_divergence_rate;
  rollout->guard.max_latency_regression = snapshot.max_latency_regression;
  rollout->guard.max_drift_score = snapshot.max_drift_score;
  rollout->guard.min_observations = snapshot.min_observations;
  rollout->initiated_by = snapshot.initiated_by;
  rollout->live_version = snapshot.live_version;
  rollout->candidate_pipeline_text = snapshot.candidate_pipeline_text;
  rollout->stage.store(snapshot.state, std::memory_order_relaxed);
  if (snapshot.state >= static_cast<uint8_t>(RolloutStage::kLive)) {
    rollout->finalizing.store(true, std::memory_order_relaxed);
  }
  return rollout;
}

wal::RolloutSnapshot RolloutManager::ToSnapshot(
    const ActiveRollout& rollout, uint8_t state) {
  wal::RolloutSnapshot snapshot;
  snapshot.model = rollout.model;
  snapshot.state = state;
  snapshot.canary_permille = rollout.canary_permille;
  snapshot.candidate_pipeline_text = rollout.candidate_pipeline_text;
  snapshot.initiated_by = rollout.initiated_by;
  snapshot.live_version = rollout.live_version;
  snapshot.max_divergence_rate = rollout.guard.max_divergence_rate;
  snapshot.max_latency_regression = rollout.guard.max_latency_regression;
  snapshot.max_drift_score = rollout.guard.max_drift_score;
  snapshot.min_observations = rollout.guard.min_observations;
  return snapshot;
}

Status RolloutManager::Resume() {
  engine_->SetFeatureObserver(&monitor_);
  std::lock_guard<std::mutex> lock(mu_);
  for (const wal::RolloutSnapshot& snapshot : engine_->RolloutStates()) {
    rollouts_[ToLower(snapshot.model)] = FromSnapshot(snapshot);
  }
  size_t active = 0;
  for (const auto& [key, rollout] : rollouts_) {
    uint8_t stage = rollout->stage.load(std::memory_order_relaxed);
    if (stage == static_cast<uint8_t>(RolloutStage::kShadow) ||
        stage == static_cast<uint8_t>(RolloutStage::kCanary)) {
      ++active;
    }
  }
  active_count_.store(active, std::memory_order_release);
  return Status::OK();
}

Status RolloutManager::Begin(const std::string& model,
                             const std::string& source_model,
                             const RolloutConfig& config,
                             const std::string& initiated_by) {
  FLOCK_ASSIGN_OR_RETURN(const flock::ModelEntry* source,
                         engine_->models()->Get(source_model));
  return BeginWithPipeline(model, source->pipeline, config, initiated_by);
}

Status RolloutManager::BeginWithPipeline(const std::string& model,
                                         ml::Pipeline candidate,
                                         const RolloutConfig& config,
                                         const std::string& initiated_by) {
  if (config.canary_permille > 1000) {
    return Status::InvalidArgument("canary fraction must be <= 1000 permille");
  }
  if (!engine_->models()->Contains(model)) {
    return Status::NotFound("cannot roll out against unknown model '" +
                            model + "'");
  }
  const std::string key = ToLower(model);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rollouts_.find(key);
    if (it != rollouts_.end() &&
        it->second->stage.load(std::memory_order_relaxed) <
            static_cast<uint8_t>(RolloutStage::kLive)) {
      return Status::AlreadyExists("model '" + model +
                                   "' already has an active rollout");
    }
  }
  wal::RolloutSnapshot snapshot;
  snapshot.model = model;
  snapshot.state = static_cast<uint8_t>(RolloutStage::kStaged);
  snapshot.canary_permille = config.canary_permille;
  snapshot.candidate_pipeline_text = candidate.Serialize();
  snapshot.initiated_by = initiated_by;
  snapshot.live_version = engine_->models()->CurrentVersion(model);
  snapshot.max_divergence_rate = config.guard.max_divergence_rate;
  snapshot.max_latency_regression = config.guard.max_latency_regression;
  snapshot.max_drift_score = config.guard.max_drift_score;
  snapshot.min_observations = config.guard.min_observations;
  FLOCK_RETURN_NOT_OK(engine_->UpdateRolloutState(snapshot));
  std::lock_guard<std::mutex> lock(mu_);
  rollouts_[key] = FromSnapshot(snapshot);
  return Status::OK();
}

std::shared_ptr<RolloutManager::ActiveRollout> RolloutManager::Find(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rollouts_.find(ToLower(model));
  return it == rollouts_.end() ? nullptr : it->second;
}

void RolloutManager::RecountActive() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const auto& [key, rollout] : rollouts_) {
    uint8_t stage = rollout->stage.load(std::memory_order_relaxed);
    if (stage == static_cast<uint8_t>(RolloutStage::kShadow) ||
        stage == static_cast<uint8_t>(RolloutStage::kCanary)) {
      ++active;
    }
  }
  active_count_.store(active, std::memory_order_release);
}

Status RolloutManager::Promote(const std::string& model) {
  std::shared_ptr<ActiveRollout> rollout = Find(model);
  if (rollout == nullptr) {
    return Status::NotFound("no rollout for model '" + model + "'");
  }
  const uint8_t stage = rollout->stage.load(std::memory_order_acquire);
  switch (static_cast<RolloutStage>(stage)) {
    case RolloutStage::kStaged:
    case RolloutStage::kShadow: {
      if (rollout->finalizing.load(std::memory_order_acquire)) {
        return Status::Aborted("rollout is rolling back");
      }
      const uint8_t next = stage + 1;
      FLOCK_RETURN_NOT_OK(
          engine_->UpdateRolloutState(ToSnapshot(*rollout, next)));
      rollout->stage.store(next, std::memory_order_release);
      RecountActive();
      return Status::OK();
    }
    case RolloutStage::kCanary: {
      if (rollout->finalizing.exchange(true, std::memory_order_acq_rel)) {
        return Status::Aborted("rollout is rolling back");
      }
      FLOCK_ASSIGN_OR_RETURN(
          ml::Pipeline pipeline,
          ml::Pipeline::Deserialize(rollout->candidate_pipeline_text));
      auto txn = engine_->BeginDeployment();
      txn.StageRegister(rollout->model, std::move(pipeline),
                        rollout->initiated_by, "rollout-promote");
      Status committed = txn.Commit();
      if (!committed.ok()) {
        rollout->finalizing.store(false, std::memory_order_release);
        return committed;
      }
      FLOCK_RETURN_NOT_OK(engine_->UpdateRolloutState(ToSnapshot(
          *rollout, static_cast<uint8_t>(RolloutStage::kLive))));
      rollout->stage.store(static_cast<uint8_t>(RolloutStage::kLive),
                           std::memory_order_release);
      promotions_.fetch_add(1, std::memory_order_relaxed);
      RecountActive();
      return Status::OK();
    }
    case RolloutStage::kLive:
    case RolloutStage::kRolledBack:
      return Status::Aborted(
          std::string("rollout already finished (") +
          StageName(static_cast<RolloutStage>(stage)) + ")");
  }
  return Status::Internal("corrupt rollout stage");
}

Status RolloutManager::Abort(const std::string& model) {
  std::shared_ptr<ActiveRollout> rollout = Find(model);
  if (rollout == nullptr) {
    return Status::NotFound("no rollout for model '" + model + "'");
  }
  if (rollout->stage.load(std::memory_order_acquire) >=
      static_cast<uint8_t>(RolloutStage::kLive)) {
    return Status::Aborted("rollout already finished");
  }
  if (rollout->finalizing.exchange(true, std::memory_order_acq_rel)) {
    return Status::Aborted("rollback already in progress");
  }
  // The live version never changed, so retiring the candidate
  // specialization (UpdateRolloutState with a terminal state) is the
  // whole cutover — atomic under the engine's exclusive lock.
  FLOCK_RETURN_NOT_OK(engine_->UpdateRolloutState(ToSnapshot(
      *rollout, static_cast<uint8_t>(RolloutStage::kRolledBack))));
  rollout->stage.store(static_cast<uint8_t>(RolloutStage::kRolledBack),
                       std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(rollout->breach_mu);
    rollout->guard_breach = "aborted by operator";
  }
  RecountActive();
  return Status::OK();
}

RolloutStatusView RolloutManager::BuildView(
    const ActiveRollout& rollout) const {
  RolloutStatusView view;
  view.model = rollout.model;
  view.stage = static_cast<RolloutStage>(
      rollout.stage.load(std::memory_order_acquire));
  view.canary_permille = rollout.canary_permille;
  view.initiated_by = rollout.initiated_by;
  view.live_version = rollout.live_version;
  view.shadow_scored = rollout.shadow_scored.load(std::memory_order_relaxed);
  view.canary_routed = rollout.canary_routed.load(std::memory_order_relaxed);
  view.canary_fallbacks =
      rollout.canary_fallbacks.load(std::memory_order_relaxed);
  view.compared_rows = rollout.compared_rows.load(std::memory_order_relaxed);
  view.diverged_rows = rollout.diverged_rows.load(std::memory_order_relaxed);
  view.candidate_errors =
      rollout.candidate_errors.load(std::memory_order_relaxed);
  view.max_divergence =
      rollout.max_divergence.load(std::memory_order_relaxed);
  view.live_p99_ms = rollout.live_latency.PercentileMs(0.99);
  view.candidate_p99_ms = rollout.candidate_latency.PercentileMs(0.99);
  view.drift_score = monitor_.DriftScore(rollout.model);
  {
    std::lock_guard<std::mutex> lock(rollout.breach_mu);
    view.guard_breach = rollout.guard_breach;
  }
  return view;
}

StatusOr<RolloutStatusView> RolloutManager::Describe(
    const std::string& model) const {
  std::shared_ptr<ActiveRollout> rollout = Find(model);
  if (rollout == nullptr) {
    return Status::NotFound("no rollout for model '" + model + "'");
  }
  return BuildView(*rollout);
}

std::vector<RolloutStatusView> RolloutManager::ListRollouts() const {
  std::vector<std::shared_ptr<ActiveRollout>> rollouts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rollouts.reserve(rollouts_.size());
    for (const auto& [key, rollout] : rollouts_) rollouts.push_back(rollout);
  }
  std::vector<RolloutStatusView> out;
  out.reserve(rollouts.size());
  for (const auto& rollout : rollouts) out.push_back(BuildView(*rollout));
  return out;
}

std::string RolloutManager::StatusJson() const {
  std::vector<RolloutStatusView> views = ListRollouts();
  std::ostringstream out;
  out << "{\"rollouts\":[";
  for (size_t i = 0; i < views.size(); ++i) {
    const RolloutStatusView& v = views[i];
    if (i > 0) out << ",";
    out << "{\"model\":\"" << v.model << "\",\"stage\":\""
        << StageName(v.stage) << "\",\"canary_permille\":"
        << v.canary_permille << ",\"initiated_by\":\"" << v.initiated_by
        << "\",\"live_version\":" << v.live_version
        << ",\"shadow_scored\":" << v.shadow_scored
        << ",\"canary_routed\":" << v.canary_routed
        << ",\"canary_fallbacks\":" << v.canary_fallbacks
        << ",\"compared_rows\":" << v.compared_rows
        << ",\"diverged_rows\":" << v.diverged_rows
        << ",\"candidate_errors\":" << v.candidate_errors
        << ",\"max_divergence\":" << v.max_divergence
        << ",\"live_p99_ms\":" << v.live_p99_ms
        << ",\"candidate_p99_ms\":" << v.candidate_p99_ms
        << ",\"drift_score\":" << v.drift_score << ",\"guard_breach\":\""
        << v.guard_breach << "\",\"monitor\":"
        << monitor_.StatusJson(v.model) << "}";
  }
  out << "]}";
  return out.str();
}

StatusOr<sql::QueryResult> RolloutManager::Intercept(
    const std::string& principal, const std::string& sql,
    const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
        execute) {
  if (active_count_.load(std::memory_order_acquire) == 0) {
    return execute(sql);
  }
  std::shared_ptr<ActiveRollout> rollout;
  std::string rewritten;
  uint8_t stage = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, candidate] : rollouts_) {
      const uint8_t s = candidate->stage.load(std::memory_order_acquire);
      if (s != static_cast<uint8_t>(RolloutStage::kShadow) &&
          s != static_cast<uint8_t>(RolloutStage::kCanary)) {
        continue;
      }
      std::string rw = RewritePredictCalls(
          sql, candidate->model,
          "'" + flock::RolloutCandidateKey(candidate->model) + "'");
      if (rw != sql) {
        rollout = candidate;
        rewritten = std::move(rw);
        stage = s;
        break;
      }
    }
  }
  if (rollout == nullptr) return execute(sql);  // not a scoring query
  if (stage == static_cast<uint8_t>(RolloutStage::kShadow)) {
    return ShadowExecute(rollout, sql, rewritten, execute);
  }
  return CanaryExecute(rollout, principal, sql, rewritten, execute);
}

std::function<StatusOr<sql::QueryResult>(
    const std::string&, const std::string&,
    const std::function<StatusOr<sql::QueryResult>(const std::string&)>&)>
RolloutManager::MakeInterceptor() {
  return [this](const std::string& principal, const std::string& sql,
                const std::function<StatusOr<sql::QueryResult>(
                    const std::string&)>& execute) {
    return Intercept(principal, sql, execute);
  };
}

StatusOr<sql::QueryResult> RolloutManager::ShadowExecute(
    const std::shared_ptr<ActiveRollout>& rollout, const std::string& sql,
    const std::string& rewritten,
    const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
        execute) {
  const double live_start = NowMicros();
  StatusOr<sql::QueryResult> live = execute(sql);
  if (!live.ok()) return live;  // live failures are not the rollout's doing
  rollout->live_latency.Record(NowMicros() - live_start);

  const double cand_start = NowMicros();
  StatusOr<sql::QueryResult> candidate = execute(rewritten);
  rollout->shadow_scored.fetch_add(1, std::memory_order_relaxed);
  if (!candidate.ok()) {
    rollout->candidate_errors.fetch_add(1, std::memory_order_relaxed);
  } else {
    rollout->candidate_latency.Record(NowMicros() - cand_start);
    CompareResults(live->batch, candidate->batch, rollout.get());
    monitor_.RecordScores(rollout->model, "live", live->batch);
    monitor_.RecordScores(rollout->model, "candidate", candidate->batch);
  }
  CheckGuards(rollout);
  return live;  // shadow mode never surfaces the candidate
}

StatusOr<sql::QueryResult> RolloutManager::CanaryExecute(
    const std::shared_ptr<ActiveRollout>& rollout,
    const std::string& principal, const std::string& sql,
    const std::string& rewritten,
    const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
        execute) {
  // Deterministic per-principal routing: the same session sees the same
  // variant for the rollout's whole lifetime.
  const bool to_candidate =
      HashString(principal) % 1000 < rollout->canary_permille;
  if (!to_candidate) {
    const double start = NowMicros();
    StatusOr<sql::QueryResult> live = execute(sql);
    if (live.ok()) {
      rollout->live_latency.Record(NowMicros() - start);
      monitor_.RecordScores(rollout->model, "live", live->batch);
    }
    CheckGuards(rollout);
    return live;
  }
  rollout->canary_routed.fetch_add(1, std::memory_order_relaxed);
  const double start = NowMicros();
  StatusOr<sql::QueryResult> candidate = execute(rewritten);
  if (!candidate.ok()) {
    // Candidate failure must never fail the request: fall back to live.
    rollout->canary_fallbacks.fetch_add(1, std::memory_order_relaxed);
    rollout->candidate_errors.fetch_add(1, std::memory_order_relaxed);
    CheckGuards(rollout);
    return execute(sql);
  }
  rollout->candidate_latency.Record(NowMicros() - start);
  monitor_.RecordScores(rollout->model, "candidate", candidate->batch);
  CheckGuards(rollout);
  return candidate;
}

void RolloutManager::CompareResults(const storage::RecordBatch& live,
                                    const storage::RecordBatch& candidate,
                                    ActiveRollout* rollout) {
  const size_t rows = live.num_rows();
  if (candidate.num_rows() != rows ||
      candidate.num_columns() != live.num_columns()) {
    // Shape mismatch: every row counts as diverged.
    rollout->compared_rows.fetch_add(rows, std::memory_order_relaxed);
    rollout->diverged_rows.fetch_add(rows, std::memory_order_relaxed);
    UpdateMax(rollout->max_divergence, 1.0);
    return;
  }
  uint64_t diverged = 0;
  double worst = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<storage::Value> lrow = live.GetRow(r);
    std::vector<storage::Value> crow = candidate.GetRow(r);
    bool row_diverged = false;
    for (size_t c = 0; c < lrow.size(); ++c) {
      const storage::Value& lv = lrow[c];
      const storage::Value& cv = crow[c];
      if (lv.is_null() != cv.is_null()) {
        row_diverged = true;
        continue;
      }
      if (lv.is_null()) continue;
      if (lv.type() == storage::DataType::kDouble &&
          cv.type() == storage::DataType::kDouble) {
        const double diff = std::abs(lv.double_value() - cv.double_value());
        if (diff > kDivergenceEps) {
          row_diverged = true;
          worst = std::max(worst, diff);
        }
      } else if (lv.ToString() != cv.ToString()) {
        row_diverged = true;
      }
    }
    if (row_diverged) ++diverged;
  }
  rollout->compared_rows.fetch_add(rows, std::memory_order_relaxed);
  if (diverged > 0) {
    rollout->diverged_rows.fetch_add(diverged, std::memory_order_relaxed);
  }
  if (worst > 0.0) UpdateMax(rollout->max_divergence, worst);
}

void RolloutManager::CheckGuards(
    const std::shared_ptr<ActiveRollout>& rollout) {
  if (rollout->finalizing.load(std::memory_order_acquire)) return;
  const GuardConfig& guard = rollout->guard;
  const uint64_t compared =
      rollout->compared_rows.load(std::memory_order_relaxed);
  const uint64_t errors =
      rollout->candidate_errors.load(std::memory_order_relaxed);
  const uint64_t routed =
      rollout->canary_routed.load(std::memory_order_relaxed);
  if (compared + routed + errors < guard.min_observations) return;

  std::string breach;
  const uint64_t denominator = compared + errors;
  if (guard.max_divergence_rate > 0.0 && denominator > 0) {
    const uint64_t diverged =
        rollout->diverged_rows.load(std::memory_order_relaxed) + errors;
    const double rate =
        static_cast<double>(diverged) / static_cast<double>(denominator);
    if (rate > guard.max_divergence_rate) {
      breach = "divergence rate " + FormatDouble(rate) + " exceeds " +
               FormatDouble(guard.max_divergence_rate);
    }
  }
  if (breach.empty() && guard.max_latency_regression > 0.0 &&
      rollout->live_latency.count() >= guard.min_observations &&
      rollout->candidate_latency.count() >= guard.min_observations) {
    const double live_p99 = rollout->live_latency.PercentileMs(0.99);
    const double cand_p99 = rollout->candidate_latency.PercentileMs(0.99);
    if (live_p99 > 0.0 && cand_p99 / live_p99 > guard.max_latency_regression) {
      breach = "candidate p99 " + FormatDouble(cand_p99) + "ms is " +
               FormatDouble(cand_p99 / live_p99) + "x live p99 " +
               FormatDouble(live_p99) + "ms (limit " +
               FormatDouble(guard.max_latency_regression) + "x)";
    }
  }
  if (breach.empty() && guard.max_drift_score > 0.0) {
    const double drift = monitor_.DriftScore(rollout->model);
    if (drift > guard.max_drift_score) {
      breach = "feature drift " + FormatDouble(drift) +
               " std-devs exceeds " + FormatDouble(guard.max_drift_score);
    }
  }
  if (breach.empty()) return;
  if (rollout->finalizing.exchange(true, std::memory_order_acq_rel)) {
    return;  // another thread's breach won the race
  }
  guard_breaches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(rollout->breach_mu);
    rollout->guard_breach = breach;
  }
  Status rolled = RollBack(rollout, breach);
  if (!rolled.ok()) {
    std::lock_guard<std::mutex> lock(rollout->breach_mu);
    rollout->guard_breach += "; rollback failed: " + rolled.message();
  }
}

Status RolloutManager::RollBack(
    const std::shared_ptr<ActiveRollout>& rollout,
    const std::string& reason) {
  // Re-register the pinned live version through DeployTransaction:
  // Register's specialization prefix-erase retires the candidate in the
  // same critical section, so concurrent scorers see either the old
  // candidate or the restored model — never a gap.
  StatusOr<const flock::ModelEntry*> live =
      engine_->models()->GetVersion(rollout->model, rollout->live_version);
  if (!live.ok()) live = engine_->models()->Get(rollout->model);
  FLOCK_RETURN_NOT_OK(live.status());
  auto txn = engine_->BeginDeployment();
  txn.StageRegister(rollout->model, (*live)->pipeline, "lifecycle",
                    "auto-rollback: " + reason);
  FLOCK_RETURN_NOT_OK(txn.Commit());
  rollout->stage.store(static_cast<uint8_t>(RolloutStage::kRolledBack),
                       std::memory_order_release);
  auto_rollbacks_.fetch_add(1, std::memory_order_relaxed);
  RecountActive();
  return engine_->UpdateRolloutState(ToSnapshot(
      *rollout, static_cast<uint8_t>(RolloutStage::kRolledBack)));
}

uint64_t RolloutManager::Sum(
    const std::function<uint64_t(const ActiveRollout&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, rollout] : rollouts_) total += fn(*rollout);
  return total;
}

void RolloutManager::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterGauge("lifecycle.active_rollouts", [this] {
    return static_cast<uint64_t>(
        active_count_.load(std::memory_order_acquire));
  });
  registry->RegisterCounter("lifecycle.shadow_scored", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.shadow_scored.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.canary_routed", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.canary_routed.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.canary_fallbacks", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.canary_fallbacks.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.compared_rows", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.compared_rows.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.diverged_rows", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.diverged_rows.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.candidate_errors", [this] {
    return Sum([](const ActiveRollout& r) {
      return r.candidate_errors.load(std::memory_order_relaxed);
    });
  });
  registry->RegisterCounter("lifecycle.guard_breaches", [this] {
    return guard_breaches_.load(std::memory_order_relaxed);
  });
  registry->RegisterCounter("lifecycle.auto_rollbacks", [this] {
    return auto_rollbacks_.load(std::memory_order_relaxed);
  });
  registry->RegisterCounter("lifecycle.promotions", [this] {
    return promotions_.load(std::memory_order_relaxed);
  });
  registry->RegisterGaugeF("lifecycle.max_drift", [this] {
    std::vector<std::string> models;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [key, rollout] : rollouts_) {
        models.push_back(rollout->model);
      }
    }
    double worst = 0.0;
    for (const std::string& model : models) {
      worst = std::max(worst, monitor_.DriftScore(model));
    }
    return worst;
  });
  // Worst-case view across rollouts: counts are summed, percentiles take
  // the slowest rollout (per-rollout detail lives in .rollout status).
  auto merged = [this](bool candidate) {
    obs::HistogramSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, rollout] : rollouts_) {
      const serve::LatencyHistogram& h =
          candidate ? rollout->candidate_latency : rollout->live_latency;
      snap.count += h.count();
      snap.mean_ms = std::max(snap.mean_ms, h.mean_ms());
      snap.p50_ms = std::max(snap.p50_ms, h.PercentileMs(0.50));
      snap.p95_ms = std::max(snap.p95_ms, h.PercentileMs(0.95));
      snap.p99_ms = std::max(snap.p99_ms, h.PercentileMs(0.99));
    }
    return snap;
  };
  registry->RegisterHistogram("lifecycle.live_latency_ms",
                              [merged] { return merged(false); });
  registry->RegisterHistogram("lifecycle.candidate_latency_ms",
                              [merged] { return merged(true); });
}

}  // namespace flock::lifecycle
