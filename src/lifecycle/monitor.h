#ifndef FLOCK_LIFECYCLE_MONITOR_H_
#define FLOCK_LIFECYCLE_MONITOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "flock/predict_functions.h"
#include "ml/matrix.h"
#include "storage/record_batch.h"

namespace flock::lifecycle {

/// Point-in-time view of one input's online distribution sketch next to
/// its training-time statistics.
struct FeatureSketchSnapshot {
  uint64_t count = 0;  // non-NaN observations
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double train_mean = 0.0;
  double train_std = 0.0;
  /// |mean - train_mean| / train_std; 0 when no profile is available.
  double drift = 0.0;
};

/// Point-in-time view of one model version's score histogram.
struct ScoreHistogramSnapshot {
  static constexpr size_t kBuckets = 20;
  uint64_t count = 0;
  double mean = 0.0;
  /// Fixed-width buckets over [0, 1] (scores are clamped into range).
  std::array<uint64_t, kBuckets> buckets{};
};

/// Online model-health monitor: per-input feature-distribution sketches
/// (min/max/mean/quantiles, fed by the engine's FeatureObserver hook and
/// compared against the training profile stored in ModelEntry) plus
/// per-version score histograms (fed by the serving interceptor).
///
/// All methods are thread-safe; observation takes one short mutex per
/// model (PREDICT batches amortize it), never an engine lock.
class ModelMonitor : public flock::FeatureObserver {
 public:
  static constexpr size_t kScoreBuckets = ScoreHistogramSnapshot::kBuckets;
  static constexpr size_t kSampleCapacity = 256;

  ModelMonitor() = default;
  ModelMonitor(const ModelMonitor&) = delete;
  ModelMonitor& operator=(const ModelMonitor&) = delete;

  /// flock::FeatureObserver: folds one assembled raw feature batch into
  /// the owning model's sketches. Specializations (candidate variants)
  /// fold into their base model — drift is a property of the *traffic*,
  /// not of which variant scored it.
  void ObserveFeatures(const flock::ModelEntry& entry,
                       const ml::Matrix& raw, size_t num_rows) override;

  /// Folds every non-null DOUBLE cell of a result batch into the
  /// (model, version_label) score histogram. The serving interceptor
  /// calls this with label "live" or "candidate".
  void RecordScores(const std::string& model,
                    const std::string& version_label,
                    const storage::RecordBatch& batch);

  /// Max over inputs of |online mean - training mean| / training std.
  /// 0 when the model was never observed or has no training profile.
  double DriftScore(const std::string& model) const;

  std::vector<FeatureSketchSnapshot> FeatureSketches(
      const std::string& model) const;
  ScoreHistogramSnapshot ScoreHistogram(
      const std::string& model, const std::string& version_label) const;

  /// Drops all state for `model` (called when its rollout ends).
  void Forget(const std::string& model);

  /// {"inputs": [...], "scores": {"live": {...}, ...}} for one model.
  std::string StatusJson(const std::string& model) const;

 private:
  /// One input's online sketch: exact count/min/max/mean plus a bounded
  /// deterministic sample for quantiles (stride sampling: when the buffer
  /// fills, every second element is kept and the stride doubles, so the
  /// sample stays uniform over the whole stream with no RNG).
  struct InputSketch {
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    uint64_t stride = 1;
    uint64_t since_last_sample = 0;
    std::vector<double> sample;

    void Observe(double v);
    double Quantile(double p) const;
  };

  struct ScoreAccumulator {
    uint64_t count = 0;
    double sum = 0.0;
    std::array<uint64_t, kScoreBuckets> buckets{};
  };

  struct ModelState {
    std::vector<InputSketch> inputs;
    std::vector<double> train_mean;
    std::vector<double> train_std;
    std::map<std::string, ScoreAccumulator> scores;  // by version label
  };

  static std::string Key(const std::string& model);

  mutable std::mutex mu_;
  std::map<std::string, ModelState> models_;
};

}  // namespace flock::lifecycle

#endif  // FLOCK_LIFECYCLE_MONITOR_H_
