#ifndef FLOCK_POLICY_MONITOR_H_
#define FLOCK_POLICY_MONITOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace flock::policy {

struct MonitorOptions {
  /// Histogram bins over [min_score, max_score].
  size_t num_bins = 10;
  double min_score = 0.0;
  double max_score = 1.0;
  /// Observations per window; the first completed window becomes the
  /// baseline.
  size_t window_size = 1000;
  /// PSI above this flags drift (0.1 = moderate, 0.25 = major, by the
  /// usual credit-scoring convention).
  double psi_threshold = 0.25;
};

/// Prediction-distribution monitor — the "model monitoring" capability of
/// the paper's landscape (Figure 3) and the feedback loop its §4.1 policy
/// module "continuously monitors the output of the ML models" with.
///
/// Scores stream in; fixed-size windows are summarized as histograms; the
/// Population Stability Index of the latest completed window against the
/// baseline window quantifies drift. When the underlying data shifts, the
/// paper prescribes invalidating/retraining (see prov::FindImpactedModels
/// for the lineage side); this class supplies the trigger.
class ModelMonitor {
 public:
  explicit ModelMonitor(MonitorOptions options = {});

  /// Records one model score.
  void Observe(double score);

  size_t observations() const { return observations_; }
  size_t completed_windows() const { return windows_.size(); }
  bool has_baseline() const { return !windows_.empty(); }

  /// PSI of the latest completed window vs the baseline (0 when fewer
  /// than two windows have completed).
  double LatestPsi() const;

  /// PSI of an arbitrary completed window (0-based) vs the baseline.
  double WindowPsi(size_t window) const;

  /// True when the latest completed window drifted past the threshold.
  bool DriftDetected() const;

  /// Declares the latest completed window the new baseline (call after
  /// retraining/redeploying the model).
  void Rebaseline();

  /// Mean score of a completed window (diagnostics).
  double WindowMean(size_t window) const;

  /// One-line status, e.g. "windows=4 psi=0.31 DRIFT".
  std::string Summary() const;

 private:
  struct Window {
    std::vector<size_t> histogram;
    double sum = 0.0;
    size_t count = 0;
  };

  double Psi(const Window& baseline, const Window& window) const;

  MonitorOptions options_;
  size_t observations_ = 0;
  size_t baseline_index_ = 0;
  Window current_;
  std::vector<Window> windows_;
};

}  // namespace flock::policy

#endif  // FLOCK_POLICY_MONITOR_H_
