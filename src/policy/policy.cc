#include "policy/policy.h"

#include "sql/parser.h"

namespace flock::policy {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAllow:
      return "ALLOW";
    case ActionKind::kOverride:
      return "OVERRIDE";
    case ActionKind::kClamp:
      return "CLAMP";
    case ActionKind::kReject:
      return "REJECT";
    case ActionKind::kAlert:
      return "ALERT";
  }
  return "?";
}

StatusOr<Policy> Policy::Create(std::string name, ActionKind action,
                                const std::string& condition_sql) {
  FLOCK_ASSIGN_OR_RETURN(sql::ExprPtr condition,
                         sql::Parser::ParseExpression(condition_sql));
  if (sql::ContainsAggregate(*condition)) {
    return Status::InvalidArgument(
        "policy conditions must be row-level (no aggregates)");
  }
  Policy policy;
  policy.name_ = std::move(name);
  policy.action_ = action;
  policy.condition_ = std::move(condition);
  return policy;
}

}  // namespace flock::policy
