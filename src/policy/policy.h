#ifndef FLOCK_POLICY_POLICY_H_
#define FLOCK_POLICY_POLICY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "sql/ast.h"
#include "storage/record_batch.h"

namespace flock::policy {

/// What a matched policy does to the model's prediction.
enum class ActionKind {
  kAllow,     // pass the prediction through (but log the match)
  kOverride,  // replace the prediction with a fixed value
  kClamp,     // clamp the prediction into [clamp_min, clamp_max]
  kReject,    // block the action entirely (the decision is vetoed)
  kAlert,     // pass through, but flag for human review
};

const char* ActionKindName(ActionKind kind);

/// A business rule layered on top of model output (paper §4.1, "Bridging
/// the model-application divide"): *"business rules expressed as policies
/// then override the model"*.
///
/// The condition is a SQL boolean expression over the field `prediction`
/// plus any context columns of the row being decided, e.g.
/// `prediction > 0.9 AND requested_amount > 500000`.
class Policy {
 public:
  /// Parses and validates the condition. Conditions are bound lazily
  /// against the context schema at evaluation time.
  static StatusOr<Policy> Create(std::string name, ActionKind action,
                                 const std::string& condition_sql);

  const std::string& name() const { return name_; }
  ActionKind action() const { return action_; }
  const sql::Expr& condition() const { return *condition_; }
  std::string condition_text() const { return condition_->ToString(); }

  // Action parameters.
  Policy& set_override_value(double v) {
    override_value_ = v;
    return *this;
  }
  Policy& set_clamp(double lo, double hi) {
    clamp_min_ = lo;
    clamp_max_ = hi;
    return *this;
  }
  Policy& set_reason(std::string reason) {
    reason_ = std::move(reason);
    return *this;
  }

  double override_value() const { return override_value_; }
  double clamp_min() const { return clamp_min_; }
  double clamp_max() const { return clamp_max_; }
  const std::string& reason() const { return reason_; }

 private:
  Policy() = default;

  std::string name_;
  ActionKind action_ = ActionKind::kAllow;
  sql::ExprPtr condition_;
  double override_value_ = 0.0;
  double clamp_min_ = 0.0;
  double clamp_max_ = 1.0;
  std::string reason_;
};

/// Outcome of policy evaluation for one row.
struct Decision {
  double model_prediction = 0.0;
  double final_value = 0.0;
  bool rejected = false;
  bool alerted = false;
  bool overridden = false;
  std::string policy;  // empty = no policy matched
  std::string reason;
};

}  // namespace flock::policy

#endif  // FLOCK_POLICY_POLICY_H_
