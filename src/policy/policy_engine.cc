#include "policy/policy_engine.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "sql/evaluator.h"

namespace flock::policy {

using storage::ColumnDef;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

PolicyEngine::PolicyEngine() {
  sql::FunctionRegistry::RegisterBuiltins(&functions_);
}

Status PolicyEngine::AddPolicy(Policy policy) {
  for (const Policy& existing : policies_) {
    if (EqualsIgnoreCase(existing.name(), policy.name())) {
      return Status::AlreadyExists("policy already exists: " +
                                   policy.name());
    }
  }
  policies_.push_back(std::move(policy));
  return Status::OK();
}

namespace {

/// Binds bare column refs in a cloned condition against `schema`.
Status BindCondition(sql::Expr* e, const Schema& schema) {
  Status bad = Status::OK();
  sql::VisitExprMutable(e, [&](sql::Expr* node) {
    if (node->kind == sql::ExprKind::kColumnRef &&
        node->column_index < 0) {
      auto idx = schema.FindColumn(node->column_name);
      if (!idx.has_value()) {
        bad = Status::NotFound("policy condition references unknown field: " +
                               node->column_name);
        return;
      }
      node->column_index = static_cast<int>(*idx);
      node->resolved_type = schema.column(*idx).type;
    }
  });
  return bad;
}

std::string RenderContext(const Schema& schema,
                          const std::vector<Value>& row) {
  std::ostringstream out;
  for (size_t i = 0; i < row.size() && i < schema.num_columns(); ++i) {
    if (i > 0) out << ", ";
    out << schema.column(i).name << "=" << row[i].ToString();
  }
  return out.str();
}

}  // namespace

StatusOr<Decision> PolicyEngine::Decide(
    double prediction, const Schema& context_schema,
    const std::vector<Value>& context_row) {
  RecordBatch batch(context_schema);
  FLOCK_RETURN_NOT_OK(batch.AppendRow(context_row));
  std::vector<double> predictions = {prediction};
  FLOCK_ASSIGN_OR_RETURN(std::vector<Decision> decisions,
                         DecideBatch(predictions, batch));
  return decisions[0];
}

StatusOr<std::vector<Decision>> PolicyEngine::DecideBatch(
    const std::vector<double>& predictions, const RecordBatch& batch) {
  if (predictions.size() != batch.num_rows()) {
    return Status::InvalidArgument(
        "predictions and context batch differ in row count");
  }
  // Evaluation schema: prediction first, context after.
  Schema schema;
  schema.AddColumn(ColumnDef{"prediction", DataType::kDouble, false});
  for (const auto& col : batch.schema().columns()) schema.AddColumn(col);

  RecordBatch eval(schema);
  auto pred_col =
      std::make_shared<storage::ColumnVector>(DataType::kDouble);
  pred_col->Reserve(predictions.size());
  for (double p : predictions) pred_col->AppendDouble(p);
  eval.SetColumn(0, std::move(pred_col));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    eval.SetColumn(c + 1, batch.column(c));
  }

  const size_t n = predictions.size();
  std::vector<Decision> decisions(n);
  std::vector<bool> decided(n, false);
  for (size_t i = 0; i < n; ++i) {
    decisions[i].model_prediction = predictions[i];
    decisions[i].final_value = predictions[i];
  }

  for (const Policy& policy : policies_) {
    sql::ExprPtr condition = policy.condition().Clone();
    FLOCK_RETURN_NOT_OK(BindCondition(condition.get(), schema));
    FLOCK_ASSIGN_OR_RETURN(
        ColumnVectorPtr mask,
        sql::EvaluateExpr(*condition, eval, &functions_));
    for (size_t i = 0; i < n; ++i) {
      if (decided[i]) continue;
      if (mask->IsNull(i) || mask->AsDouble(i) == 0.0) continue;
      Decision& d = decisions[i];
      d.policy = policy.name();
      d.reason = policy.reason();
      switch (policy.action()) {
        case ActionKind::kAllow:
          break;
        case ActionKind::kOverride:
          d.final_value = policy.override_value();
          d.overridden = true;
          break;
        case ActionKind::kClamp: {
          double clamped = std::min(std::max(d.model_prediction,
                                             policy.clamp_min()),
                                    policy.clamp_max());
          d.overridden = clamped != d.model_prediction;
          d.final_value = clamped;
          break;
        }
        case ActionKind::kReject:
          d.rejected = true;
          break;
        case ActionKind::kAlert:
          d.alerted = true;
          break;
      }
      decided[i] = true;
      decisions_made_.fetch_add(1, std::memory_order_relaxed);
      if (d.rejected) {
        rejections_.fetch_add(1, std::memory_order_relaxed);
      }
      TimelineEntry entry;
      entry.seq = next_seq_++;
      entry.policy = policy.name();
      entry.action = policy.action();
      entry.before = d.model_prediction;
      entry.after = d.final_value;
      entry.rejected = d.rejected;
      entry.context = RenderContext(batch.schema(), batch.GetRow(i));
      timeline_.push_back(std::move(entry));
      if (timeline_listener_ != nullptr) {
        timeline_listener_->OnTimelineEntry(timeline_.back());
      }
    }
  }
  return decisions;
}

void PolicyEngine::RestoreTimeline(std::vector<TimelineEntry> timeline,
                                   uint64_t next_seq) {
  timeline_ = std::move(timeline);
  next_seq_ = next_seq;
}

void PolicyEngine::ReplayTimelineEntry(TimelineEntry entry) {
  if (entry.seq >= next_seq_) next_seq_ = entry.seq + 1;
  timeline_.push_back(std::move(entry));
}

Status PolicyEngine::ApplyTransactionally(
    const std::vector<Decision>& decisions, ActionSink* sink) {
  std::vector<const Decision*> applied;
  for (const Decision& decision : decisions) {
    if (decision.rejected) continue;  // vetoed: never reaches the sink
    Status st = sink->Apply(decision);
    if (!st.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        sink->Rollback(**it);
      }
      return Status::Aborted("policy action batch rolled back: " +
                             st.ToString());
    }
    applied.push_back(&decision);
  }
  return Status::OK();
}

}  // namespace flock::policy
