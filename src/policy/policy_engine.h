#ifndef FLOCK_POLICY_POLICY_ENGINE_H_
#define FLOCK_POLICY_POLICY_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/policy.h"
#include "sql/function_registry.h"

namespace flock::policy {

/// One entry in the engine's decision timeline — the paper's "maintains
/// the system state and actions taken over time allowing to easily debug
/// and explain the system's actions".
struct TimelineEntry {
  uint64_t seq = 0;
  std::string policy;
  ActionKind action = ActionKind::kAllow;
  double before = 0.0;
  double after = 0.0;
  bool rejected = false;
  std::string context;  // rendered context row
};

/// Observes timeline entries as they are committed. The durability
/// subsystem installs one to mirror the decision timeline into the
/// write-ahead log; callbacks fire on the deciding thread, after the
/// entry is appended.
class TimelineListener {
 public:
  virtual ~TimelineListener() = default;
  virtual void OnTimelineEntry(const TimelineEntry& entry) = 0;
};

/// Receives committed decisions; used for transactional application. Apply
/// may fail (e.g. downstream system unavailable); Rollback undoes an
/// already-applied decision.
class ActionSink {
 public:
  virtual ~ActionSink() = default;
  virtual Status Apply(const Decision& decision) = 0;
  virtual void Rollback(const Decision& decision) = 0;
};

/// Evaluates an ordered policy list over model predictions (first matching
/// policy wins), maintains the decision timeline, and can apply decision
/// batches transactionally with rollback — the generic, extensible module
/// of paper §4.1 (modeled after Dhalion's self-regulation loop).
class PolicyEngine {
 public:
  PolicyEngine();

  Status AddPolicy(Policy policy);
  size_t num_policies() const { return policies_.size(); }
  const std::vector<Policy>& policies() const { return policies_; }

  /// Decides one prediction given its context row. `context` must carry a
  /// schema; the engine prepends a `prediction` column before evaluating
  /// conditions.
  StatusOr<Decision> Decide(double prediction,
                            const storage::Schema& context_schema,
                            const std::vector<storage::Value>& context_row);

  /// Vectorized form: `predictions` paired with context rows in `batch`.
  StatusOr<std::vector<Decision>> DecideBatch(
      const std::vector<double>& predictions,
      const storage::RecordBatch& batch);

  /// Applies `decisions` through `sink` atomically: on the first failure,
  /// every already-applied decision is rolled back (reverse order) and
  /// Aborted is returned. Rejected decisions are skipped (vetoed actions
  /// must not reach the sink).
  Status ApplyTransactionally(const std::vector<Decision>& decisions,
                              ActionSink* sink);

  const std::vector<TimelineEntry>& timeline() const { return timeline_; }
  void ClearTimeline() { timeline_.clear(); }
  uint64_t next_seq() const { return next_seq_; }

  /// Cumulative counters over DecideBatch, atomic so the metrics
  /// registry can read them while decisions are being made (the timeline
  /// itself is only safe to read quiescently).
  uint64_t decisions_made() const {
    return decisions_made_.load(std::memory_order_relaxed);
  }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// Installs a timeline listener (nullptr to clear). Set during
  /// single-threaded setup, e.g. after recovery completes.
  void set_timeline_listener(TimelineListener* listener) {
    timeline_listener_ = listener;
  }

  /// Wholesale timeline replacement from a checkpoint snapshot.
  void RestoreTimeline(std::vector<TimelineEntry> timeline,
                       uint64_t next_seq);

  /// WAL replay: re-appends a logged entry, advancing next_seq past it.
  void ReplayTimelineEntry(TimelineEntry entry);

 private:
  std::vector<Policy> policies_;
  sql::FunctionRegistry functions_;
  std::vector<TimelineEntry> timeline_;
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> decisions_made_{0};
  std::atomic<uint64_t> rejections_{0};
  TimelineListener* timeline_listener_ = nullptr;  // not owned
};

}  // namespace flock::policy

#endif  // FLOCK_POLICY_POLICY_ENGINE_H_
