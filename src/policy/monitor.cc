#include "policy/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace flock::policy {

ModelMonitor::ModelMonitor(MonitorOptions options)
    : options_(options) {
  if (options_.num_bins == 0) options_.num_bins = 1;
  if (options_.window_size == 0) options_.window_size = 1;
  current_.histogram.assign(options_.num_bins, 0);
}

void ModelMonitor::Observe(double score) {
  ++observations_;
  double span = options_.max_score - options_.min_score;
  double normalized =
      span > 0 ? (score - options_.min_score) / span : 0.0;
  normalized = std::clamp(normalized, 0.0, 1.0);
  size_t bin = std::min(
      options_.num_bins - 1,
      static_cast<size_t>(normalized *
                          static_cast<double>(options_.num_bins)));
  ++current_.histogram[bin];
  current_.sum += score;
  ++current_.count;
  if (current_.count >= options_.window_size) {
    windows_.push_back(std::move(current_));
    current_ = Window{};
    current_.histogram.assign(options_.num_bins, 0);
  }
}

double ModelMonitor::Psi(const Window& baseline,
                         const Window& window) const {
  if (baseline.count == 0 || window.count == 0) return 0.0;
  double psi = 0.0;
  const double epsilon = 1e-4;  // smoothing for empty bins
  for (size_t b = 0; b < options_.num_bins; ++b) {
    double p = std::max(
        epsilon, static_cast<double>(baseline.histogram[b]) /
                     static_cast<double>(baseline.count));
    double q = std::max(
        epsilon, static_cast<double>(window.histogram[b]) /
                     static_cast<double>(window.count));
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

double ModelMonitor::LatestPsi() const {
  if (windows_.size() < 2 || baseline_index_ >= windows_.size()) {
    return 0.0;
  }
  return Psi(windows_[baseline_index_], windows_.back());
}

double ModelMonitor::WindowPsi(size_t window) const {
  if (window >= windows_.size() || baseline_index_ >= windows_.size()) {
    return 0.0;
  }
  return Psi(windows_[baseline_index_], windows_[window]);
}

bool ModelMonitor::DriftDetected() const {
  return LatestPsi() > options_.psi_threshold;
}

void ModelMonitor::Rebaseline() {
  if (!windows_.empty()) baseline_index_ = windows_.size() - 1;
}

double ModelMonitor::WindowMean(size_t window) const {
  if (window >= windows_.size() || windows_[window].count == 0) {
    return 0.0;
  }
  return windows_[window].sum /
         static_cast<double>(windows_[window].count);
}

std::string ModelMonitor::Summary() const {
  std::ostringstream out;
  out << "windows=" << windows_.size() << " psi=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", LatestPsi());
  out << buf;
  if (DriftDetected()) out << " DRIFT";
  return out.str();
}

}  // namespace flock::policy
