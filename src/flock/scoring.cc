#include "flock/scoring.h"

#include <cmath>
#include <limits>

#include "ml/runtime.h"

namespace flock::flock {

using storage::ColumnVectorPtr;
using storage::DataType;

StatusOr<ml::Matrix> AssembleFeatures(
    const ModelEntry& entry, const std::vector<ColumnVectorPtr>& args,
    size_t num_rows) {
  const size_t width = entry.graph.input_cols();
  if (args.size() != width) {
    return Status::InvalidArgument(
        "model " + entry.name + " expects " + std::to_string(width) +
        " feature arguments, got " + std::to_string(args.size()));
  }
  ml::Matrix raw(num_rows, width);
  for (size_t c = 0; c < width; ++c) {
    size_t pipeline_input =
        entry.input_mapping.empty() ? c : entry.input_mapping[c];
    const ml::FeatureSpec& spec =
        entry.pipeline.inputs()[pipeline_input];
    const storage::ColumnVector& col = *args[c];
    if (spec.kind == ml::FeatureKind::kCategorical) {
      if (col.type() == DataType::kString) {
        for (size_t r = 0; r < num_rows; ++r) {
          raw.at(r, c) =
              col.IsNull(r)
                  ? std::nan("")
                  : entry.pipeline.EncodeCategorical(pipeline_input,
                                                     col.string_at(r));
        }
      } else {
        // Already index-encoded.
        for (size_t r = 0; r < num_rows; ++r) {
          raw.at(r, c) =
              col.IsNull(r) ? std::nan("") : col.AsDouble(r);
        }
      }
    } else {
      if (col.type() == DataType::kString) {
        return Status::InvalidArgument(
            "numeric feature '" + spec.name + "' of model " + entry.name +
            " received a string column");
      }
      for (size_t r = 0; r < num_rows; ++r) {
        raw.at(r, c) = col.IsNull(r) ? std::nan("") : col.AsDouble(r);
      }
    }
  }
  return raw;
}

Status CheckScoringArity(const ModelEntry& entry, const ml::Matrix& raw) {
  if (raw.cols() != entry.graph.input_cols()) {
    return Status::InvalidArgument(
        "model " + entry.name + " expects " +
        std::to_string(entry.graph.input_cols()) +
        " feature columns, got " + std::to_string(raw.cols()) +
        " (extra features are never dropped, missing ones never skipped)");
  }
  return Status::OK();
}

StatusOr<std::vector<double>> ScoreBatch(const ModelEntry& entry,
                                         const ml::Matrix& raw) {
  FLOCK_RETURN_NOT_OK(CheckScoringArity(entry, raw));
  if (entry.kernel != nullptr && entry.kernel->ok()) {
    // The compiled dense-slot kernel: slot resolution happened once at
    // deploy time; scratch buffers are reused across every call on this
    // thread (the executor scores one morsel at a time per thread, and
    // the kernel itself is immutable and shared).
    thread_local ml::DenseKernelScratch scratch;
    std::vector<double> scores;
    FLOCK_RETURN_NOT_OK(entry.kernel->ScoreBatch(raw, &scratch, &scores));
    return scores;
  }
  ml::GraphRuntime runtime(&entry.graph);
  return runtime.RunToScores(raw);
}

StatusOr<std::vector<bool>> ScoreThresholdBatch(const ModelEntry& entry,
                                                const ml::Matrix& raw,
                                                double threshold,
                                                ThresholdOp op) {
  FLOCK_RETURN_NOT_OK(CheckScoringArity(entry, raw));
  const size_t n = raw.rows();
  // Fold a trailing Sigmoid into the threshold: sigmoid is monotone, so
  // sigmoid(z) OP t  <=>  z OP logit(t) for t in (0, 1).
  double raw_threshold = threshold;
  if (entry.ends_with_sigmoid) {
    // sigmoid(z) lies strictly inside (0, 1): thresholds at or beyond the
    // ends resolve statically.
    if (threshold <= 0.0) {
      bool verdict = op == ThresholdOp::kGt || op == ThresholdOp::kGe;
      return std::vector<bool>(n, verdict);
    }
    if (threshold >= 1.0) {
      bool verdict = op == ThresholdOp::kLt || op == ThresholdOp::kLe;
      return std::vector<bool>(n, verdict);
    }
    raw_threshold = std::log(threshold / (1.0 - threshold));
  }

  auto compare = [op](double score, double thr) {
    switch (op) {
      case ThresholdOp::kGt:
        return score > thr;
      case ThresholdOp::kGe:
        return score >= thr;
      case ThresholdOp::kLt:
        return score < thr;
      case ThresholdOp::kLe:
        return score <= thr;
    }
    return false;
  };

  // Short-circuit path: boosted tree ensembles (sum semantics) with bounds.
  const ml::GraphNode* tree_node = nullptr;
  if (entry.tree_node_id >= 0) {
    const ml::GraphNode& node =
        entry.graph.nodes()[static_cast<size_t>(entry.tree_node_id)];
    if (!node.tree_average && !node.trees.empty()) tree_node = &node;
  }
  if (tree_node != nullptr) {
    ml::GraphRuntime runtime(&entry.graph);
    FLOCK_ASSIGN_OR_RETURN(
        ml::Matrix features,
        runtime.RunToNode(raw, tree_node->inputs[0]));
    const auto& trees = tree_node->trees;
    const auto& smin = entry.bounds.suffix_min;
    const auto& smax = entry.bounds.suffix_max;
    std::vector<bool> out(n, false);
    for (size_t r = 0; r < n; ++r) {
      const double* row = features.row(r);
      double acc = tree_node->tree_base;
      bool decided = false;
      for (size_t t = 0; t < trees.size(); ++t) {
        acc += trees[t].Predict(row);
        // Bounds of the final score given remaining trees.
        double lo = acc + smin[t + 1];
        double hi = acc + smax[t + 1];
        // If even the extremes agree with one verdict, stop traversing.
        if (compare(lo, raw_threshold) == compare(hi, raw_threshold) &&
            lo <= hi) {
          out[r] = compare(lo, raw_threshold);
          decided = true;
          break;
        }
      }
      if (!decided) out[r] = compare(acc, raw_threshold);
    }
    return out;
  }

  // Fallback: full scoring, compare at the (possibly raw) output.
  ml::GraphRuntime runtime(&entry.graph);
  if (entry.ends_with_sigmoid) {
    // Score up to the sigmoid's input.
    const ml::GraphNode& sig =
        entry.graph.nodes()[static_cast<size_t>(entry.graph.output_id())];
    FLOCK_ASSIGN_OR_RETURN(ml::Matrix z,
                           runtime.RunToNode(raw, sig.inputs[0]));
    std::vector<bool> out(n);
    for (size_t r = 0; r < n; ++r) {
      out[r] = compare(z.at(r, 0), raw_threshold);
    }
    return out;
  }
  FLOCK_ASSIGN_OR_RETURN(std::vector<double> scores,
                         runtime.RunToScores(raw));
  std::vector<bool> out(n);
  for (size_t r = 0; r < n; ++r) {
    out[r] = compare(scores[r], raw_threshold);
  }
  return out;
}

}  // namespace flock::flock
