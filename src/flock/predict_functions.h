#ifndef FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
#define FLOCK_FLOCK_PREDICT_FUNCTIONS_H_

#include <memory>
#include <string>

#include "flock/model_registry.h"
#include "sql/function_registry.h"

namespace flock::flock {

/// Runtime-selection knobs (paper §4.1: "physical operator selection based
/// on statistics [and] available runtime").
struct RuntimeSelectionOptions {
  /// Batches smaller than this score through the interpreted per-row path
  /// (no kernel setup cost); larger batches use the vectorized graph.
  size_t small_batch_threshold = 0;  // 0 = always vectorized
};

/// Shared mutable scoring context (current principal, runtime options).
struct ScoringContext {
  std::string principal = "system";
  RuntimeSelectionOptions runtime;
};

/// Registers the in-DBMS inference intrinsics into `functions`:
///   PREDICT(model, f1, ..., fn)            -> DOUBLE score
///   PREDICT_GT/GE/LT/LE(model, t, f1, ...) -> BOOL  (threshold push-up)
///
/// Model names containing '#' resolve to optimizer specializations
/// (pruned/compressed variants); plain names go through access control.
void RegisterPredictFunctions(sql::FunctionRegistry* functions,
                              ModelRegistry* models,
                              std::shared_ptr<ScoringContext> context);

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
