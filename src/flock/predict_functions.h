#ifndef FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
#define FLOCK_FLOCK_PREDICT_FUNCTIONS_H_

#include <atomic>
#include <memory>
#include <string>

#include "flock/model_registry.h"
#include "ml/matrix.h"
#include "sql/function_registry.h"

namespace flock::flock {

/// Runtime-selection knobs (paper §4.1: "physical operator selection based
/// on statistics [and] available runtime").
struct RuntimeSelectionOptions {
  /// Batches smaller than this score through the interpreted per-row path
  /// (no kernel setup cost); larger batches use the vectorized graph.
  size_t small_batch_threshold = 0;  // 0 = always vectorized
};

/// Observes the assembled raw feature matrix of every PREDICT call, before
/// scoring. The lifecycle drift monitor implements this to maintain online
/// feature-distribution sketches. Implementations must be thread-safe
/// (kernels run concurrently under the engine's shared lock) and must not
/// call back into the engine.
class FeatureObserver {
 public:
  virtual ~FeatureObserver() = default;
  /// `raw` holds pre-transform features (categoricals index-encoded,
  /// NULLs as NaN), one column per pipeline input; `entry` carries the
  /// model identity and its training profile.
  virtual void ObserveFeatures(const ModelEntry& entry,
                               const ml::Matrix& raw, size_t num_rows) = 0;
};

/// Shared mutable scoring context (current principal, runtime options,
/// optional feature observer). The observer pointer is atomic so the
/// lifecycle layer can attach/detach it without the exclusive lock; the
/// observer must outlive the engine once installed.
struct ScoringContext {
  std::string principal = "system";
  RuntimeSelectionOptions runtime;
  std::atomic<FeatureObserver*> observer{nullptr};
};

/// Registers the in-DBMS inference intrinsics into `functions`:
///   PREDICT(model, f1, ..., fn)            -> DOUBLE score
///   PREDICT_GT/GE/LT/LE(model, t, f1, ...) -> BOOL  (threshold push-up)
///
/// Model names containing '#' resolve to optimizer specializations
/// (pruned/compressed variants); plain names go through access control.
void RegisterPredictFunctions(sql::FunctionRegistry* functions,
                              ModelRegistry* models,
                              std::shared_ptr<ScoringContext> context);

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
