#ifndef FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
#define FLOCK_FLOCK_PREDICT_FUNCTIONS_H_

#include <atomic>
#include <memory>
#include <string>

#include "flock/model_registry.h"
#include "ml/matrix.h"
#include "sql/function_registry.h"

namespace flock::flock {

/// Runtime-selection knobs (paper §4.1: "physical operator selection based
/// on statistics [and] available runtime").
struct RuntimeSelectionOptions {
  /// Batches smaller than this score through the interpreted per-row path
  /// (no kernel setup cost); larger batches use the vectorized graph.
  size_t small_batch_threshold = 0;  // 0 = always vectorized
};

/// Observes the assembled raw feature matrix of every PREDICT call, before
/// scoring. The lifecycle drift monitor implements this to maintain online
/// feature-distribution sketches. Implementations must be thread-safe
/// (kernels run concurrently under the engine's shared lock) and must not
/// call back into the engine.
class FeatureObserver {
 public:
  virtual ~FeatureObserver() = default;
  /// `raw` holds pre-transform features (categoricals index-encoded,
  /// NULLs as NaN), one column per pipeline input; `entry` carries the
  /// model identity and its training profile.
  virtual void ObserveFeatures(const ModelEntry& entry,
                               const ml::Matrix& raw, size_t num_rows) = 0;
};

/// Cross-request micro-batching hook for single-row PREDICT calls. The
/// serving layer implements this (serve::MicroBatcher); when installed,
/// the PREDICT kernel routes num_rows == 1 scoring through it so
/// concurrent point lookups coalesce into shared dense-kernel
/// invocations. Implementations must be thread-safe, may block for a
/// *bounded* wait while a batch forms, and must not call back into the
/// engine (they score through flock::ScoreBatch directly).
class ScoreCoalescer {
 public:
  virtual ~ScoreCoalescer() = default;
  /// Scores one row laid out as the entry's raw input columns
  /// (categoricals index-encoded, NULLs as NaN). `width` always equals
  /// entry.graph.input_cols() — AssembleFeatures enforced arity upstream.
  virtual StatusOr<double> ScoreOne(const ModelEntry& entry,
                                    const double* row, size_t width) = 0;
};

/// Shared mutable scoring context (current principal, runtime options,
/// optional feature observer, optional micro-batching coalescer). The
/// hook pointers are atomic so the lifecycle/serving layers can
/// attach/detach them without the exclusive lock; installed hooks must
/// outlive the engine (or be detached first).
struct ScoringContext {
  std::string principal = "system";
  RuntimeSelectionOptions runtime;
  std::atomic<FeatureObserver*> observer{nullptr};
  std::atomic<ScoreCoalescer*> coalescer{nullptr};
};

/// Registers the in-DBMS inference intrinsics into `functions`:
///   PREDICT(model, f1, ..., fn)            -> DOUBLE score
///   PREDICT_GT/GE/LT/LE(model, t, f1, ...) -> BOOL  (threshold push-up)
///
/// Model names containing '#' resolve to optimizer specializations
/// (pruned/compressed variants); plain names go through access control.
void RegisterPredictFunctions(sql::FunctionRegistry* functions,
                              ModelRegistry* models,
                              std::shared_ptr<ScoringContext> context);

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_PREDICT_FUNCTIONS_H_
