#include "flock/predict_functions.h"

#include "flock/scoring.h"
#include "ml/matrix.h"

namespace flock::flock {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;

namespace {

/// Resolves the model-name argument (a constant string column).
StatusOr<const ModelEntry*> ResolveModel(
    const ModelRegistry* models, const ScoringContext& context,
    const ColumnVectorPtr& name_col, size_t num_rows) {
  if (name_col->size() == 0) {
    return Status::InvalidArgument("PREDICT: empty model name column");
  }
  if (name_col->type() != DataType::kString || name_col->IsNull(0)) {
    return Status::InvalidArgument(
        "PREDICT: first argument must be a model name");
  }
  const std::string& name = name_col->string_at(0);
  if (name.find('#') != std::string::npos) {
    FLOCK_ASSIGN_OR_RETURN(const ModelEntry* entry,
                           models->GetSpecialization(name));
    // Specializations inherit the base model's access policy and audit
    // trail — the optimizer must not become a permission bypass.
    if (!entry->base_name.empty()) {
      FLOCK_RETURN_NOT_OK(models->CheckAccess(
          entry->base_name, context.principal, num_rows));
    }
    return entry;
  }
  return models->GetForScoring(name, context.principal, num_rows);
}

}  // namespace

void RegisterPredictFunctions(sql::FunctionRegistry* functions,
                              ModelRegistry* models,
                              std::shared_ptr<ScoringContext> context) {
  // PREDICT(model, features...) -> DOUBLE
  {
    sql::ScalarFunction fn;
    fn.return_type = DataType::kDouble;
    fn.min_args = 1;
    fn.scoring = true;  // lowered to a PredictScore physical operator
    fn.kernel = [models, context](
                    const std::vector<ColumnVectorPtr>& args,
                    size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kDouble);
      if (num_rows == 0) return out;
      FLOCK_ASSIGN_OR_RETURN(
          const ModelEntry* entry,
          ResolveModel(models, *context, args[0], num_rows));
      std::vector<ColumnVectorPtr> features(args.begin() + 1, args.end());
      FLOCK_ASSIGN_OR_RETURN(
          ml::Matrix raw, AssembleFeatures(*entry, features, num_rows));
      if (FeatureObserver* obs =
              context->observer.load(std::memory_order_acquire)) {
        obs->ObserveFeatures(*entry, raw, num_rows);
      }
      out->Reserve(num_rows);
      if (num_rows == 1) {
        // Serving-layer micro-batching: a single-row PREDICT (point
        // lookup) offers itself to the coalescer, which merges
        // concurrent requests into one shared kernel invocation.
        if (ScoreCoalescer* coalescer =
                context->coalescer.load(std::memory_order_acquire)) {
          FLOCK_ASSIGN_OR_RETURN(
              double score,
              coalescer->ScoreOne(*entry, raw.row(0), raw.cols()));
          out->AppendDouble(score);
          return out;
        }
      }
      size_t small = context->runtime.small_batch_threshold;
      if (small > 0 && num_rows < small && entry->input_mapping.empty()) {
        // Runtime selection: interpreted per-row path for tiny batches.
        for (size_t r = 0; r < num_rows; ++r) {
          out->AppendDouble(entry->pipeline.ScoreRow(raw.row(r)));
        }
        return out;
      }
      FLOCK_ASSIGN_OR_RETURN(std::vector<double> scores,
                             ScoreBatch(*entry, raw));
      for (double s : scores) out->AppendDouble(s);
      return out;
    };
    functions->Register("PREDICT", fn);
  }

  // PREDICT_GT/GE/LT/LE(model, threshold, features...) -> BOOL
  auto register_threshold = [&](const std::string& name, ThresholdOp op) {
    sql::ScalarFunction fn;
    fn.return_type = DataType::kBool;
    fn.min_args = 2;
    fn.scoring = true;  // threshold push-up target, also a PredictScore op
    fn.kernel = [models, context, op](
                    const std::vector<ColumnVectorPtr>& args,
                    size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kBool);
      if (num_rows == 0) return out;
      FLOCK_ASSIGN_OR_RETURN(
          const ModelEntry* entry,
          ResolveModel(models, *context, args[0], num_rows));
      if (args[1]->size() == 0 || args[1]->IsNull(0)) {
        return Status::InvalidArgument(
            "PREDICT threshold must be a non-null constant");
      }
      double threshold = args[1]->AsDouble(0);
      std::vector<ColumnVectorPtr> features(args.begin() + 2, args.end());
      FLOCK_ASSIGN_OR_RETURN(
          ml::Matrix raw, AssembleFeatures(*entry, features, num_rows));
      if (FeatureObserver* obs =
              context->observer.load(std::memory_order_acquire)) {
        obs->ObserveFeatures(*entry, raw, num_rows);
      }
      FLOCK_ASSIGN_OR_RETURN(
          std::vector<bool> verdicts,
          ScoreThresholdBatch(*entry, raw, threshold, op));
      out->Reserve(num_rows);
      for (bool v : verdicts) out->AppendBool(v);
      return out;
    };
    functions->Register(name, fn);
  };
  register_threshold("PREDICT_GT", ThresholdOp::kGt);
  register_threshold("PREDICT_GE", ThresholdOp::kGe);
  register_threshold("PREDICT_LT", ThresholdOp::kLt);
  register_threshold("PREDICT_LE", ThresholdOp::kLe);
}

}  // namespace flock::flock
