#ifndef FLOCK_FLOCK_FLOCK_ENGINE_H_
#define FLOCK_FLOCK_FLOCK_ENGINE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "flock/cross_optimizer.h"
#include "flock/deployment.h"
#include "flock/model_registry.h"
#include "flock/predict_functions.h"
#include "sql/engine.h"
#include "storage/database.h"
#include "wal/durability.h"

namespace flock::flock {

/// Configuration for Open(): how the engine persists to its data
/// directory, and which optional components recover/log alongside it.
struct FlockDurabilityConfig {
  wal::FsyncPolicy fsync_policy = wal::FsyncPolicy::kEveryRecord;
  int group_commit_interval_ms = 2;
  /// Provenance catalog to recover into and log from (optional; must
  /// outlive the engine).
  prov::Catalog* catalog = nullptr;
  /// Policy engine whose decision timeline should be durable (optional;
  /// must outlive the engine).
  policy::PolicyEngine* policy = nullptr;
};

/// Registry key under which a rollout's candidate pipeline is installed
/// as a (non-user-visible) specialization of `model`. The serving layer
/// rewrites PREDICT calls to this key for shadow/canary traffic; access
/// control still runs against the base model.
std::string RolloutCandidateKey(const std::string& model);

struct FlockEngineOptions {
  sql::EngineOptions sql;
  CrossOptimizer::Options cross;
  RuntimeSelectionOptions runtime;
  /// Master switch for the SQLxML cross-optimizer. Off = "SONNX" config
  /// (in-DB inference, relational optimizations only); on = "SONNX-ext".
  bool enable_cross_optimizer = true;
};

/// The Flock engine: a SQL engine with models as first-class objects and
/// in-DBMS inference (paper §2 & §4.1).
///
/// Composition: storage::Database (tables) + sql::SqlEngine (parse / plan /
/// optimize / execute) + ModelRegistry (deployed pipelines, versioned and
/// access-controlled) + CrossOptimizer (hybrid SQLxML rewrites installed as
/// the engine's plan-rewriter hook) + PREDICT kernels in the function
/// registry. SQL gains:
///
///   CREATE MODEL churn FROM '<serialized pipeline>';
///   SELECT id, PREDICT(churn, age, plan, spend) FROM users
///   WHERE region = 'US' AND PREDICT(churn, age, plan, spend) > 0.8;
///   DROP MODEL churn;
///
/// ## Locking contract (concurrent Execute)
///
/// Execute is safe to call from any number of threads. A single
/// reader/writer lock (`engine_mu_`) arbitrates:
///
///  * **Shared (many concurrent holders):** SELECT / EXPLAIN statements
///    that do not touch the catalog views. Scoring, plan-cache lookups,
///    the cross-optimizer and the model registry are all individually
///    thread-safe under the shared lock, and each execution lowers its
///    own physical plan, so queries never share mutable operator state.
///  * **Exclusive (single holder, no readers):** everything that mutates
///    shared engine state — DDL (CREATE/DROP TABLE, CREATE/DROP MODEL),
///    DML writes (INSERT/UPDATE/DELETE; storage tables are not safe for
///    concurrent mutation), catalog-view refresh (queries naming
///    `flock_models` / `flock_audit` rebuild those tables first),
///    ExecuteScript, DeployModel / DeployTransaction::Commit,
///    SetPrincipal, and ExecuteAs (which swaps the scoring principal for
///    the duration of the statement).
///
/// Model entries returned by the registry are only freed by DROP/redeploy,
/// which require the exclusive lock — so a scoring query holding the
/// shared lock can never observe a dangling ModelEntry. The SQL plan
/// cache is invalidated under the exclusive lock by every DDL statement,
/// model (re)deploy, and catalog refresh; stale plans (dropped tables,
/// superseded model specializations) are therefore unreachable.
///
/// The non-Execute accessors (database(), sql(), models(), ...) are for
/// single-threaded setup/inspection and do not take the lock.
class FlockEngine {
 public:
  explicit FlockEngine(FlockEngineOptions options = {});

  FlockEngine(const FlockEngine&) = delete;
  FlockEngine& operator=(const FlockEngine&) = delete;

  /// Makes the engine durable against `data_dir`: recovers any existing
  /// snapshot + WAL into the engine (tables, models, audit log, and the
  /// configured catalog/policy components), then logs every subsequent
  /// committed mutation. Call once, before serving traffic; takes the
  /// exclusive lock. Derived state (plan cache, catalog views) is
  /// rebuilt, not recovered.
  Status Open(const std::string& data_dir,
              FlockDurabilityConfig config = {});

  /// Puts the engine in read-only replica mode: no local durability, and
  /// every statement that is not a plain SELECT/EXPLAIN fails with
  /// Status::Redirect (the client must retarget the primary). State
  /// arrives exclusively through InstallReplicaSnapshot (bootstrap) and
  /// ApplyReplicated (streamed WAL records) — the same replay path crash
  /// recovery uses, so a replica is bit-for-bit a recovered primary.
  Status OpenAsReplica(FlockDurabilityConfig config = {});

  bool replica() const { return replica_; }

  /// Replica bootstrap / re-bootstrap: wipes all engine state (tables,
  /// models, audit, provenance, policy timeline) and installs the
  /// snapshot image. Takes the exclusive lock.
  Status InstallReplicaSnapshot(const wal::SnapshotData& snapshot);

  /// Applies one streamed WAL record under the exclusive lock, through
  /// the shared recovery replay path. DDL and model records invalidate
  /// the plan cache, exactly as their primary-side counterparts do.
  Status ApplyReplicated(const wal::WalRecord& record);

  /// Failover: turns this replica into a full primary durable against
  /// `data_dir` (a fresh directory), with the WAL epoch seeded at
  /// `initial_epoch`. Seeding above the old primary's epoch *fences* it:
  /// any coordinator or replica comparing epochs sees the promoted node
  /// as strictly newer. An immediate checkpoint persists the streamed
  /// state before the first post-promotion write is acknowledged.
  Status PromoteToPrimary(const std::string& data_dir,
                          FlockDurabilityConfig config,
                          uint64_t initial_epoch);

  /// Snapshots all durable state and truncates the WAL. Takes the
  /// exclusive lock; cheap no-op error if the engine is not durable.
  Status Checkpoint();

  bool durable() const { return durability_ != nullptr; }
  wal::DurabilityManager* durability() { return durability_.get(); }

  /// Executes one SQL statement (including CREATE/DROP MODEL). Queries
  /// touching the model catalog views (`flock_models`, `flock_audit`)
  /// see a snapshot refreshed at statement start — models are data, so
  /// they are queryable like any other table:
  ///
  ///   SELECT name, version, created_by FROM flock_models;
  ///   SELECT principal, COUNT(*) FROM flock_audit GROUP BY principal;
  ///
  /// `exec_opts` carries per-call flags (tracing) down to the SQL layer.
  StatusOr<sql::QueryResult> Execute(const std::string& sql,
                                     const sql::ExecOptions& exec_opts = {});

  /// Executes one statement with `principal` attached for access control
  /// and audit, without disturbing the engine-wide principal. Always
  /// takes the exclusive lock (the scoring context is shared), so
  /// per-principal traffic serializes; the serving layer routes
  /// default-principal queries through Execute's shared path instead.
  StatusOr<sql::QueryResult> ExecuteAs(
      const std::string& sql, const std::string& principal,
      const sql::ExecOptions& exec_opts = {});

  /// Rebuilds the `flock_models` / `flock_audit` catalog tables from the
  /// registry (Execute calls this lazily; exposed for tests). Takes the
  /// exclusive lock.
  Status RefreshCatalogTables();

  /// Executes a ';'-separated script, returning the last result. Takes
  /// the exclusive lock (scripts may contain DDL/DML).
  StatusOr<sql::QueryResult> ExecuteScript(const std::string& sql);

  /// Registers a trained pipeline under `name` (API-level deployment).
  Status DeployModel(const std::string& name, ml::Pipeline pipeline,
                     const std::string& created_by = "system",
                     const std::string& lineage = "");

  /// Begins an atomic multi-model deployment. Commit takes the engine's
  /// exclusive lock and invalidates the plan cache on success.
  DeployTransaction BeginDeployment();

  /// Commits one rollout state transition: stores the full rollout under
  /// its model name, installs the candidate pipeline as a scoreable
  /// specialization (active states) or retires it (terminal states),
  /// clears the plan cache, and WAL-logs the transition so it survives
  /// crashes and replicates. Takes the exclusive lock. The lifecycle
  /// layer's RolloutManager is the only intended caller; replicas reject
  /// with Redirect (their state arrives via ApplyReplicated).
  Status UpdateRolloutState(const wal::RolloutSnapshot& rollout);

  /// All stored rollouts, active and terminal. Takes the shared lock.
  std::vector<wal::RolloutSnapshot> RolloutStates() const;

  /// Attaches (or, with nullptr, detaches) the feature observer invoked
  /// by every PREDICT kernel with the assembled raw feature matrix. The
  /// observer must outlive the engine once installed; the pointer swap is
  /// atomic, so no lock is taken.
  void SetFeatureObserver(FeatureObserver* observer);

  /// Attaches (or, with nullptr, detaches) the cross-request score
  /// coalescer that single-row PREDICT kernels offer themselves to
  /// (serving-layer micro-batching). Same lifetime/atomicity contract as
  /// SetFeatureObserver; detach before destroying the coalescer.
  void SetScoreCoalescer(ScoreCoalescer* coalescer);

  /// Sets the principal attached to subsequent scoring calls (access
  /// control + audit).
  void SetPrincipal(const std::string& principal);
  const std::string& principal() const { return context_->principal; }

  storage::Database* database() { return &db_; }
  sql::SqlEngine* sql() { return &sql_engine_; }
  ModelRegistry* models() { return &models_; }
  CrossOptimizer* cross_optimizer() { return &cross_optimizer_; }

  void set_enable_cross_optimizer(bool on) {
    enable_cross_optimizer_ = on;
  }
  bool enable_cross_optimizer() const { return enable_cross_optimizer_; }

 private:
  /// True when `sql` is a plain SELECT/EXPLAIN — the only statements a
  /// read-only replica serves locally.
  static bool IsReadStatement(const std::string& sql);

  /// True when `sql` must run under the exclusive lock: anything that is
  /// not a plain SELECT/EXPLAIN, plus catalog-view queries (their lazy
  /// refresh drops and recreates tables).
  static bool RequiresExclusive(const std::string& sql);

  /// Builds the adapter recovery and replication use to reach the model
  /// registry (snapshot/restore/replay hooks).
  wal::EngineStateAdapter BuildStateAdapter();

  /// Open's body; caller holds the exclusive lock.
  Status OpenLocked(const std::string& data_dir,
                    const FlockDurabilityConfig& config,
                    uint64_t initial_epoch);

  /// Replay target for streamed records (replica mode).
  wal::WalReplayTarget ReplicaTarget() const;

  /// Body of Execute; caller holds the appropriate lock.
  StatusOr<sql::QueryResult> ExecuteLocked(
      const std::string& sql, const sql::ExecOptions& exec_opts);
  Status RefreshCatalogTablesLocked();

  /// Shared body of UpdateRolloutState, WAL replay, and snapshot restore:
  /// stores the rollout and (de)installs the candidate specialization.
  /// Caller holds the exclusive lock; does not WAL-log.
  Status ApplyRolloutLocked(const wal::RolloutSnapshot& rollout);

  /// Commit-point check for exclusive statements: a statement whose WAL
  /// append failed must not be acknowledged, even though the in-memory
  /// mutation happened (the log is wedged; health() is sticky).
  StatusOr<sql::QueryResult> GuardDurable(
      StatusOr<sql::QueryResult> result);

  storage::Database db_;
  ModelRegistry models_;
  sql::SqlEngine sql_engine_;
  CrossOptimizer cross_optimizer_;
  std::shared_ptr<ScoringContext> context_;
  /// Durable rollout store, keyed by lower-cased model name; mutated only
  /// under the exclusive lock (UpdateRolloutState / replay / restore).
  std::map<std::string, wal::RolloutSnapshot> rollouts_;
  std::unique_ptr<wal::DurabilityManager> durability_;
  bool enable_cross_optimizer_ = true;
  /// Replica mode: read-only serving, state applied via replication.
  bool replica_ = false;
  prov::Catalog* replica_catalog_ = nullptr;
  policy::PolicyEngine* replica_policy_ = nullptr;
  wal::EngineStateAdapter replica_adapter_;
  /// Shared: concurrent queries. Exclusive: DDL/DML/catalog refresh/
  /// principal changes. See the class-level locking contract.
  mutable std::shared_mutex engine_mu_;
};

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_FLOCK_ENGINE_H_
