#ifndef FLOCK_FLOCK_FLOCK_ENGINE_H_
#define FLOCK_FLOCK_FLOCK_ENGINE_H_

#include <memory>
#include <string>

#include "flock/cross_optimizer.h"
#include "flock/deployment.h"
#include "flock/model_registry.h"
#include "flock/predict_functions.h"
#include "sql/engine.h"
#include "storage/database.h"

namespace flock::flock {

struct FlockEngineOptions {
  sql::EngineOptions sql;
  CrossOptimizer::Options cross;
  RuntimeSelectionOptions runtime;
  /// Master switch for the SQLxML cross-optimizer. Off = "SONNX" config
  /// (in-DB inference, relational optimizations only); on = "SONNX-ext".
  bool enable_cross_optimizer = true;
};

/// The Flock engine: a SQL engine with models as first-class objects and
/// in-DBMS inference (paper §2 & §4.1).
///
/// Composition: storage::Database (tables) + sql::SqlEngine (parse / plan /
/// optimize / execute) + ModelRegistry (deployed pipelines, versioned and
/// access-controlled) + CrossOptimizer (hybrid SQLxML rewrites installed as
/// the engine's plan-rewriter hook) + PREDICT kernels in the function
/// registry. SQL gains:
///
///   CREATE MODEL churn FROM '<serialized pipeline>';
///   SELECT id, PREDICT(churn, age, plan, spend) FROM users
///   WHERE region = 'US' AND PREDICT(churn, age, plan, spend) > 0.8;
///   DROP MODEL churn;
class FlockEngine {
 public:
  explicit FlockEngine(FlockEngineOptions options = {});

  FlockEngine(const FlockEngine&) = delete;
  FlockEngine& operator=(const FlockEngine&) = delete;

  /// Executes one SQL statement (including CREATE/DROP MODEL). Queries
  /// touching the model catalog views (`flock_models`, `flock_audit`)
  /// see a snapshot refreshed at statement start — models are data, so
  /// they are queryable like any other table:
  ///
  ///   SELECT name, version, created_by FROM flock_models;
  ///   SELECT principal, COUNT(*) FROM flock_audit GROUP BY principal;
  StatusOr<sql::QueryResult> Execute(const std::string& sql);

  /// Rebuilds the `flock_models` / `flock_audit` catalog tables from the
  /// registry (Execute calls this lazily; exposed for tests).
  Status RefreshCatalogTables();

  /// Executes a ';'-separated script, returning the last result.
  StatusOr<sql::QueryResult> ExecuteScript(const std::string& sql);

  /// Registers a trained pipeline under `name` (API-level deployment).
  Status DeployModel(const std::string& name, ml::Pipeline pipeline,
                     const std::string& created_by = "system",
                     const std::string& lineage = "");

  /// Begins an atomic multi-model deployment.
  DeployTransaction BeginDeployment() {
    return DeployTransaction(&models_);
  }

  /// Sets the principal attached to subsequent scoring calls (access
  /// control + audit).
  void SetPrincipal(const std::string& principal);
  const std::string& principal() const { return context_->principal; }

  storage::Database* database() { return &db_; }
  sql::SqlEngine* sql() { return &sql_engine_; }
  ModelRegistry* models() { return &models_; }
  CrossOptimizer* cross_optimizer() { return &cross_optimizer_; }

  void set_enable_cross_optimizer(bool on) {
    enable_cross_optimizer_ = on;
  }
  bool enable_cross_optimizer() const { return enable_cross_optimizer_; }

 private:
  storage::Database db_;
  ModelRegistry models_;
  sql::SqlEngine sql_engine_;
  CrossOptimizer cross_optimizer_;
  std::shared_ptr<ScoringContext> context_;
  bool enable_cross_optimizer_ = true;
};

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_FLOCK_ENGINE_H_
