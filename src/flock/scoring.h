#ifndef FLOCK_FLOCK_SCORING_H_
#define FLOCK_FLOCK_SCORING_H_

#include <vector>

#include "common/status_or.h"
#include "flock/model_registry.h"
#include "ml/matrix.h"
#include "storage/column_vector.h"

namespace flock::flock {

/// Comparison direction for threshold-pushed predicates.
enum class ThresholdOp { kGt, kGe, kLt, kLe };

/// Builds the raw feature matrix for `entry` from SQL argument columns
/// (one column per graph input, in graph-input order). NULLs become NaN
/// (handled by the pipeline's imputer); string columns are encoded through
/// the pipeline's categorical vocabularies.
StatusOr<ml::Matrix> AssembleFeatures(
    const ModelEntry& entry,
    const std::vector<storage::ColumnVectorPtr>& args, size_t num_rows);

/// Rejects feature matrices whose width does not match the entry's input
/// arity (nothing is silently dropped or skipped).
Status CheckScoringArity(const ModelEntry& entry, const ml::Matrix& raw);

/// Scores a raw feature matrix through the entry's compiled dense-slot
/// kernel (built once at deploy time; scratch reused per thread), falling
/// back to the per-call GraphRuntime for graph shapes the kernel does not
/// compile. Mismatched arity is an InvalidArgument, never a truncation.
StatusOr<std::vector<double>> ScoreBatch(const ModelEntry& entry,
                                         const ml::Matrix& raw);

/// Evaluates `score OP threshold` without materializing full scores when
/// possible. For boosted tree ensembles this short-circuits tree traversal
/// using precomputed suffix bounds, and a trailing Sigmoid is folded into
/// the threshold (logit transform) — the paper's "predicate push-up between
/// SQL queries and ML models" (§4.1).
StatusOr<std::vector<bool>> ScoreThresholdBatch(const ModelEntry& entry,
                                                const ml::Matrix& raw,
                                                double threshold,
                                                ThresholdOp op);

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_SCORING_H_
