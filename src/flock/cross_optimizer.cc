#include "flock/cross_optimizer.h"

#include <cstdio>
#include <limits>
#include <map>
#include <functional>

#include "common/hash.h"
#include "ml/runtime.h"
#include "sql/optimizer.h"

namespace flock::flock {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::LogicalPlan;
using sql::PlanKind;
using sql::PlanPtr;
using storage::Value;

namespace {

bool IsPredictName(const std::string& name) {
  return name == "PREDICT" || name == "PREDICT_GT" ||
         name == "PREDICT_GE" || name == "PREDICT_LT" ||
         name == "PREDICT_LE";
}

bool IsPredictCall(const Expr& e) {
  return e.kind == ExprKind::kFunction && IsPredictName(e.function_name);
}

/// Index of the first feature argument of a PREDICT-family call.
size_t FeatureArgOffset(const Expr& call) {
  return call.function_name == "PREDICT" ? 1 : 2;
}

/// The model name carried by a PREDICT-family call (first argument).
StatusOr<std::string> CallModelName(const Expr& call) {
  if (call.children.empty() ||
      call.children[0]->kind != ExprKind::kLiteral ||
      call.children[0]->literal.is_null() ||
      call.children[0]->literal.type() != storage::DataType::kString) {
    return Status::InvalidArgument(
        "PREDICT call lacks a constant model name");
  }
  return call.children[0]->literal.string_value();
}

/// Applies `fn` to every PREDICT-family call node in the tree.
Status VisitPredictCalls(Expr* e,
                         const std::function<Status(Expr*)>& fn) {
  if (IsPredictCall(*e)) {
    FLOCK_RETURN_NOT_OK(fn(e));
  }
  for (auto& c : e->children) {
    if (c) FLOCK_RETURN_NOT_OK(VisitPredictCalls(c.get(), fn));
  }
  return Status::OK();
}

/// Applies `fn` to every expression root of `plan` (non-recursive over
/// children plans).
Status ForEachExprRoot(LogicalPlan* plan,
                       const std::function<Status(ExprPtr*)>& fn) {
  if (plan->predicate) FLOCK_RETURN_NOT_OK(fn(&plan->predicate));
  for (auto& e : plan->exprs) FLOCK_RETURN_NOT_OK(fn(&e));
  for (auto& e : plan->group_by) FLOCK_RETURN_NOT_OK(fn(&e));
  for (auto& e : plan->aggregates) FLOCK_RETURN_NOT_OK(fn(&e));
  if (plan->join_condition) {
    FLOCK_RETURN_NOT_OK(fn(&plan->join_condition));
  }
  for (auto& k : plan->sort_keys) FLOCK_RETURN_NOT_OK(fn(&k.expr));
  return Status::OK();
}

/// Finds the table scan feeding `plan` through Filter-only links (schemas
/// are stable across filters, so column indexes line up). Returns nullptr
/// when the chain is broken by a schema-changing node.
const LogicalPlan* UnderlyingScan(const LogicalPlan* plan) {
  const LogicalPlan* node = plan;
  while (node->kind == PlanKind::kFilter) {
    node = node->children[0].get();
  }
  return node->kind == PlanKind::kScan ? node : nullptr;
}

std::string MaskKey(const std::vector<bool>& used) {
  uint64_t h = 1469598103934665603ULL;
  for (bool b : used) h = HashCombine(h, b ? 2 : 3);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(h & 0xFFFFFF));
  return buf;
}

}  // namespace

bool ContainsPredict(const Expr& e) {
  if (IsPredictCall(e)) return true;
  for (const auto& c : e.children) {
    if (c && ContainsPredict(*c)) return true;
  }
  return false;
}

Status CrossOptimizer::Rewrite(PlanPtr* plan) {
  std::lock_guard<std::mutex> lock(rewrite_mu_);
  stats_ = Stats{};
  if (options_.separate_ml_predicates) {
    FLOCK_RETURN_NOT_OK(SeparateMlPredicates(plan->get()));
  }
  if (options_.predicate_pushup) {
    FLOCK_RETURN_NOT_OK(PushUpPredicates(plan->get()));
  }
  if (options_.feature_pruning) {
    FLOCK_RETURN_NOT_OK(PruneFeatures(plan->get()));
  }
  if (options_.model_compression) {
    FLOCK_RETURN_NOT_OK(CompressModels(plan->get()));
  }
  return Status::OK();
}

Status CrossOptimizer::SeparateMlPredicates(LogicalPlan* plan) {
  for (auto& child : plan->children) {
    FLOCK_RETURN_NOT_OK(SeparateMlPredicates(child.get()));
  }
  if (plan->kind != PlanKind::kFilter) return Status::OK();
  std::vector<ExprPtr> conjuncts =
      sql::SplitConjuncts(std::move(plan->predicate));
  std::vector<ExprPtr> ml, data;
  for (auto& conjunct : conjuncts) {
    if (ContainsPredict(*conjunct)) {
      ml.push_back(std::move(conjunct));
    } else {
      data.push_back(std::move(conjunct));
    }
  }
  if (ml.empty() || data.empty()) {
    // Nothing to separate; restore.
    std::vector<ExprPtr> all;
    for (auto& e : data) all.push_back(std::move(e));
    for (auto& e : ml) all.push_back(std::move(e));
    plan->predicate = sql::CombineConjuncts(std::move(all));
    return Status::OK();
  }
  // Data predicates drop below the ML predicate: inference runs only on
  // rows that survive the cheap filters.
  plan->predicate = sql::CombineConjuncts(std::move(ml));
  PlanPtr old_child = std::move(plan->children[0]);
  plan->children[0] = LogicalPlan::MakeFilter(
      std::move(old_child), sql::CombineConjuncts(std::move(data)));
  ++stats_.filters_split;
  return Status::OK();
}

Status CrossOptimizer::PushUpPredicates(LogicalPlan* plan) {
  for (auto& child : plan->children) {
    FLOCK_RETURN_NOT_OK(PushUpPredicates(child.get()));
  }
  if (plan->kind != PlanKind::kFilter) return Status::OK();
  std::vector<ExprPtr> conjuncts =
      sql::SplitConjuncts(std::move(plan->predicate));
  for (auto& conjunct : conjuncts) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    BinaryOp op = conjunct->bin_op;
    if (op != BinaryOp::kGt && op != BinaryOp::kGtEq &&
        op != BinaryOp::kLt && op != BinaryOp::kLtEq) {
      continue;
    }
    Expr* lhs = conjunct->children[0].get();
    Expr* rhs = conjunct->children[1].get();
    bool predict_left = IsPredictCall(*lhs) &&
                        lhs->function_name == "PREDICT" &&
                        rhs->kind == ExprKind::kLiteral &&
                        !rhs->literal.is_null();
    bool predict_right = IsPredictCall(*rhs) &&
                         rhs->function_name == "PREDICT" &&
                         lhs->kind == ExprKind::kLiteral &&
                         !lhs->literal.is_null();
    if (!predict_left && !predict_right) continue;
    if (predict_right) {
      // t OP PREDICT  ==  PREDICT flipped-OP t
      std::swap(conjunct->children[0], conjunct->children[1]);
      lhs = conjunct->children[0].get();
      rhs = conjunct->children[1].get();
      switch (op) {
        case BinaryOp::kGt:
          op = BinaryOp::kLt;
          break;
        case BinaryOp::kGtEq:
          op = BinaryOp::kLtEq;
          break;
        case BinaryOp::kLt:
          op = BinaryOp::kGt;
          break;
        case BinaryOp::kLtEq:
          op = BinaryOp::kGtEq;
          break;
        default:
          break;
      }
    }
    const char* fn_name = nullptr;
    switch (op) {
      case BinaryOp::kGt:
        fn_name = "PREDICT_GT";
        break;
      case BinaryOp::kGtEq:
        fn_name = "PREDICT_GE";
        break;
      case BinaryOp::kLt:
        fn_name = "PREDICT_LT";
        break;
      case BinaryOp::kLtEq:
        fn_name = "PREDICT_LE";
        break;
      default:
        continue;
    }
    // Build PREDICT_xx(model, threshold, features...).
    std::vector<ExprPtr> args;
    args.push_back(std::move(lhs->children[0]));  // model name literal
    args.push_back(std::move(conjunct->children[1]));  // threshold
    for (size_t i = 1; i < lhs->children.size(); ++i) {
      args.push_back(std::move(lhs->children[i]));
    }
    conjunct = Expr::MakeFunction(fn_name, std::move(args));
    ++stats_.predicates_pushed_up;
  }
  plan->predicate = sql::CombineConjuncts(std::move(conjuncts));
  return Status::OK();
}

Status CrossOptimizer::PruneFeatures(LogicalPlan* plan) {
  for (auto& child : plan->children) {
    FLOCK_RETURN_NOT_OK(PruneFeatures(child.get()));
  }
  return ForEachExprRoot(plan, [&](ExprPtr* root) -> Status {
    return VisitPredictCalls(root->get(), [&](Expr* call) -> Status {
      FLOCK_ASSIGN_OR_RETURN(std::string name, CallModelName(*call));
      const ModelEntry* entry = nullptr;
      if (name.find('#') != std::string::npos) {
        FLOCK_ASSIGN_OR_RETURN(entry, models_->GetSpecialization(name));
      } else {
        FLOCK_ASSIGN_OR_RETURN(entry, models_->Get(name));
      }
      std::vector<bool> used = entry->graph.UsedInputColumns();
      size_t dropped = 0;
      for (bool u : used) dropped += u ? 0 : 1;
      if (dropped == 0) return Status::OK();

      size_t offset = FeatureArgOffset(*call);
      if (call->children.size() != offset + used.size()) {
        return Status::InvalidArgument(
            "PREDICT argument count does not match model " + name);
      }
      std::string key = name + "#p" + MaskKey(used);
      if (!models_->HasSpecialization(key)) {
        ModelEntry spec;
        spec.name = key;
        spec.base_name = entry->base_name.empty()
                             ? name.substr(0, name.find('#'))
                             : entry->base_name;
        spec.pipeline = entry->pipeline;
        spec.graph = entry->graph;
        FLOCK_RETURN_NOT_OK(spec.graph.CompactInputs(used));
        for (size_t c = 0; c < used.size(); ++c) {
          if (used[c]) {
            spec.input_mapping.push_back(entry->input_mapping.empty()
                                             ? c
                                             : entry->input_mapping[c]);
          }
        }
        FLOCK_RETURN_NOT_OK(
            models_->RegisterSpecialization(key, std::move(spec)));
      }
      // Rewrite the call: new model name, pruned argument list.
      call->children[0] =
          Expr::MakeLiteral(Value::String(key));
      std::vector<ExprPtr> kept;
      for (size_t i = 0; i < offset; ++i) {
        kept.push_back(std::move(call->children[i]));
      }
      for (size_t c = 0; c < used.size(); ++c) {
        if (used[c]) {
          kept.push_back(std::move(call->children[offset + c]));
        }
      }
      call->children = std::move(kept);
      stats_.features_pruned += dropped;
      return Status::OK();
    });
  });
}

namespace {

/// Bounds on a scan-output column implied by filter predicates.
struct Bounds {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

void CollectConjunctBounds(const Expr& e, std::map<int, Bounds>* bounds) {
  if (e.kind == ExprKind::kBinary && e.bin_op == BinaryOp::kAnd) {
    CollectConjunctBounds(*e.children[0], bounds);
    CollectConjunctBounds(*e.children[1], bounds);
    return;
  }
  auto literal_value = [](const Expr& expr, double* out) {
    if (expr.kind == ExprKind::kLiteral && !expr.literal.is_null() &&
        expr.literal.type() != storage::DataType::kString) {
      *out = expr.literal.AsDouble();
      return true;
    }
    return false;
  };
  if (e.kind == ExprKind::kBetween &&
      e.children[0]->kind == ExprKind::kColumnRef && !e.negated) {
    double lo, hi;
    if (literal_value(*e.children[1], &lo) &&
        literal_value(*e.children[2], &hi)) {
      Bounds& b = (*bounds)[e.children[0]->column_index];
      b.lo = std::max(b.lo, lo);
      b.hi = std::min(b.hi, hi);
    }
    return;
  }
  if (e.kind != ExprKind::kBinary) return;
  const Expr* col = e.children[0].get();
  const Expr* lit = e.children[1].get();
  BinaryOp op = e.bin_op;
  if (col->kind != ExprKind::kColumnRef) {
    // literal CMP column: flip.
    std::swap(col, lit);
    switch (op) {
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLtEq:
        op = BinaryOp::kGtEq;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGtEq:
        op = BinaryOp::kLtEq;
        break;
      default:
        break;
    }
  }
  if (col->kind != ExprKind::kColumnRef || col->column_index < 0) return;
  double value;
  if (!literal_value(*lit, &value)) return;
  Bounds& b = (*bounds)[col->column_index];
  switch (op) {
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
      b.lo = std::max(b.lo, value);
      break;
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
      b.hi = std::min(b.hi, value);
      break;
    case BinaryOp::kEq:
      b.lo = std::max(b.lo, value);
      b.hi = std::min(b.hi, value);
      break;
    default:
      break;
  }
}

}  // namespace

Status CrossOptimizer::CompressModels(LogicalPlan* plan) {
  for (auto& child : plan->children) {
    FLOCK_RETURN_NOT_OK(CompressModels(child.get()));
  }
  if (plan->children.empty()) return Status::OK();
  const LogicalPlan* scan = UnderlyingScan(plan->children[0].get());
  if (scan == nullptr || scan->table == nullptr) return Status::OK();

  // Data predicates between this node and the scan narrow column ranges
  // beyond the table statistics (filters preserve column indexes).
  std::map<int, Bounds> predicate_bounds;
  for (const LogicalPlan* node = plan->children[0].get();
       node->kind == PlanKind::kFilter; node = node->children[0].get()) {
    CollectConjunctBounds(*node->predicate, &predicate_bounds);
  }

  // Per-segment refinement: segments whose zone maps contradict the
  // predicate bounds contribute no rows to scoring (the executor prunes
  // them with the same test), so the feature envelopes below fold only
  // *surviving* segments — tighter [min,max] than table-wide statistics,
  // hence more tree-branch pruning.
  const storage::Table& table = *scan->table;
  std::map<size_t, Bounds> table_bounds;
  for (const auto& [out_idx, b] : predicate_bounds) {
    if (out_idx < 0) continue;
    size_t table_col = static_cast<size_t>(out_idx);
    if (!scan->projection.empty()) {
      if (table_col >= scan->projection.size()) continue;
      table_col = scan->projection[table_col];
    }
    if (table_col >= table.schema().num_columns()) continue;
    Bounds& tb = table_bounds[table_col];
    tb.lo = std::max(tb.lo, b.lo);
    tb.hi = std::min(tb.hi, b.hi);
  }
  std::vector<bool> surviving(table.num_segments(), true);
  bool any_surviving = false;
  for (size_t s = 0; s < table.num_segments(); ++s) {
    if (table.segment_rows(s) == 0) {
      surviving[s] = false;
      continue;
    }
    for (const auto& [col, b] : table_bounds) {
      const storage::ColumnStats& zm = table.segment_zone_map(s, col);
      // A bounds entry means a comparison conjunct exists on this column,
      // which no NULL row passes.
      if (zm.null_count == zm.row_count) {
        surviving[s] = false;
        break;
      }
      if (zm.numeric && zm.has_range && (b.lo > zm.max || b.hi < zm.min)) {
        surviving[s] = false;
        break;
      }
    }
    if (surviving[s]) any_surviving = true;
  }
  if (!any_surviving && table.num_segments() > 0) {
    // Every segment is pruned: no rows reach the model; nothing to
    // specialize (mirrors the contradictory-predicate early-out).
    return Status::OK();
  }

  return ForEachExprRoot(plan, [&](ExprPtr* root) -> Status {
    return VisitPredictCalls(root->get(), [&](Expr* call) -> Status {
      FLOCK_ASSIGN_OR_RETURN(std::string name, CallModelName(*call));
      const ModelEntry* entry = nullptr;
      if (name.find('#') != std::string::npos) {
        FLOCK_ASSIGN_OR_RETURN(entry, models_->GetSpecialization(name));
      } else {
        FLOCK_ASSIGN_OR_RETURN(entry, models_->Get(name));
      }
      if (entry->tree_node_id < 0) return Status::OK();  // trees only

      size_t offset = FeatureArgOffset(*call);
      size_t width = call->children.size() - offset;
      if (width != entry->graph.input_cols()) return Status::OK();

      std::vector<ml::ColumnRange> ranges(width);
      bool any_known = false;
      for (size_t i = 0; i < width; ++i) {
        const Expr& arg = *call->children[offset + i];
        size_t pipeline_input = entry->input_mapping.empty()
                                    ? i
                                    : entry->input_mapping[i];
        const ml::FeatureSpec& spec =
            entry->pipeline.inputs()[pipeline_input];
        if (spec.kind == ml::FeatureKind::kCategorical) {
          // Vocabulary indexes are bounded by construction.
          ranges[i] = ml::ColumnRange{
              0.0, static_cast<double>(spec.vocab.size()) - 1.0, true};
          any_known = true;
          continue;
        }
        if (arg.kind != ExprKind::kColumnRef || arg.column_index < 0) {
          continue;
        }
        // Map through the scan's projection to the table column.
        size_t table_col = static_cast<size_t>(arg.column_index);
        if (!scan->projection.empty()) {
          if (table_col >= scan->projection.size()) continue;
          table_col = scan->projection[table_col];
        }
        auto stats = scan->table->GetStats(table_col);
        // has_range distinguishes "no non-NULL numeric data" from a
        // genuine [0, 0] range (empty and all-NULL columns used to
        // report min=max=0.0 and could poison compression envelopes).
        if (!stats.ok() || !stats->numeric || !stats->has_range) {
          continue;
        }
        // Envelope over surviving segments only (falls back to the
        // table-wide range when zone maps carry no extra information).
        double lo = stats->min;
        double hi = stats->max;
        bool have_segment_range = false;
        for (size_t s = 0; s < table.num_segments(); ++s) {
          if (!surviving[s]) continue;
          const storage::ColumnStats& zm =
              table.segment_zone_map(s, table_col);
          if (!zm.has_range) continue;
          if (!have_segment_range) {
            lo = zm.min;
            hi = zm.max;
            have_segment_range = true;
          } else {
            lo = std::min(lo, zm.min);
            hi = std::max(hi, zm.max);
          }
        }
        if (!have_segment_range) continue;  // survivors are all-NULL here
        auto bound = predicate_bounds.find(arg.column_index);
        if (bound != predicate_bounds.end()) {
          lo = std::max(lo, bound->second.lo);
          hi = std::min(hi, bound->second.hi);
        }
        if (lo > hi) {
          // Contradictory predicates: no rows survive anyway; skip.
          return Status::OK();
        }
        ranges[i] = ml::ColumnRange{lo, hi, true};
        any_known = true;
      }
      if (!any_known) return Status::OK();

      // The cache key must reflect everything the ranges depend on: table
      // version (statistics) AND the predicate-derived bounds.
      uint64_t range_hash = 0x9E3779B97F4A7C15ULL;
      for (const auto& r : ranges) {
        range_hash = HashCombine(range_hash, r.known ? 1 : 0);
        if (r.known) {
          range_hash = HashCombine(
              range_hash, static_cast<uint64_t>(r.min * 1e6));
          range_hash = HashCombine(
              range_hash, static_cast<uint64_t>(r.max * 1e6));
        }
      }
      char range_key[24];
      std::snprintf(range_key, sizeof(range_key), "%llx",
                    static_cast<unsigned long long>(range_hash &
                                                    0xFFFFFFFF));
      std::string key = name + "#c" + scan->table_name + "v" +
                        std::to_string(scan->table->current_version()) +
                        "r" + range_key;
      if (!models_->HasSpecialization(key)) {
        ModelEntry spec;
        spec.name = key;
        spec.base_name = entry->base_name.empty()
                             ? name.substr(0, name.find('#'))
                             : entry->base_name;
        spec.pipeline = entry->pipeline;
        spec.graph = entry->graph;
        spec.input_mapping = entry->input_mapping;
        size_t removed = ml::CompressTreesWithRanges(&spec.graph, ranges);
        if (removed == 0) return Status::OK();
        stats_.tree_nodes_compressed += removed;
        FLOCK_RETURN_NOT_OK(spec.graph.Finalize());
        FLOCK_RETURN_NOT_OK(
            models_->RegisterSpecialization(key, std::move(spec)));
      }
      call->children[0] = Expr::MakeLiteral(Value::String(key));
      return Status::OK();
    });
  });
}

}  // namespace flock::flock
