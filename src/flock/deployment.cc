#include "flock/deployment.h"

namespace flock::flock {

void DeployTransaction::StageRegister(std::string name,
                                      ml::Pipeline pipeline,
                                      std::string created_by,
                                      std::string lineage) {
  Operation op;
  op.kind = Operation::Kind::kRegister;
  op.name = std::move(name);
  op.pipeline = std::move(pipeline);
  op.created_by = std::move(created_by);
  op.lineage = std::move(lineage);
  operations_.push_back(std::move(op));
}

void DeployTransaction::StageDrop(std::string name) {
  Operation op;
  op.kind = Operation::Kind::kDrop;
  op.name = std::move(name);
  operations_.push_back(std::move(op));
}

Status DeployTransaction::Commit() {
  if (engine_mu_ != nullptr) {
    std::unique_lock<std::shared_mutex> lock(*engine_mu_);
    return CommitLocked();
  }
  return CommitLocked();
}

Status DeployTransaction::CommitLocked() {
  // Undo log: for each applied op, how to reverse it.
  struct Undo {
    enum class Kind { kDropNew, kRestore } kind;
    std::string name;
    ml::Pipeline pipeline;  // for kRestore
    std::string created_by, lineage;
  };
  std::vector<Undo> undo_log;

  Status failure = Status::OK();
  for (const Operation& op : operations_) {
    // Snapshot the current version (if any) for rollback.
    ml::Pipeline prior;
    std::string prior_creator, prior_lineage;
    bool had_prior = false;
    auto existing = registry_->Get(op.name);
    if (existing.ok()) {
      prior = (*existing)->pipeline;
      prior_creator = (*existing)->created_by;
      prior_lineage = (*existing)->lineage;
      had_prior = true;
    }

    if (op.kind == Operation::Kind::kRegister) {
      Status st = registry_->Register(op.name, op.pipeline, op.created_by,
                                      op.lineage);
      if (!st.ok()) {
        failure = st;
        break;
      }
      Undo undo;
      if (had_prior) {
        undo.kind = Undo::Kind::kRestore;
        undo.pipeline = std::move(prior);
        undo.created_by = prior_creator;
        undo.lineage = prior_lineage;
      } else {
        undo.kind = Undo::Kind::kDropNew;
      }
      undo.name = op.name;
      undo_log.push_back(std::move(undo));
    } else {
      Status st = registry_->Drop(op.name);
      if (!st.ok()) {
        failure = st;
        break;
      }
      Undo undo;
      undo.kind = Undo::Kind::kRestore;
      undo.name = op.name;
      undo.pipeline = std::move(prior);
      undo.created_by = prior_creator;
      undo.lineage = prior_lineage;
      undo_log.push_back(std::move(undo));
    }
  }

  if (failure.ok()) {
    if (on_commit_) {
      std::vector<CommittedDeployOp> committed;
      committed.reserve(operations_.size());
      for (const Operation& op : operations_) {
        CommittedDeployOp c;
        c.is_drop = op.kind == Operation::Kind::kDrop;
        c.name = op.name;
        if (c.is_drop) {
          c.created_by = "system";  // Drop's default principal
        } else {
          c.pipeline_text = op.pipeline.Serialize();
          c.created_by = op.created_by;
          c.lineage = op.lineage;
        }
        committed.push_back(std::move(c));
      }
      on_commit_(committed);
    }
    operations_.clear();
    return Status::OK();
  }
  // Roll back in reverse order.
  for (auto it = undo_log.rbegin(); it != undo_log.rend(); ++it) {
    if (it->kind == Undo::Kind::kDropNew) {
      (void)registry_->Drop(it->name, "deploy-rollback");
    } else {
      (void)registry_->Register(it->name, it->pipeline, it->created_by,
                                it->lineage);
    }
  }
  if (!undo_log.empty() && on_rollback_) on_rollback_();
  operations_.clear();
  return Status::Aborted("deployment rolled back: " + failure.ToString());
}

}  // namespace flock::flock
