#ifndef FLOCK_FLOCK_MODEL_REGISTRY_H_
#define FLOCK_FLOCK_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "ml/dense_kernel.h"
#include "ml/graph.h"
#include "ml/pipeline.h"

namespace flock::flock {

/// Bound limits for threshold short-circuiting: suffix min/max of remaining
/// tree contributions, precomputed per model.
struct TreeSuffixBounds {
  std::vector<double> suffix_min;  // [i] = min of trees[i..]
  std::vector<double> suffix_max;
};

/// Per-input training-time feature statistics, captured from the fitted
/// pipeline when the model is registered. The lifecycle drift monitor
/// compares live feature distributions against these; empty when the
/// pipeline has no scaler (nothing to compare against).
struct TrainingProfile {
  std::vector<double> mean;  // one per raw input
  std::vector<double> std;
  bool empty() const { return mean.empty(); }
};

/// A deployed model: the paper's "models as first-class data types in a
/// DBMS" (§4.1). Carries the inference pipeline, its compiled graph, and
/// the enterprise metadata (version, lineage pointer, access control) that
/// §4.2 argues models must have "on par with other high-value data".
struct ModelEntry {
  std::string name;
  uint64_t version = 1;
  ml::Pipeline pipeline;
  ml::ModelGraph graph;  // compiled & finalized

  // --- governance ---
  std::string created_by;
  /// Free-form lineage pointer (provenance catalog entity id, training
  /// data snapshot, script hash, ...).
  std::string lineage;
  /// Principals allowed to score; empty = public.
  std::set<std::string> allowed_principals;

  /// For optimizer specializations: the user-visible model this variant was
  /// derived from. Access control and audit are enforced against it.
  std::string base_name;

  /// For optimizer specializations: maps graph input column -> index of the
  /// original pipeline input it came from (empty = identity). Feature
  /// assembly uses this to pick the right encoding per argument.
  std::vector<size_t> input_mapping;

  // --- precomputed scoring metadata ---
  /// True when the graph ends in Sigmoid (strippable for predicate
  /// push-up).
  bool ends_with_sigmoid = false;
  /// Index of the TreeEnsemble node, or -1.
  int tree_node_id = -1;
  TreeSuffixBounds bounds;
  /// Compiled dense-slot scoring kernel (built by AnalyzeEntry; shared and
  /// immutable, so entry copies stay cheap). Null or not-ok kernels fall
  /// back to GraphRuntime in flock::ScoreBatch.
  std::shared_ptr<const ml::DenseKernel> kernel;
  /// Training-time feature statistics (from the pipeline's scaler) for
  /// drift monitoring.
  TrainingProfile training_profile;
};

/// One entry in the registry's audit trail.
struct AuditEvent {
  enum class Kind { kRegister, kDrop, kScore, kDenied, kSpecialize };
  Kind kind;
  std::string model;
  std::string principal;
  uint64_t version = 0;
  size_t rows = 0;
};

/// Thread-safe model catalog with versioning, access control, and an audit
/// log. Also stores the cross-optimizer's internal model specializations
/// (pruned/compressed variants), which are keyed by derived names and are
/// not user-visible.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers (or re-versions) `name`. The pipeline is compiled and
  /// validated here; an invalid pipeline never enters the catalog.
  Status Register(const std::string& name, ml::Pipeline pipeline,
                  const std::string& created_by = "system",
                  const std::string& lineage = "");

  Status Drop(const std::string& name,
              const std::string& principal = "system");

  /// Recovery: re-creates a model at its exact snapshotted version and
  /// access list, without emitting an audit event (restore reconstructs
  /// state, it does not re-deploy). The version must be newer than any
  /// already present so snapshot + WAL replay compose in order.
  Status RestoreModel(const std::string& name, ml::Pipeline pipeline,
                      uint64_t version, const std::string& created_by,
                      const std::string& lineage,
                      std::set<std::string> allowed_principals);

  /// Recovery: replaces the audit log with a snapshotted one.
  void RestoreAuditLog(std::vector<AuditEvent> events);

  /// Drops everything — models, specializations, audit trail. Replica
  /// re-bootstrap wipes the registry before installing a fresh snapshot
  /// (RestoreModel demands monotonic versions, so stale entries would
  /// poison the restore).
  void Reset();

  /// Latest version. NotFound if absent.
  StatusOr<const ModelEntry*> Get(const std::string& name) const;

  /// Specific version (versions are 1-based and monotonic).
  StatusOr<const ModelEntry*> GetVersion(const std::string& name,
                                         uint64_t version) const;

  /// Get + ACL check + audit. PermissionDenied when `principal` lacks
  /// access.
  StatusOr<const ModelEntry*> GetForScoring(const std::string& name,
                                            const std::string& principal,
                                            size_t rows) const;

  /// ACL check + audit without returning the entry (used when scoring goes
  /// through a specialization derived from `name`).
  Status CheckAccess(const std::string& name, const std::string& principal,
                     size_t rows) const;

  /// Restricts scoring on `name` to `principals`.
  Status SetAccessControl(const std::string& name,
                          std::set<std::string> principals);

  bool Contains(const std::string& name) const;
  std::vector<std::string> ListModels() const;
  uint64_t CurrentVersion(const std::string& name) const;

  /// Registers an optimizer-internal specialization under a derived key.
  Status RegisterSpecialization(const std::string& key, ModelEntry entry);
  StatusOr<const ModelEntry*> GetSpecialization(
      const std::string& key) const;
  bool HasSpecialization(const std::string& key) const;
  /// Removes one specialization (no-op if absent). Lifecycle rollouts
  /// install candidates as specializations and retire them here.
  void RemoveSpecialization(const std::string& key);
  void ClearSpecializations();
  size_t num_specializations() const;

  const std::vector<AuditEvent>& audit_log() const { return audit_log_; }

  /// Fills `entry`'s precomputed scoring metadata (sigmoid detection, tree
  /// node index, suffix bounds). Exposed for the optimizer, which builds
  /// specialized entries by hand.
  static void AnalyzeEntry(ModelEntry* entry);

 private:
  mutable std::mutex mu_;
  // name -> version history (back() is latest).
  std::map<std::string, std::vector<std::shared_ptr<ModelEntry>>> models_;
  std::map<std::string, std::shared_ptr<ModelEntry>> specializations_;
  mutable std::vector<AuditEvent> audit_log_;
};

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_MODEL_REGISTRY_H_
