#ifndef FLOCK_FLOCK_CROSS_OPTIMIZER_H_
#define FLOCK_FLOCK_CROSS_OPTIMIZER_H_

#include <mutex>
#include <string>

#include "common/status.h"
#include "flock/model_registry.h"
#include "sql/logical_plan.h"

namespace flock::flock {

/// The SQL x ML cross-optimizer (paper §4.1): rewrites hybrid
/// relational+inference plans. Implemented as four rules applied in order:
///
///  1. **MlPredicateSeparation** (predicate push-down w.r.t. the model):
///     a Filter mixing data predicates with PREDICT predicates is split so
///     the cheap data predicates run first and inference only touches
///     surviving rows.
///  2. **PredicatePushUp**: `PREDICT(m, ...) > t` becomes a
///     `PREDICT_GT(m, t, ...)` intrinsic that folds a trailing sigmoid into
///     the threshold and short-circuits boosted-tree traversal using suffix
///     bounds.
///  3. **FeaturePruning**: inputs the model provably ignores (model
///     sparsity) are dropped from the call; a compacted model
///     specialization is registered and the engine's projection pruning
///     then narrows the scan itself.
///  4. **ModelCompression**: storage min/max statistics of the argument
///     columns are propagated through the featurizers and used to fold
///     decision-tree branches the data can never take.
///
/// Rules 3-4 register internal specializations in the ModelRegistry under
/// names like `churn#p1a2b#c3f4`; those names never leave the engine.
class CrossOptimizer {
 public:
  struct Options {
    bool separate_ml_predicates = true;
    bool predicate_pushup = true;
    bool feature_pruning = true;
    bool model_compression = true;
  };

  explicit CrossOptimizer(ModelRegistry* models)
      : models_(models), options_() {}
  CrossOptimizer(ModelRegistry* models, Options options)
      : models_(models), options_(options) {}

  /// Rewrites `plan` in place. Serialized internally (rewrites mutate
  /// the stats counters and register model specializations), so the
  /// engine may invoke it from concurrent query threads.
  Status Rewrite(sql::PlanPtr* plan);

  Options* mutable_options() { return &options_; }
  const Options& options() const { return options_; }

  /// Rewrite statistics from the most recent Rewrite call (for EXPLAIN-
  /// style diagnostics and the ablation benches). Read while quiescent;
  /// not synchronized against an in-flight Rewrite.
  struct Stats {
    size_t filters_split = 0;
    size_t predicates_pushed_up = 0;
    size_t features_pruned = 0;
    size_t tree_nodes_compressed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status SeparateMlPredicates(sql::LogicalPlan* plan);
  Status PushUpPredicates(sql::LogicalPlan* plan);
  Status PruneFeatures(sql::LogicalPlan* plan);
  Status CompressModels(sql::LogicalPlan* plan);

  ModelRegistry* models_;
  Options options_;
  Stats stats_;
  std::mutex rewrite_mu_;  // one rewrite at a time; see Rewrite()
};

/// True if the expression tree contains any PREDICT-family call.
bool ContainsPredict(const sql::Expr& e);

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_CROSS_OPTIMIZER_H_
