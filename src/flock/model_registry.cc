#include "flock/model_registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace flock::flock {

namespace {
std::string Key(const std::string& name) { return ToLower(name); }
}  // namespace

void ModelRegistry::AnalyzeEntry(ModelEntry* entry) {
  entry->ends_with_sigmoid = false;
  entry->tree_node_id = -1;
  // Compile the dense scoring kernel once, at deploy/specialize time;
  // every ScoreBatch thereafter runs slot-resolved over contiguous
  // buffers. Unsupported graph shapes leave a not-ok kernel and scoring
  // falls back to the per-call GraphRuntime.
  entry->kernel = std::make_shared<ml::DenseKernel>(entry->graph);
  entry->training_profile.mean = entry->pipeline.scaler_means();
  entry->training_profile.std = entry->pipeline.scaler_stds();
  const auto& nodes = entry->graph.nodes();
  int out = entry->graph.output_id();
  if (out >= 0 && nodes[static_cast<size_t>(out)].op ==
                      ml::OpType::kSigmoid) {
    entry->ends_with_sigmoid = true;
  }
  for (const ml::GraphNode& node : nodes) {
    if (node.op == ml::OpType::kTreeEnsemble) {
      entry->tree_node_id = node.id;
      // Suffix bounds over tree leaf values (boosted-sum semantics).
      const auto& trees = node.trees;
      entry->bounds.suffix_min.assign(trees.size() + 1, 0.0);
      entry->bounds.suffix_max.assign(trees.size() + 1, 0.0);
      for (size_t i = trees.size(); i-- > 0;) {
        double tree_min = 0.0, tree_max = 0.0;
        bool first = true;
        for (const ml::TreeNode& tn : trees[i].nodes) {
          if (tn.is_leaf()) {
            if (first) {
              tree_min = tree_max = tn.value;
              first = false;
            } else {
              tree_min = std::min(tree_min, tn.value);
              tree_max = std::max(tree_max, tn.value);
            }
          }
        }
        entry->bounds.suffix_min[i] =
            entry->bounds.suffix_min[i + 1] + tree_min;
        entry->bounds.suffix_max[i] =
            entry->bounds.suffix_max[i + 1] + tree_max;
      }
    }
  }
}

Status ModelRegistry::Register(const std::string& name,
                               ml::Pipeline pipeline,
                               const std::string& created_by,
                               const std::string& lineage) {
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->created_by = created_by;
  entry->lineage = lineage;
  FLOCK_ASSIGN_OR_RETURN(entry->graph, pipeline.Compile());
  entry->pipeline = std::move(pipeline);
  AnalyzeEntry(entry.get());

  std::lock_guard<std::mutex> lock(mu_);
  auto& history = models_[Key(name)];
  entry->version = history.empty() ? 1 : history.back()->version + 1;
  if (!history.empty()) {
    // New versions inherit the access policy.
    entry->allowed_principals = history.back()->allowed_principals;
  }
  history.push_back(entry);
  // Invalidate cached specializations of this model.
  for (auto it = specializations_.begin(); it != specializations_.end();) {
    if (StartsWith(it->first, Key(name) + "#")) {
      it = specializations_.erase(it);
    } else {
      ++it;
    }
  }
  audit_log_.push_back(AuditEvent{AuditEvent::Kind::kRegister, name,
                                  created_by, entry->version, 0});
  return Status::OK();
}

Status ModelRegistry::RestoreModel(const std::string& name,
                                   ml::Pipeline pipeline, uint64_t version,
                                   const std::string& created_by,
                                   const std::string& lineage,
                                   std::set<std::string> allowed_principals) {
  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->version = version;
  entry->created_by = created_by;
  entry->lineage = lineage;
  entry->allowed_principals = std::move(allowed_principals);
  FLOCK_ASSIGN_OR_RETURN(entry->graph, pipeline.Compile());
  entry->pipeline = std::move(pipeline);
  AnalyzeEntry(entry.get());

  std::lock_guard<std::mutex> lock(mu_);
  auto& history = models_[Key(name)];
  if (!history.empty() && history.back()->version >= version) {
    return Status::InvalidArgument(
        "restored version " + std::to_string(version) + " of model '" +
        name + "' is not newer than the registry's version " +
        std::to_string(history.back()->version));
  }
  history.push_back(std::move(entry));
  return Status::OK();
}

void ModelRegistry::RestoreAuditLog(std::vector<AuditEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  audit_log_ = std::move(events);
}

void ModelRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
  specializations_.clear();
  audit_log_.clear();
}

Status ModelRegistry::Drop(const std::string& name,
                           const std::string& principal) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end()) {
    return Status::NotFound("model not found: " + name);
  }
  models_.erase(it);
  for (auto sit = specializations_.begin();
       sit != specializations_.end();) {
    if (StartsWith(sit->first, Key(name) + "#")) {
      sit = specializations_.erase(sit);
    } else {
      ++sit;
    }
  }
  audit_log_.push_back(
      AuditEvent{AuditEvent::Kind::kDrop, name, principal, 0, 0});
  return Status::OK();
}

StatusOr<const ModelEntry*> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end() || it->second.empty()) {
    return Status::NotFound("model not found: " + name);
  }
  return it->second.back().get();
}

StatusOr<const ModelEntry*> ModelRegistry::GetVersion(
    const std::string& name, uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end()) {
    return Status::NotFound("model not found: " + name);
  }
  for (const auto& entry : it->second) {
    if (entry->version == version) return entry.get();
  }
  return Status::NotFound("model " + name + " has no version " +
                          std::to_string(version));
}

StatusOr<const ModelEntry*> ModelRegistry::GetForScoring(
    const std::string& name, const std::string& principal,
    size_t rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end() || it->second.empty()) {
    return Status::NotFound("model not found: " + name);
  }
  const auto& entry = it->second.back();
  if (!entry->allowed_principals.empty() &&
      entry->allowed_principals.count(principal) == 0) {
    audit_log_.push_back(AuditEvent{AuditEvent::Kind::kDenied, name,
                                    principal, entry->version, rows});
    return Status::PermissionDenied("principal '" + principal +
                                    "' may not score model " + name);
  }
  audit_log_.push_back(AuditEvent{AuditEvent::Kind::kScore, name,
                                  principal, entry->version, rows});
  return entry.get();
}

Status ModelRegistry::CheckAccess(const std::string& name,
                                  const std::string& principal,
                                  size_t rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end() || it->second.empty()) {
    return Status::NotFound("model not found: " + name);
  }
  const auto& entry = it->second.back();
  if (!entry->allowed_principals.empty() &&
      entry->allowed_principals.count(principal) == 0) {
    audit_log_.push_back(AuditEvent{AuditEvent::Kind::kDenied, name,
                                    principal, entry->version, rows});
    return Status::PermissionDenied("principal '" + principal +
                                    "' may not score model " + name);
  }
  audit_log_.push_back(AuditEvent{AuditEvent::Kind::kScore, name,
                                  principal, entry->version, rows});
  return Status::OK();
}

Status ModelRegistry::SetAccessControl(const std::string& name,
                                       std::set<std::string> principals) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end() || it->second.empty()) {
    return Status::NotFound("model not found: " + name);
  }
  it->second.back()->allowed_principals = std::move(principals);
  return Status::OK();
}

bool ModelRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.count(Key(name)) > 0;
}

std::vector<std::string> ModelRegistry::ListModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, history] : models_) {
    if (!history.empty()) out.push_back(history.back()->name);
  }
  return out;
}

uint64_t ModelRegistry::CurrentVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(Key(name));
  if (it == models_.end() || it->second.empty()) return 0;
  return it->second.back()->version;
}

Status ModelRegistry::RegisterSpecialization(const std::string& key,
                                             ModelEntry entry) {
  auto shared = std::make_shared<ModelEntry>(std::move(entry));
  AnalyzeEntry(shared.get());
  std::lock_guard<std::mutex> lock(mu_);
  specializations_[Key(key)] = std::move(shared);
  audit_log_.push_back(AuditEvent{AuditEvent::Kind::kSpecialize, key,
                                  "optimizer", 0, 0});
  return Status::OK();
}

StatusOr<const ModelEntry*> ModelRegistry::GetSpecialization(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = specializations_.find(Key(key));
  if (it == specializations_.end()) {
    return Status::NotFound("specialization not found: " + key);
  }
  return it->second.get();
}

bool ModelRegistry::HasSpecialization(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return specializations_.count(Key(key)) > 0;
}

void ModelRegistry::RemoveSpecialization(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  specializations_.erase(Key(key));
}

void ModelRegistry::ClearSpecializations() {
  std::lock_guard<std::mutex> lock(mu_);
  specializations_.clear();
}

size_t ModelRegistry::num_specializations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return specializations_.size();
}

}  // namespace flock::flock
