#include "flock/flock_engine.h"

#include <fstream>

#include "common/string_util.h"
#include "obs/trace.h"

namespace flock::flock {

namespace {

const char* ModelTypeName(ml::Pipeline::ModelType type) {
  switch (type) {
    case ml::Pipeline::ModelType::kLinear:
      return "linear";
    case ml::Pipeline::ModelType::kTrees:
      return "trees";
    case ml::Pipeline::ModelType::kNone:
      return "none";
  }
  return "?";
}

const char* AuditKindName(AuditEvent::Kind kind) {
  switch (kind) {
    case AuditEvent::Kind::kRegister:
      return "REGISTER";
    case AuditEvent::Kind::kDrop:
      return "DROP";
    case AuditEvent::Kind::kScore:
      return "SCORE";
    case AuditEvent::Kind::kDenied:
      return "DENIED";
    case AuditEvent::Kind::kSpecialize:
      return "SPECIALIZE";
  }
  return "?";
}

}  // namespace

std::string RolloutCandidateKey(const std::string& model) {
  return ToLower(model) + "#candidate";
}

FlockEngine::FlockEngine(FlockEngineOptions options)
    : sql_engine_(&db_, options.sql),
      cross_optimizer_(&models_, options.cross),
      context_(std::make_shared<ScoringContext>()),
      enable_cross_optimizer_(options.enable_cross_optimizer) {
  context_->runtime = options.runtime;

  RegisterPredictFunctions(sql_engine_.functions(), &models_, context_);

  sql_engine_.set_plan_rewriter([this](sql::PlanPtr* plan) -> Status {
    if (!enable_cross_optimizer_) return Status::OK();
    return cross_optimizer_.Rewrite(plan);
  });

  sql_engine_.set_model_ddl_handler(
      [this](const sql::CreateModelStatement& stmt) -> Status {
        FLOCK_ASSIGN_OR_RETURN(ml::Pipeline pipeline,
                               ml::Pipeline::Deserialize(stmt.definition));
        FLOCK_RETURN_NOT_OK(models_.Register(stmt.model_name,
                                             std::move(pipeline),
                                             context_->principal,
                                             "sql:CREATE MODEL"));
        if (durability_ != nullptr) {
          return durability_->LogModelDeploy(stmt.model_name,
                                             stmt.definition,
                                             context_->principal,
                                             "sql:CREATE MODEL");
        }
        return Status::OK();
      },
      [this](const sql::DropModelStatement& stmt) -> Status {
        FLOCK_RETURN_NOT_OK(
            models_.Drop(stmt.model_name, context_->principal));
        if (durability_ != nullptr) {
          return durability_->LogModelDrop(stmt.model_name,
                                           context_->principal);
        }
        return Status::OK();
      });
}

Status FlockEngine::Open(const std::string& data_dir,
                         FlockDurabilityConfig config) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (replica_) {
    return Status::InvalidArgument(
        "engine is a replica; use PromoteToPrimary to make it durable");
  }
  return OpenLocked(data_dir, config, /*initial_epoch=*/1);
}

Status FlockEngine::OpenAsReplica(FlockDurabilityConfig config) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (durability_ != nullptr) {
    return Status::InvalidArgument("engine is already durable against " +
                                   durability_->directory());
  }
  if (replica_) {
    return Status::InvalidArgument("engine is already a replica");
  }
  replica_ = true;
  replica_catalog_ = config.catalog;
  replica_policy_ = config.policy;
  replica_adapter_ = BuildStateAdapter();
  return RefreshCatalogTablesLocked();
}

wal::WalReplayTarget FlockEngine::ReplicaTarget() const {
  return wal::WalReplayTarget{const_cast<storage::Database*>(&db_),
                              replica_catalog_, replica_policy_,
                              &replica_adapter_};
}

Status FlockEngine::InstallReplicaSnapshot(
    const wal::SnapshotData& snapshot) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (!replica_) {
    return Status::InvalidArgument("engine is not a replica");
  }
  // Wipe everything: re-bootstrap must not layer a snapshot over stale
  // state (RestoreModel demands monotonic versions, and the snapshot's
  // provenance/timeline images are complete replacements).
  for (const std::string& name : db_.ListTables()) {
    FLOCK_RETURN_NOT_OK(db_.DropTable(name));
  }
  models_.Reset();
  rollouts_.clear();
  if (replica_catalog_ != nullptr) {
    FLOCK_RETURN_NOT_OK(replica_catalog_->Restore({}, {}));
  }
  if (replica_policy_ != nullptr) replica_policy_->RestoreTimeline({}, 0);
  FLOCK_RETURN_NOT_OK(
      wal::RestoreSnapshotState(ReplicaTarget(), snapshot));
  sql_engine_.plan_cache()->Clear();
  return RefreshCatalogTablesLocked();
}

Status FlockEngine::ApplyReplicated(const wal::WalRecord& record) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (!replica_) {
    return Status::InvalidArgument("engine is not a replica");
  }
  obs::ScopedSpan span("repl.apply");
  FLOCK_RETURN_NOT_OK(wal::ApplyWalRecord(ReplicaTarget(), record));
  switch (record.type) {
    case wal::WalRecordType::kCreateTable:
    case wal::WalRecordType::kDropTable:
    case wal::WalRecordType::kDeployModel:
    case wal::WalRecordType::kDropModel:
      // Mirror the primary's invalidation points: cached plans may hold
      // dead table handles or superseded model specializations.
      sql_engine_.plan_cache()->Clear();
      break;
    default:
      break;
  }
  return Status::OK();
}

Status FlockEngine::PromoteToPrimary(const std::string& data_dir,
                                     FlockDurabilityConfig config,
                                     uint64_t initial_epoch) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (!replica_) {
    return Status::InvalidArgument("engine is not a replica");
  }
  replica_ = false;
  replica_catalog_ = nullptr;
  replica_policy_ = nullptr;
  FLOCK_RETURN_NOT_OK(OpenLocked(data_dir, config, initial_epoch));
  // Persist the streamed state under the fenced epoch before the first
  // post-promotion write can be acknowledged: a crash right after
  // promotion must recover to at least the promotion point.
  return durability_->Checkpoint();
}

wal::EngineStateAdapter FlockEngine::BuildStateAdapter() {
  wal::EngineStateAdapter adapter;
  adapter.snapshot_models = [this] {
    std::vector<wal::ModelSnapshot> out;
    for (const std::string& name : models_.ListModels()) {
      auto entry = models_.Get(name);
      if (!entry.ok()) continue;
      wal::ModelSnapshot m;
      m.name = (*entry)->name;
      m.version = (*entry)->version;
      m.pipeline_text = (*entry)->pipeline.Serialize();
      m.created_by = (*entry)->created_by;
      m.lineage = (*entry)->lineage;
      m.allowed_principals.assign((*entry)->allowed_principals.begin(),
                                  (*entry)->allowed_principals.end());
      out.push_back(std::move(m));
    }
    return out;
  };
  adapter.snapshot_audit = [this] {
    std::vector<wal::AuditEventSnapshot> out;
    for (const AuditEvent& event : models_.audit_log()) {
      out.push_back(wal::AuditEventSnapshot{
          static_cast<uint8_t>(event.kind), event.model, event.principal,
          event.version, event.rows});
    }
    return out;
  };
  adapter.restore_model = [this](const wal::ModelSnapshot& m) -> Status {
    FLOCK_ASSIGN_OR_RETURN(ml::Pipeline pipeline,
                           ml::Pipeline::Deserialize(m.pipeline_text));
    return models_.RestoreModel(
        m.name, std::move(pipeline), m.version, m.created_by, m.lineage,
        std::set<std::string>(m.allowed_principals.begin(),
                              m.allowed_principals.end()));
  };
  adapter.restore_audit = [this](std::vector<wal::AuditEventSnapshot> a) {
    std::vector<AuditEvent> events;
    events.reserve(a.size());
    for (const wal::AuditEventSnapshot& e : a) {
      events.push_back(AuditEvent{static_cast<AuditEvent::Kind>(e.kind),
                                  e.model, e.principal, e.version,
                                  static_cast<size_t>(e.rows)});
    }
    models_.RestoreAuditLog(std::move(events));
  };
  adapter.replay_deploy = [this](const std::string& name,
                                 const std::string& pipeline_text,
                                 const std::string& created_by,
                                 const std::string& lineage) -> Status {
    FLOCK_ASSIGN_OR_RETURN(ml::Pipeline pipeline,
                           ml::Pipeline::Deserialize(pipeline_text));
    return models_.Register(name, std::move(pipeline), created_by,
                            lineage);
  };
  adapter.replay_drop = [this](const std::string& name,
                               const std::string& principal) -> Status {
    return models_.Drop(name, principal);
  };
  adapter.snapshot_rollouts = [this] {
    std::vector<wal::RolloutSnapshot> out;
    out.reserve(rollouts_.size());
    for (const auto& [key, rollout] : rollouts_) out.push_back(rollout);
    return out;
  };
  // Restore and replay share one body: every rollout record carries the
  // complete post-transition state, so applying the latest record (or the
  // snapshot image) alone reproduces it. Callers hold the exclusive lock.
  adapter.restore_rollout =
      [this](const wal::RolloutSnapshot& rollout) -> Status {
    return ApplyRolloutLocked(rollout);
  };
  adapter.replay_rollout =
      [this](const wal::RolloutSnapshot& rollout) -> Status {
    return ApplyRolloutLocked(rollout);
  };
  return adapter;
}

Status FlockEngine::OpenLocked(const std::string& data_dir,
                               const FlockDurabilityConfig& config,
                               uint64_t initial_epoch) {
  if (durability_ != nullptr) {
    return Status::InvalidArgument("engine is already durable against " +
                                   durability_->directory());
  }

  wal::DurabilityOptions options;
  options.fsync_policy = config.fsync_policy;
  options.group_commit_interval_ms = config.group_commit_interval_ms;
  options.initial_epoch = initial_epoch;
  // Derived catalog views are rebuilt from the registry on demand; they
  // must not be logged or snapshotted.
  options.skip_tables = {"flock_models", "flock_audit"};

  FLOCK_ASSIGN_OR_RETURN(
      durability_,
      wal::DurabilityManager::Open(data_dir, &db_, config.catalog,
                                   config.policy, BuildStateAdapter(),
                                   std::move(options)));
  // Recovery mutated tables and models behind the SQL layer's back; any
  // cached plan or stale catalog view would serve pre-recovery state.
  sql_engine_.plan_cache()->Clear();
  return RefreshCatalogTablesLocked();
}

Status FlockEngine::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "engine has no data directory (call Open first)");
  }
  FLOCK_RETURN_NOT_OK(durability_->Checkpoint());
  // Persist the slow-query log next to the checkpoint so outliers
  // survive restarts for postmortems. Best-effort: the log is derived
  // observability state, so a write failure must not fail the
  // checkpoint.
  std::ofstream out(durability_->directory() + "/slowlog.json",
                    std::ios::trunc);
  if (out.is_open()) out << sql_engine_.slow_log()->ToJson() << "\n";
  return Status::OK();
}

bool FlockEngine::IsReadStatement(const std::string& sql) {
  std::string lowered = ToLower(Trim(sql));
  return StartsWith(lowered, "select") || StartsWith(lowered, "explain");
}

bool FlockEngine::RequiresExclusive(const std::string& sql) {
  std::string lowered = ToLower(Trim(sql));
  // Catalog-view queries rebuild flock_models/flock_audit first (DDL).
  if (lowered.find("flock_models") != std::string::npos ||
      lowered.find("flock_audit") != std::string::npos) {
    return true;
  }
  // Only plain reads may share the lock; everything else mutates state.
  return !(StartsWith(lowered, "select") || StartsWith(lowered, "explain"));
}

StatusOr<sql::QueryResult> FlockEngine::Execute(
    const std::string& sql, const sql::ExecOptions& exec_opts) {
  if (replica_ && !IsReadStatement(sql)) {
    return Status::Redirect(
        "replica is read-only; send writes and DDL to the primary");
  }
  if (RequiresExclusive(sql)) {
    std::unique_lock<std::shared_mutex> lock(engine_mu_);
    return GuardDurable(ExecuteLocked(sql, exec_opts));
  }
  std::shared_lock<std::shared_mutex> lock(engine_mu_);
  return sql_engine_.Execute(sql, exec_opts);
}

StatusOr<sql::QueryResult> FlockEngine::GuardDurable(
    StatusOr<sql::QueryResult> result) {
  if (durability_ != nullptr) {
    FLOCK_RETURN_NOT_OK(durability_->health());
  }
  return result;
}

StatusOr<sql::QueryResult> FlockEngine::ExecuteAs(
    const std::string& sql, const std::string& principal,
    const sql::ExecOptions& exec_opts) {
  if (replica_ && !IsReadStatement(sql)) {
    return Status::Redirect(
        "replica is read-only; send writes and DDL to the primary");
  }
  // The scoring context is shared by every execution, so swapping the
  // principal demands exclusivity even for reads.
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  std::string saved = context_->principal;
  context_->principal = principal;
  auto result = ExecuteLocked(sql, exec_opts);
  context_->principal = saved;
  return GuardDurable(std::move(result));
}

StatusOr<sql::QueryResult> FlockEngine::ExecuteLocked(
    const std::string& sql, const sql::ExecOptions& exec_opts) {
  std::string lowered = ToLower(sql);
  if (lowered.find("flock_models") != std::string::npos ||
      lowered.find("flock_audit") != std::string::npos) {
    FLOCK_RETURN_NOT_OK(RefreshCatalogTablesLocked());
  }
  return sql_engine_.Execute(sql, exec_opts);
}

Status FlockEngine::RefreshCatalogTables() {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return RefreshCatalogTablesLocked();
}

Status FlockEngine::RefreshCatalogTablesLocked() {
  // The catalog tables are dropped and recreated, so any cached plan
  // scanning them holds a dead table handle.
  sql_engine_.plan_cache()->Clear();
  using storage::ColumnDef;
  using storage::DataType;
  using storage::Schema;
  using storage::Value;

  // flock_models: one row per user-visible model (latest version).
  if (db_.HasTable("flock_models")) {
    FLOCK_RETURN_NOT_OK(db_.DropTable("flock_models"));
  }
  Schema models_schema({ColumnDef{"name", DataType::kString, false},
                        ColumnDef{"version", DataType::kInt64, false},
                        ColumnDef{"created_by", DataType::kString, false},
                        ColumnDef{"lineage", DataType::kString, true},
                        ColumnDef{"model_type", DataType::kString, false},
                        ColumnDef{"num_inputs", DataType::kInt64, false},
                        ColumnDef{"tree_nodes", DataType::kInt64, false},
                        ColumnDef{"restricted", DataType::kBool, false}});
  FLOCK_RETURN_NOT_OK(db_.CreateTable("flock_models", models_schema));
  {
    FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table,
                           db_.GetTable("flock_models"));
    storage::RecordBatch rows(models_schema);
    for (const std::string& name : models_.ListModels()) {
      FLOCK_ASSIGN_OR_RETURN(const ModelEntry* entry, models_.Get(name));
      FLOCK_RETURN_NOT_OK(rows.AppendRow(
          {Value::String(entry->name),
           Value::Int(static_cast<int64_t>(entry->version)),
           Value::String(entry->created_by), Value::String(entry->lineage),
           Value::String(ModelTypeName(entry->pipeline.model_type())),
           Value::Int(static_cast<int64_t>(entry->pipeline.num_inputs())),
           Value::Int(static_cast<int64_t>(entry->graph.TotalTreeNodes())),
           Value::Bool(!entry->allowed_principals.empty())}));
    }
    FLOCK_RETURN_NOT_OK(table->AppendBatch(rows));
  }

  // flock_audit: the registry's audit trail.
  if (db_.HasTable("flock_audit")) {
    FLOCK_RETURN_NOT_OK(db_.DropTable("flock_audit"));
  }
  Schema audit_schema({ColumnDef{"seq", DataType::kInt64, false},
                       ColumnDef{"kind", DataType::kString, false},
                       ColumnDef{"model", DataType::kString, false},
                       ColumnDef{"principal", DataType::kString, false},
                       ColumnDef{"version", DataType::kInt64, false},
                       ColumnDef{"rows_scored", DataType::kInt64, false}});
  FLOCK_RETURN_NOT_OK(db_.CreateTable("flock_audit", audit_schema));
  {
    FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table,
                           db_.GetTable("flock_audit"));
    storage::RecordBatch rows(audit_schema);
    int64_t seq = 0;
    for (const AuditEvent& event : models_.audit_log()) {
      FLOCK_RETURN_NOT_OK(rows.AppendRow(
          {Value::Int(seq++), Value::String(AuditKindName(event.kind)),
           Value::String(event.model), Value::String(event.principal),
           Value::Int(static_cast<int64_t>(event.version)),
           Value::Int(static_cast<int64_t>(event.rows))}));
    }
    FLOCK_RETURN_NOT_OK(table->AppendBatch(rows));
  }
  return Status::OK();
}

StatusOr<sql::QueryResult> FlockEngine::ExecuteScript(
    const std::string& sql) {
  if (replica_) {
    // Scripts may interleave DDL/DML; a replica rejects them wholesale
    // rather than partially applying the read-only prefix.
    return Status::Redirect(
        "replica is read-only; send scripts to the primary");
  }
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return GuardDurable(sql_engine_.ExecuteScript(sql));
}

Status FlockEngine::DeployModel(const std::string& name,
                                ml::Pipeline pipeline,
                                const std::string& created_by,
                                const std::string& lineage) {
  if (replica_) {
    return Status::Redirect(
        "replica is read-only; deploy models on the primary");
  }
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  // Redeploys supersede cross-optimizer specializations referenced by
  // cached plans; drop them all.
  sql_engine_.plan_cache()->Clear();
  std::string pipeline_text;
  if (durability_ != nullptr) pipeline_text = pipeline.Serialize();
  FLOCK_RETURN_NOT_OK(
      models_.Register(name, std::move(pipeline), created_by, lineage));
  if (durability_ != nullptr) {
    return durability_->LogModelDeploy(name, pipeline_text, created_by,
                                       lineage);
  }
  return Status::OK();
}

DeployTransaction FlockEngine::BeginDeployment() {
  return DeployTransaction(
      &models_, &engine_mu_,
      [this](const std::vector<CommittedDeployOp>& committed) {
        sql_engine_.plan_cache()->Clear();
        if (durability_ == nullptr) return;
        for (const CommittedDeployOp& op : committed) {
          if (op.is_drop) {
            (void)durability_->LogModelDrop(op.name, op.created_by);
          } else {
            (void)durability_->LogModelDeploy(op.name, op.pipeline_text,
                                              op.created_by, op.lineage);
          }
        }
      },
      [this]() { sql_engine_.plan_cache()->Clear(); });
}

void FlockEngine::SetPrincipal(const std::string& principal) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  context_->principal = principal;
}

void FlockEngine::SetFeatureObserver(FeatureObserver* observer) {
  context_->observer.store(observer, std::memory_order_release);
}

void FlockEngine::SetScoreCoalescer(ScoreCoalescer* coalescer) {
  context_->coalescer.store(coalescer, std::memory_order_release);
}

Status FlockEngine::ApplyRolloutLocked(
    const wal::RolloutSnapshot& rollout) {
  const std::string spec_key = RolloutCandidateKey(rollout.model);
  if (rollout.state <= 2) {
    // staged / shadow / canary: the candidate must be scoreable. Install
    // it as a specialization of the live model — not a registry version —
    // so plain PREDICT(model, ...) still resolves to the live entry and
    // only rewritten candidate traffic reaches it.
    FLOCK_ASSIGN_OR_RETURN(
        ml::Pipeline pipeline,
        ml::Pipeline::Deserialize(rollout.candidate_pipeline_text));
    ModelEntry entry;
    entry.name = spec_key;
    entry.base_name = rollout.model;
    FLOCK_ASSIGN_OR_RETURN(entry.graph, pipeline.Compile());
    entry.pipeline = std::move(pipeline);
    FLOCK_RETURN_NOT_OK(
        models_.RegisterSpecialization(spec_key, std::move(entry)));
  } else {
    // live / rolled_back: candidate traffic stops. (Promotion's Register
    // already erased the spec; rollback retires it here.)
    models_.RemoveSpecialization(spec_key);
  }
  rollouts_[ToLower(rollout.model)] = rollout;
  // Cached plans may reference the superseded (or freshly installed)
  // candidate specialization.
  sql_engine_.plan_cache()->Clear();
  return Status::OK();
}

Status FlockEngine::UpdateRolloutState(const wal::RolloutSnapshot& rollout) {
  if (replica_) {
    return Status::Redirect(
        "replica is read-only; manage rollouts on the primary");
  }
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  FLOCK_RETURN_NOT_OK(ApplyRolloutLocked(rollout));
  if (durability_ != nullptr) {
    return durability_->LogRolloutState(rollout);
  }
  return Status::OK();
}

std::vector<wal::RolloutSnapshot> FlockEngine::RolloutStates() const {
  std::shared_lock<std::shared_mutex> lock(engine_mu_);
  std::vector<wal::RolloutSnapshot> out;
  out.reserve(rollouts_.size());
  for (const auto& [key, rollout] : rollouts_) out.push_back(rollout);
  return out;
}

}  // namespace flock::flock
