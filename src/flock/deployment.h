#ifndef FLOCK_FLOCK_DEPLOYMENT_H_
#define FLOCK_FLOCK_DEPLOYMENT_H_

#include <functional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "flock/model_registry.h"

namespace flock::flock {

/// One operation of a committed deployment, reported to the commit
/// callback — the engine mirrors these into the write-ahead log.
struct CommittedDeployOp {
  bool is_drop = false;
  std::string name;
  std::string pipeline_text;  // serialized pipeline; empty for drops
  std::string created_by;     // principal for drops
  std::string lineage;
};

/// Atomic multi-model deployment (paper §4.1: "assemblies of models and
/// preprocessing steps should be updated atomically", enabled by treating
/// models as first-class data that database transactions can cover).
///
/// Stage any number of registrations/drops, then Commit: either every
/// operation applies, or — on the first failure — all already-applied
/// operations are rolled back (re-registering the prior version or
/// dropping the newly created model) and the registry is left unchanged.
class DeployTransaction {
 public:
  /// `engine_mu` (optional) is held exclusively for the duration of
  /// Commit so no query scores mid-transaction; `on_commit` (optional)
  /// runs after a successful commit while the lock is still held —
  /// FlockEngine uses it to invalidate the plan cache. `on_rollback`
  /// (optional) runs — also under the lock — after a failed commit has
  /// undone applied operations: the undo re-registers prior versions,
  /// which erases their derived specializations, so cached plans must be
  /// invalidated on this path too.
  explicit DeployTransaction(
      ModelRegistry* registry, std::shared_mutex* engine_mu = nullptr,
      std::function<void(const std::vector<CommittedDeployOp>&)> on_commit =
          {},
      std::function<void()> on_rollback = {})
      : registry_(registry),
        engine_mu_(engine_mu),
        on_commit_(std::move(on_commit)),
        on_rollback_(std::move(on_rollback)) {}

  /// Stages a model (re)deployment.
  void StageRegister(std::string name, ml::Pipeline pipeline,
                     std::string created_by = "system",
                     std::string lineage = "");

  /// Stages a model removal.
  void StageDrop(std::string name);

  /// Applies all staged operations atomically. On failure returns the
  /// first error and restores the registry to its pre-transaction state.
  Status Commit();

  /// Discards staged operations.
  void Abort() { operations_.clear(); }

  size_t staged() const { return operations_.size(); }

 private:
  struct Operation {
    enum class Kind { kRegister, kDrop };
    Kind kind;
    std::string name;
    ml::Pipeline pipeline;
    std::string created_by;
    std::string lineage;
  };

  Status CommitLocked();

  ModelRegistry* registry_;
  std::shared_mutex* engine_mu_ = nullptr;
  std::function<void(const std::vector<CommittedDeployOp>&)> on_commit_;
  std::function<void()> on_rollback_;
  std::vector<Operation> operations_;
};

}  // namespace flock::flock

#endif  // FLOCK_FLOCK_DEPLOYMENT_H_
