// Reproduces Table 1 of §4.2 ("provenance capture performance"):
//
//   Dataset  #Queries  Latency  Size(nodes+edges)
//   TPC-H    2,208     110s     22,330
//   TPC-C    2,200     124s     34,785
//
// We generate the same query volumes from all TPC-H templates and the
// TPC-C transaction mix, run the eager SQL provenance capture over them,
// and report capture latency and provenance-graph size. Absolute latency
// differs from the paper (their capture stack round-trips through Apache
// Atlas); the shape to check is: thousands of queries produce graphs of
// tens of thousands of nodes+edges, and update-heavy TPC-C yields a
// *larger* graph than TPC-H at similar query count because every mutation
// creates a new table-version entity. Lazy capture over the same log is
// reported for comparison.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "prov/catalog.h"
#include "prov/sql_capture.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"

namespace {

using flock::FormatWithCommas;
using flock::Stopwatch;

struct Row {
  std::string dataset;
  size_t queries = 0;
  double latency_s = 0.0;
  size_t entities = 0;
  size_t edges = 0;
  size_t failures = 0;
};

Row Capture(const std::string& name,
            const std::vector<std::string>& queries,
            const flock::storage::Database& db) {
  flock::prov::Catalog catalog;
  flock::prov::SqlCaptureModule capture(&catalog, &db);
  Stopwatch timer;
  for (const std::string& q : queries) {
    (void)capture.CaptureStatement(q);
  }
  Row row;
  row.dataset = name;
  row.queries = queries.size();
  row.latency_s = timer.ElapsedSeconds();
  row.entities = catalog.num_entities();
  row.edges = catalog.num_edges();
  row.failures = capture.stats().parse_failures;
  return row;
}

void Print(const Row& row) {
  std::printf("%-8s %10s %11.2fs %12s  (%s nodes + %s edges, %zu parse "
              "failures)\n",
              row.dataset.c_str(),
              FormatWithCommas(static_cast<long long>(row.queries)).c_str(),
              row.latency_s,
              FormatWithCommas(
                  static_cast<long long>(row.entities + row.edges))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(row.entities)).c_str(),
              FormatWithCommas(static_cast<long long>(row.edges)).c_str(),
              row.failures);
}

}  // namespace

int main() {
  std::printf("Table 1: provenance capture performance (eager mode)\n");
  std::printf("%-8s %10s %12s %12s\n", "Dataset", "#Queries", "Latency",
              "Size(n+e)");

  // TPC-H: 2,208 queries from all 22 templates (as in the paper).
  flock::storage::Database tpch_db;
  flock::workload::TpchWorkload tpch(42);
  if (!tpch.CreateSchema(&tpch_db).ok()) return 1;
  Row tpch_row =
      Capture("TPC-H", tpch.GenerateQueryStream(2208), tpch_db);
  Print(tpch_row);

  // TPC-C: 2,200 statements from the standard transaction mix.
  flock::storage::Database tpcc_db;
  flock::workload::TpccWorkload tpcc(42);
  if (!tpcc.CreateSchema(&tpcc_db).ok()) return 1;
  Row tpcc_row =
      Capture("TPC-C", tpcc.GenerateQueryStream(2200), tpcc_db);
  Print(tpcc_row);

  std::printf("\npaper shape checks:\n");
  std::printf("  graph sizes in the tens of thousands: TPC-H=%zu, "
              "TPC-C=%zu  (paper: 22,330 / 34,785)\n",
              tpch_row.entities + tpch_row.edges,
              tpcc_row.entities + tpcc_row.edges);
  std::printf("  update-heavy TPC-C produces the larger graph: %s\n",
              (tpcc_row.entities + tpcc_row.edges >
               tpch_row.entities + tpch_row.edges)
                  ? "yes"
                  : "NO (unexpected)");
  std::printf("  per-query capture latency: TPC-H %.3f ms, TPC-C %.3f ms "
              "(paper: ~50ms/query through Apache Atlas; ours is an "
              "embedded catalog)\n",
              1000.0 * tpch_row.latency_s /
                  static_cast<double>(tpch_row.queries),
              1000.0 * tpcc_row.latency_s /
                  static_cast<double>(tpcc_row.queries));

  // Lazy capture over an engine query log, for completeness.
  flock::storage::Database lazy_db;
  flock::workload::TpchWorkload tpch2(7);
  if (!tpch2.CreateSchema(&lazy_db).ok()) return 1;
  auto log = tpch2.GenerateQueryStream(500);
  flock::prov::Catalog lazy_catalog;
  flock::prov::SqlCaptureModule lazy(&lazy_catalog, &lazy_db);
  Stopwatch lazy_timer;
  (void)lazy.CaptureLog(log);
  std::printf("\nlazy capture over a 500-query log: %.2f ms, graph size "
              "%zu\n",
              lazy_timer.ElapsedMillis(), lazy_catalog.GraphSize());
  return 0;
}
