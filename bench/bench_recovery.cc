// Durability benchmark: WAL append throughput under each fsync policy,
// checkpoint (snapshot) cost, and recovery replay time as a function of
// log length — all over TPC-H lineitem-scale row batches so record sizes
// match real table traffic rather than toy payloads.
//
// Three sections, reported as JSON (stdout, or a file when a path is
// passed as argv[1]):
//
//  * wal_append: records/s and MB/s appending 128-row lineitem batches
//    under every_record, group_commit (4 threads), and never. The
//    every_record column is the per-record fsync floor; group_commit
//    shows how the 2 ms window amortizes it.
//  * checkpoint: time to snapshot a populated engine and cut the log,
//    plus the snapshot file size.
//  * replay: time for FlockEngine::Open to recover the same directory,
//    against growing WAL lengths (records replayed is measured, not
//    assumed — checkpoints reset it to zero).

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "storage/database.h"
#include "wal/wal_record.h"
#include "wal/wal_writer.h"
#include "workload/tpch.h"

namespace {

constexpr size_t kBatchRows = 128;

struct AppendResult {
  std::string policy;
  size_t threads = 1;
  size_t records = 0;
  double seconds = 0;
  double mb = 0;
};

struct ReplayResult {
  size_t scale_units;
  uint64_t wal_records;
  double open_ms;
};

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/flock_bench_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return {};
  return std::string(buf.data());
}

double FileSizeMb(const std::string& path) {
  struct stat st{};
  if (stat(path.c_str(), &st) != 0) return 0;
  return static_cast<double>(st.st_size) / (1024.0 * 1024.0);
}

/// Lineitem rows sliced into WAL append records — the payload shape the
/// engine logs for INSERT traffic.
std::vector<flock::wal::WalRecord> LineitemRecords(size_t count) {
  flock::storage::Database db;
  flock::workload::TpchWorkload tpch(42);
  if (!tpch.CreateSchema(&db).ok()) return {};
  if (!tpch.PopulateData(&db, 64).ok()) return {};
  auto table = db.GetTable("lineitem");
  if (!table.ok()) return {};
  flock::storage::RecordBatch all = (*table)->ScanAll();

  std::vector<flock::wal::WalRecord> records;
  records.reserve(count);
  size_t offset = 0;
  while (records.size() < count) {
    size_t end = offset + kBatchRows;
    if (end > all.num_rows()) {
      offset = 0;
      continue;
    }
    flock::storage::RecordBatch slice((*table)->schema());
    for (size_t r = offset; r < end; ++r) {
      (void)slice.AppendRow(all.GetRow(r));
    }
    records.push_back(
        flock::wal::WalRecord::AppendBatch("lineitem", std::move(slice)));
    offset = end;
  }
  return records;
}

AppendResult BenchAppend(const std::vector<flock::wal::WalRecord>& records,
                         flock::wal::FsyncPolicy policy, size_t threads,
                         size_t total) {
  AppendResult result;
  result.policy = flock::wal::FsyncPolicyName(policy);
  result.threads = threads;
  result.records = total;

  std::string dir = MakeTempDir("wal");
  flock::wal::WalWriterOptions options;
  options.fsync_policy = policy;
  auto writer_or =
      flock::wal::WalWriter::Create(dir + "/wal.log", 1, options);
  if (!writer_or.ok()) return result;
  flock::wal::WalWriter* writer = writer_or->get();

  flock::Stopwatch watch;
  std::vector<std::thread> pool;
  size_t per_thread = total / threads;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&records, writer, per_thread] {
      for (size_t i = 0; i < per_thread; ++i) {
        (void)writer->Append(records[i % records.size()]);
      }
    });
  }
  for (auto& t : pool) t.join();
  result.seconds = watch.ElapsedSeconds();
  result.mb =
      static_cast<double>(writer->bytes_written()) / (1024.0 * 1024.0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("recovery benchmark: %zu-row lineitem batches\n", kBatchRows);

  // --- WAL append throughput per fsync policy ---
  std::vector<flock::wal::WalRecord> records = LineitemRecords(64);
  if (records.empty()) {
    std::fprintf(stderr, "workload setup failed\n");
    return 1;
  }
  std::vector<AppendResult> appends;
  appends.push_back(BenchAppend(
      records, flock::wal::FsyncPolicy::kEveryRecord, 1, 256));
  appends.push_back(BenchAppend(
      records, flock::wal::FsyncPolicy::kGroupCommit, 4, 2048));
  appends.push_back(
      BenchAppend(records, flock::wal::FsyncPolicy::kNever, 1, 2048));
  std::printf("%14s %8s %9s %12s %10s\n", "policy", "threads", "records",
              "records/s", "MB/s");
  for (const AppendResult& a : appends) {
    std::printf("%14s %8zu %9zu %12.0f %10.1f\n", a.policy.c_str(),
                a.threads, a.records, a.records / a.seconds,
                a.mb / a.seconds);
  }

  // --- checkpoint cost + replay time vs log length ---
  std::vector<ReplayResult> replays;
  double checkpoint_ms = 0, snapshot_mb = 0;
  uint64_t checkpoint_records = 0;
  for (size_t units : {8, 32, 128}) {
    std::string dir = MakeTempDir("replay");
    {
      flock::flock::FlockEngineOptions options;
      options.sql.num_threads = 1;
      flock::flock::FlockEngine engine(options);
      flock::flock::FlockDurabilityConfig config;
      // Group commit: the populate path appends thousands of batches and
      // per-record fsync would swamp the numbers we care about (replay).
      config.fsync_policy = flock::wal::FsyncPolicy::kGroupCommit;
      if (!engine.Open(dir, config).ok()) {
        std::fprintf(stderr, "open %s failed\n", dir.c_str());
        return 1;
      }
      flock::workload::TpchWorkload tpch(42);
      if (!tpch.CreateSchema(engine.database()).ok()) {
        std::fprintf(stderr, "schema failed\n");
        return 1;
      }
      // Populate in 8-unit rounds: each round appends one batch per
      // table, so the WAL record count grows with the scale instead of
      // collapsing into eight giant appends.
      for (size_t done = 0; done < units; done += 8) {
        if (!tpch.PopulateData(engine.database(), 8).ok()) {
          std::fprintf(stderr, "populate failed\n");
          return 1;
        }
      }
      if (units == 128) {
        // Checkpoint cost, measured once at the largest scale — then the
        // log is re-grown so the replay column still sees a long WAL.
        checkpoint_records = engine.durability()->records_logged();
        flock::Stopwatch watch;
        if (!engine.Checkpoint().ok()) {
          std::fprintf(stderr, "checkpoint failed\n");
          return 1;
        }
        checkpoint_ms = watch.ElapsedMillis();
        snapshot_mb = FileSizeMb(dir + "/snapshot.fsnap");
        for (size_t done = 0; done < units; done += 8) {
          if (!tpch.PopulateData(engine.database(), 8).ok()) {
            std::fprintf(stderr, "re-populate failed\n");
            return 1;
          }
        }
      }
      (void)engine.durability()->Sync();
    }
    flock::flock::FlockEngineOptions options;
    options.sql.num_threads = 1;
    flock::flock::FlockEngine engine(options);
    flock::Stopwatch watch;
    if (!engine.Open(dir).ok()) {
      std::fprintf(stderr, "recovery open failed\n");
      return 1;
    }
    ReplayResult r;
    r.scale_units = units;
    r.wal_records = engine.durability()->recovery().wal_records_replayed;
    r.open_ms = watch.ElapsedMillis();
    replays.push_back(r);
  }
  std::printf("\ncheckpoint: %.1f ms for %llu logged records "
              "(snapshot %.2f MB)\n",
              checkpoint_ms,
              static_cast<unsigned long long>(checkpoint_records),
              snapshot_mb);
  std::printf("%12s %13s %10s\n", "scale_units", "wal_records",
              "replay_ms");
  for (const ReplayResult& r : replays) {
    std::printf("%12zu %13llu %10.1f\n", r.scale_units,
                static_cast<unsigned long long>(r.wal_records), r.open_ms);
  }

  FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::printf("\n");
  std::fprintf(out, "{\n  \"benchmark\": \"recovery\",\n");
  std::fprintf(out, "  \"batch_rows\": %zu,\n", kBatchRows);
  std::fprintf(out, "  \"wal_append\": [\n");
  for (size_t i = 0; i < appends.size(); ++i) {
    const AppendResult& a = appends[i];
    std::fprintf(out,
                 "    {\"fsync_policy\": \"%s\", \"threads\": %zu, "
                 "\"records\": %zu, \"records_per_sec\": %.0f, "
                 "\"mb_per_sec\": %.2f}%s\n",
                 a.policy.c_str(), a.threads, a.records,
                 a.records / a.seconds, a.mb / a.seconds,
                 i + 1 < appends.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"checkpoint\": {\"ms\": %.2f, \"logged_records\": %llu, "
               "\"snapshot_mb\": %.3f},\n",
               checkpoint_ms,
               static_cast<unsigned long long>(checkpoint_records),
               snapshot_mb);
  std::fprintf(out, "  \"replay\": [\n");
  for (size_t i = 0; i < replays.size(); ++i) {
    const ReplayResult& r = replays[i];
    std::fprintf(out,
                 "    {\"scale_units\": %zu, \"wal_records\": %llu, "
                 "\"replay_ms\": %.2f}%s\n",
                 r.scale_units,
                 static_cast<unsigned long long>(r.wal_records), r.open_ms,
                 i + 1 < replays.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) {
    std::fclose(out);
    std::printf("results written to %s\n", argv[1]);
  }
  return 0;
}
