// Reproduces Figure 2 of §3: "Notebook coverage (%) for top-K packages",
// 2017 vs 2019, over a synthetic notebook corpus whose package popularity
// follows a Zipf-like distribution.
//
// The paper's two annotations are the shape targets:
//   * "Total: 3x more packages" — the 2019 vocabulary is 3x 2017's;
//   * "Top10: 5% more coverage" — despite the bigger vocabulary, the 2019
//     top-10 covers MORE notebooks (a few packages are becoming dominant).

#include <cstdio>

#include "workload/notebooks.h"

namespace {

using flock::workload::CoverageCurve;
using flock::workload::GenerateNotebookCorpus;
using flock::workload::NotebookCorpus;
using flock::workload::NotebookCorpusOptions;

}  // namespace

int main() {
  NotebookCorpusOptions y2017;
  y2017.num_notebooks = 200000;
  y2017.num_packages = 400;
  y2017.zipf_skew = 1.35;
  y2017.mean_packages_per_notebook = 5.0;
  y2017.seed = 2017;

  NotebookCorpusOptions y2019 = y2017;
  y2019.num_packages = 1200;  // 3x more packages
  y2019.zipf_skew = 1.46;     // ...but heavier head (convergence)
  y2019.seed = 2019;

  NotebookCorpus corpus2017 = GenerateNotebookCorpus(y2017);
  NotebookCorpus corpus2019 = GenerateNotebookCorpus(y2019);

  std::vector<size_t> ks = {1,  2,   5,   10,  20,  50,
                            100, 200, 400, 800, 1200};
  auto curve2017 = CoverageCurve(corpus2017, ks);
  auto curve2019 = CoverageCurve(corpus2019, ks);

  std::printf("Figure 2: notebook coverage (%%) for top-K packages\n");
  std::printf("corpora: %zu notebooks each; packages: 2017=%zu, "
              "2019=%zu (3x)\n\n",
              corpus2017.notebooks.size(), corpus2017.num_packages,
              corpus2019.num_packages);
  std::printf("%8s %12s %12s\n", "top-K", "2017", "2019");
  for (size_t i = 0; i < ks.size(); ++i) {
    std::printf("%8zu %11.1f%% %11.1f%%\n", ks[i], 100.0 * curve2017[i],
                100.0 * curve2019[i]);
  }

  double top10_2017 = 100.0 * curve2017[3];
  double top10_2019 = 100.0 * curve2019[3];
  std::printf("\npaper shape checks:\n");
  std::printf("  top-10 coverage: 2017=%.1f%%, 2019=%.1f%% -> 2019 ahead "
              "by %.1f points (paper: ~5%% more)\n",
              top10_2017, top10_2019, top10_2019 - top10_2017);
  std::printf("  expanding field: full coverage requires the whole, 3x "
              "larger, 2019 vocabulary\n");
  std::printf("  conclusion reproduced: broad coverage needed, but a core "
              "package set dominates\n");
  return 0;
}
