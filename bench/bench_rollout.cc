// Rollout benchmark: what shadow scoring costs on the serving path and
// how close canary routing lands to the configured traffic fraction.
//
// Two phases against one in-memory engine (users table + churn GBDT):
//
//  * shadow_overhead — the same PREDICT query stream runs through the
//    RolloutManager interceptor twice: once with no active rollout (the
//    fast path is a single atomic load) and once mid-shadow, where every
//    request also scores the candidate and feeds the divergence/drift
//    accounting. Reported as qps for both and the overhead multiple.
//  * canary_skew — for several configured fractions, distinct principals
//    are routed through a canary-stage rollout; the observed candidate
//    share is compared against the configured share (FNV-1a routing
//    skew).
//
// Output: human-readable table on stdout plus JSON (stdout, or a file
// when a path is passed as argv[1]).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "lifecycle/rollout.h"
#include "ml/tree.h"

namespace {

constexpr size_t kUserRows = 500;
constexpr int kScoringRequests = 300;
constexpr size_t kCanaryPrincipals = 1000;

const char* kScoringSql =
    "SELECT id, PREDICT(churn, age, income, tenure, clicks, plan) "
    "FROM users WHERE id < 100";

bool Check(const flock::Status& status, const char* what) {
  if (status.ok()) return true;
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return false;
}

flock::flock::FlockEngineOptions SerialEngineOptions() {
  flock::flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

bool BuildEngine(flock::flock::FlockEngine* engine) {
  if (!Check(engine
                 ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                           "income DOUBLE, tenure DOUBLE, clicks DOUBLE, "
                           "plan VARCHAR)")
                 .status(),
             "create table")) {
    return false;
  }
  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(kUserRows, 5);
  std::vector<double> labels(kUserRows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < kUserRows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks;
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!Check(engine->Execute(insert).status(), "seed insert")) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 8;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  return Check(engine->DeployModel("churn", std::move(pipeline), "bench",
                                   "bench_rollout"),
               "deploy model");
}

/// Guards disabled so the bench measures the steady state, not a
/// rollback.
flock::lifecycle::RolloutConfig BenchConfig(uint32_t permille) {
  flock::lifecycle::RolloutConfig config;
  config.canary_permille = permille;
  config.guard.max_divergence_rate = 0.0;
  config.guard.max_latency_regression = 0.0;
  config.guard.max_drift_score = 0.0;
  config.guard.min_observations = 1;
  return config;
}

struct ShadowResult {
  int requests = 0;
  double baseline_qps = 0.0;
  double shadow_qps = 0.0;
  double overhead_x = 0.0;
  unsigned long long compared_rows = 0;
  unsigned long long diverged_rows = 0;
};

/// qps of kScoringRequests interceptor passes in the current stage.
double MeasureQps(flock::flock::FlockEngine* engine,
                  flock::lifecycle::RolloutManager* manager) {
  auto execute = [engine](const std::string& sql) {
    return engine->Execute(sql);
  };
  flock::Stopwatch wall;
  for (int i = 0; i < kScoringRequests; ++i) {
    auto result = manager->Intercept("bench", kScoringSql, execute);
    if (!result.ok()) {
      std::fprintf(stderr, "intercepted request failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  return kScoringRequests / wall.ElapsedSeconds();
}

ShadowResult RunShadowOverhead(flock::flock::FlockEngine* engine,
                               flock::lifecycle::RolloutManager* manager) {
  ShadowResult result;
  result.requests = kScoringRequests;
  result.baseline_qps = MeasureQps(engine, manager);  // no active rollout

  if (!Check(manager->Begin("churn", "churn", BenchConfig(100), "bench"),
             "begin shadow rollout") ||
      !Check(manager->Promote("churn"), "promote to shadow")) {
    std::exit(1);
  }
  result.shadow_qps = MeasureQps(engine, manager);
  result.overhead_x = result.baseline_qps / result.shadow_qps;

  auto view = manager->Describe("churn");
  if (view.ok()) {
    result.compared_rows = view->compared_rows;
    result.diverged_rows = view->diverged_rows;
  }
  if (!Check(manager->Abort("churn"), "abort shadow rollout")) {
    std::exit(1);
  }
  return result;
}

struct SkewResult {
  uint32_t permille = 0;
  size_t principals = 0;
  size_t routed = 0;
  double observed_fraction = 0.0;
  double skew_abs = 0.0;
  unsigned long long fallbacks = 0;
};

SkewResult RunCanarySkew(flock::flock::FlockEngine* engine,
                         flock::lifecycle::RolloutManager* manager,
                         uint32_t permille) {
  if (!Check(manager->Begin("churn", "churn", BenchConfig(permille),
                            "bench"),
             "begin canary rollout") ||
      !Check(manager->Promote("churn"), "promote to shadow") ||
      !Check(manager->Promote("churn"), "promote to canary")) {
    std::exit(1);
  }
  // A cheap query keeps the phase routing-bound rather than scan-bound.
  const std::string sql =
      "SELECT id, PREDICT(churn, age, income, tenure, clicks, plan) "
      "FROM users WHERE id < 4";
  SkewResult result;
  result.permille = permille;
  result.principals = kCanaryPrincipals;
  for (size_t i = 0; i < kCanaryPrincipals; ++i) {
    bool candidate = false;
    auto probe = [&](const std::string& q) {
      if (q.find("#candidate") != std::string::npos) candidate = true;
      return engine->Execute(q);
    };
    auto r = manager->Intercept("user" + std::to_string(i), sql, probe);
    if (!r.ok()) {
      std::fprintf(stderr, "canary request failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    if (candidate) ++result.routed;
  }
  result.observed_fraction =
      static_cast<double>(result.routed) / kCanaryPrincipals;
  result.skew_abs =
      result.observed_fraction - static_cast<double>(permille) / 1000.0;
  if (result.skew_abs < 0) result.skew_abs = -result.skew_abs;
  auto view = manager->Describe("churn");
  if (view.ok()) result.fallbacks = view->canary_fallbacks;
  if (!Check(manager->Abort("churn"), "abort canary rollout")) {
    std::exit(1);
  }
  return result;
}

void EmitJson(std::FILE* out, const ShadowResult& shadow,
              const std::vector<SkewResult>& skews) {
  std::fprintf(out, "{\n  \"benchmark\": \"rollout\",\n");
  std::fprintf(out,
               "  \"shadow_overhead\": {\"requests\": %d, "
               "\"baseline_qps\": %.0f, \"shadow_qps\": %.0f, "
               "\"overhead_x\": %.2f, \"compared_rows\": %llu, "
               "\"diverged_rows\": %llu},\n",
               shadow.requests, shadow.baseline_qps, shadow.shadow_qps,
               shadow.overhead_x, shadow.compared_rows,
               shadow.diverged_rows);
  std::fprintf(out, "  \"canary_skew\": [\n");
  for (size_t i = 0; i < skews.size(); ++i) {
    const SkewResult& s = skews[i];
    std::fprintf(out,
                 "    {\"permille\": %u, \"principals\": %zu, "
                 "\"routed\": %zu, \"observed_fraction\": %.3f, "
                 "\"configured_fraction\": %.3f, \"skew_abs\": %.3f, "
                 "\"fallbacks\": %llu}%s\n",
                 s.permille, s.principals, s.routed, s.observed_fraction,
                 s.permille / 1000.0, s.skew_abs, s.fallbacks,
                 i + 1 < skews.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  flock::flock::FlockEngine engine(SerialEngineOptions());
  if (!BuildEngine(&engine)) return 1;
  flock::lifecycle::RolloutManager manager(&engine);
  if (!Check(manager.Resume(), "resume")) return 1;

  std::printf("rollout benchmark: %zu users + churn model, "
              "%d scoring requests per phase\n\n",
              kUserRows, kScoringRequests);

  ShadowResult shadow = RunShadowOverhead(&engine, &manager);
  std::printf("shadow overhead: baseline %.0f qps, shadow %.0f qps "
              "(%.2fx), %llu rows compared, %llu diverged\n",
              shadow.baseline_qps, shadow.shadow_qps, shadow.overhead_x,
              shadow.compared_rows, shadow.diverged_rows);

  std::printf("\n%9s %11s %8s %10s %9s\n", "permille", "principals",
              "routed", "observed", "skew");
  std::vector<SkewResult> skews;
  for (uint32_t permille : {100u, 250u, 500u}) {
    SkewResult s = RunCanarySkew(&engine, &manager, permille);
    std::printf("%9u %11zu %8zu %10.3f %9.3f\n", s.permille, s.principals,
                s.routed, s.observed_fraction, s.skew_abs);
    skews.push_back(s);
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::printf("\nwriting JSON to %s\n", argv[1]);
  } else {
    std::printf("\n");
  }
  EmitJson(out, shadow, skews);
  if (out != stdout) std::fclose(out);
  return 0;
}
