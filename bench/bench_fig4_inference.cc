// Reproduces Figure 4 of "Cloudy with high chance of DBMS" (CIDR'20):
//   (left)  total inference time of scikit-learn-style interpreted scoring,
//           standalone ONNX-runtime-style scoring (ORT), in-DBMS scoring
//           (SONNX), and in-DBMS scoring with the SQLxML cross-optimizer
//           (SONNX-ext), over dataset sizes 1K / 10K / 100K / 1M;
//   (right) speedups over the scikit-learn baseline at the largest size.
//
// The task is identical in all configurations: the data lives in the
// DBMS, and we must count rows with (f0 > 0.2 AND score > 0.8).
// Standalone configurations therefore first EXFILTRATE the feature
// columns out of the database (a SQL export + client-side matrix
// assembly) and then score — exactly the deployment the paper argues
// against ("without the need to exfiltrate the data", §1). In-DBMS
// configurations run the equivalent SQL query directly. Export and
// scoring time are reported separately.
//
// NOTE on parallelism: the paper attributes up to 5.5x of the in-DB win
// to automatic parallelization inside SQL Server. This host's hardware
// concurrency is printed below; on a single-core machine that component
// is necessarily 1x and the in-DB advantage comes from avoided
// exfiltration plus the cross-optimizations.

#include <cmath>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "flock/flock_engine.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "workload/synthetic.h"

namespace {

using flock::Stopwatch;
using flock::flock::FlockEngine;
using flock::flock::FlockEngineOptions;
using flock::workload::BuildInferenceWorkload;
using flock::workload::InferenceWorkload;
using flock::workload::InferenceWorkloadOptions;

constexpr double kScoreThreshold = 0.8;
constexpr double kDataThreshold = 0.2;

std::string PredictArgs() {
  std::string args;
  for (int c = 0; c < 27; ++c) {
    args += "f" + std::to_string(c) + ", ";
  }
  args += "segment";
  return args;
}

struct Config {
  std::string name;
  double export_millis = 0.0;  // exfiltration phase (standalone only)
  double score_millis = 0.0;
  size_t rows_kept = 0;
  // In-DBMS configs: per-operator breakdown from the physical executor.
  std::vector<flock::sql::OperatorMetricsSnapshot> operators;

  double total() const { return export_millis + score_millis; }
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Per-operator time breakdown of the in-DBMS configurations as JSON —
/// shows where the inference query spends its time (scan vs score vs
/// aggregate), the level Figure 4's bars summarize away.
void EmitOperatorJson(size_t rows, const std::vector<Config>& configs) {
  std::printf("{\"benchmark\": \"fig4_inference\", \"rows\": %zu, "
              "\"configs\": [\n",
              rows);
  bool first_config = true;
  for (const Config& config : configs) {
    if (config.operators.empty()) continue;
    std::printf("%s  {\"name\": \"%s\", \"total_ms\": %.3f, "
                "\"operators\": [\n",
                first_config ? "" : ",\n", JsonEscape(config.name).c_str(),
                config.total());
    first_config = false;
    for (size_t i = 0; i < config.operators.size(); ++i) {
      const auto& op = config.operators[i];
      std::printf("    {\"name\": \"%s\", \"depth\": %d, "
                  "\"rows_in\": %llu, \"rows_out\": %llu, "
                  "\"wall_ms\": %.3f}%s\n",
                  JsonEscape(op.name).c_str(), op.depth,
                  static_cast<unsigned long long>(op.rows_in),
                  static_cast<unsigned long long>(op.rows_out), op.wall_ms,
                  i + 1 < config.operators.size() ? "," : "");
    }
    std::printf("  ]}");
  }
  std::printf("\n]}\n");
}

/// Exfiltrates the feature columns out of the DBMS into a client-side raw
/// matrix — the cost every standalone scorer pays when the data is
/// DBMS-resident.
flock::ml::Matrix ExportFeatures(FlockEngine* engine,
                                 const InferenceWorkload& workload,
                                 double* export_millis) {
  Stopwatch timer;
  std::string columns;
  for (int c = 0; c < 27; ++c) columns += "f" + std::to_string(c) + ", ";
  columns += "segment";
  auto result =
      engine->Execute("SELECT " + columns + " FROM clickstream");
  if (!result.ok()) {
    std::fprintf(stderr, "export failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  const auto& batch = result->batch;
  flock::ml::Matrix raw(batch.num_rows(), batch.num_columns());
  for (size_t c = 0; c + 1 < batch.num_columns(); ++c) {
    const auto& col = *batch.column(c);
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      raw.at(r, c) = col.IsNull(r) ? std::nan("") : col.AsDouble(r);
    }
  }
  const auto& segment = *batch.column(batch.num_columns() - 1);
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    raw.at(r, batch.num_columns() - 1) =
        segment.IsNull(r)
            ? std::nan("")
            : workload.pipeline.EncodeCategorical(
                  batch.num_columns() - 1, segment.string_at(r));
  }
  *export_millis = timer.ElapsedMillis();
  return raw;
}

/// scikit-learn baseline: export, then interpreted row-at-a-time scoring
/// (named-feature rows through dynamically dispatched steps), then the
/// predicate applied client-side.
Config RunSklearn(FlockEngine* engine, const InferenceWorkload& workload) {
  Config out{"scikit-learn (export + rows)"};
  flock::ml::Matrix raw =
      ExportFeatures(engine, workload, &out.export_millis);
  flock::ml::RowScorer scorer(workload.pipeline);
  Stopwatch timer;
  std::vector<double> row(raw.cols());
  for (size_t r = 0; r < raw.rows(); ++r) {
    const double* src = raw.row(r);
    row.assign(src, src + raw.cols());
    double score = scorer.Score(row);
    if (src[0] > kDataThreshold && score > kScoreThreshold) {
      ++out.rows_kept;
    }
  }
  out.score_millis = timer.ElapsedMillis();
  return out;
}

/// Standalone ORT baseline: export, then vectorized single-thread scoring
/// in 8K-row batches (the way a standalone runtime consumes exported
/// data), then the predicate applied client-side.
Config RunOrt(FlockEngine* engine, const InferenceWorkload& workload) {
  Config out{"ORT standalone (export + graph)"};
  flock::ml::Matrix raw =
      ExportFeatures(engine, workload, &out.export_millis);
  auto graph = workload.pipeline.Compile();
  flock::ml::GraphRuntime runtime(&*graph);
  Stopwatch timer;
  constexpr size_t kBatch = 8192;
  flock::ml::Matrix chunk(kBatch, raw.cols());
  for (size_t begin = 0; begin < raw.rows(); begin += kBatch) {
    size_t end = std::min(raw.rows(), begin + kBatch);
    size_t rows = end - begin;
    if (rows != chunk.rows()) {
      chunk = flock::ml::Matrix(rows, raw.cols());
    }
    for (size_t r = 0; r < rows; ++r) {
      const double* src = raw.row(begin + r);
      double* dst = chunk.row(r);
      for (size_t c = 0; c < raw.cols(); ++c) dst[c] = src[c];
    }
    auto scores = runtime.RunToScores(chunk);
    for (size_t r = 0; r < rows; ++r) {
      if (raw.at(begin + r, 0) > kDataThreshold &&
          (*scores)[r] > kScoreThreshold) {
        ++out.rows_kept;
      }
    }
  }
  out.score_millis = timer.ElapsedMillis();
  return out;
}

Config RunInDb(FlockEngine* engine, bool cross_optimizer,
               const std::string& label) {
  engine->set_enable_cross_optimizer(cross_optimizer);
  std::string query = "SELECT COUNT(*) FROM clickstream WHERE f0 > " +
                      flock::FormatDouble(kDataThreshold, 2) +
                      " AND PREDICT(ctr, " + PredictArgs() + ") > " +
                      flock::FormatDouble(kScoreThreshold, 2);
  // Warm once so optimizer specializations are built & cached (the paper's
  // numbers are steady-state scoring, not first-call compilation).
  auto warm = engine->Execute(query);
  if (!warm.ok()) {
    std::fprintf(stderr, "in-db warmup failed: %s\n",
                 warm.status().ToString().c_str());
    std::exit(1);
  }
  Config out{label};
  Stopwatch timer;
  auto result = engine->Execute(query);
  out.score_millis = timer.ElapsedMillis();
  out.rows_kept =
      static_cast<size_t>(result->batch.column(0)->int_at(0));
  out.operators = std::move(result->operator_metrics);
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 4 (left): total inference time (ms) by dataset "
              "size\n");
  std::printf("task: count rows with f0 > %.2f AND score > %.2f over a "
              "28-column DBMS table, GBDT(40 trees, depth 6)\n",
              kDataThreshold, kScoreThreshold);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%10s %34s %12s %12s %12s %10s\n", "rows", "config",
              "export(ms)", "score(ms)", "total(ms)", "rows_kept");

  const size_t sizes[] = {1000, 10000, 100000, 1000000};
  double sklearn_at_max = 0.0;
  double ort_at_max = 0.0;
  double sonnx_at_max = 0.0;
  double sonnx_ext_at_max = 0.0;
  std::vector<Config> configs_at_max;

  for (size_t n : sizes) {
    FlockEngineOptions engine_options;
    engine_options.sql.num_threads = 0;  // hardware concurrency
    FlockEngine engine(engine_options);
    InferenceWorkloadOptions options;
    options.num_rows = n;
    auto workload = BuildInferenceWorkload(&engine, options);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }

    // Untimed warm-up export so first-touch page faults don't bias the
    // first configuration measured.
    {
      double ignored = 0.0;
      (void)ExportFeatures(&engine, *workload, &ignored);
    }

    std::vector<Config> configs;
    configs.push_back(RunSklearn(&engine, *workload));
    configs.push_back(RunOrt(&engine, *workload));
    configs.push_back(RunInDb(&engine, false, "SONNX (in-DBMS)"));
    configs.push_back(
        RunInDb(&engine, true, "SONNX-ext (in-DBMS + cross-opt)"));

    for (const Config& config : configs) {
      std::printf("%10zu %34s %12.2f %12.2f %12.2f %10zu\n", n,
                  config.name.c_str(), config.export_millis,
                  config.score_millis, config.total(), config.rows_kept);
    }
    std::printf("\n");
    if (n == sizes[3]) {
      sklearn_at_max = configs[0].total();
      ort_at_max = configs[1].total();
      sonnx_at_max = configs[2].total();
      sonnx_ext_at_max = configs[3].total();
      configs_at_max = configs;
    }
    // Sanity: every configuration must agree on the answer.
    for (size_t i = 1; i < configs.size(); ++i) {
      if (configs[i].rows_kept != configs[0].rows_kept) {
        std::fprintf(stderr,
                     "MISMATCH: %s kept %zu rows, baseline kept %zu\n",
                     configs[i].name.c_str(), configs[i].rows_kept,
                     configs[0].rows_kept);
        return 1;
      }
    }
  }

  std::printf("Figure 4 (right): speedup over scikit-learn at 1M rows\n");
  std::printf("  %-34s %6.1fx  (paper: 1x baseline)\n", "scikit-learn",
              1.0);
  std::printf("  %-34s %6.1fx\n", "ORT standalone",
              sklearn_at_max / ort_at_max);
  std::printf("  %-34s %6.1fx  (paper: ~17x 'Inline SQL')\n",
              "SONNX (in-DBMS)", sklearn_at_max / sonnx_at_max);
  std::printf("  %-34s %6.1fx  (paper: ~24x 'Optimized')\n",
              "SONNX-ext (cross-optimized)",
              sklearn_at_max / sonnx_ext_at_max);
  std::printf("\npaper claim check: in-DBMS beats standalone ORT by %.1fx "
              "end-to-end (paper: up to 5.5x; theirs combines avoided "
              "exfiltration with multi-core parallelization — on this "
              "host the parallel component is capped at %u thread(s))\n",
              ort_at_max / sonnx_at_max,
              std::thread::hardware_concurrency());

  std::printf("\nper-operator breakdown of the in-DBMS configs at 1M "
              "rows:\n");
  EmitOperatorJson(sizes[3], configs_at_max);
  return 0;
}
