// Supplementary benchmark: end-to-end execution time of the 22 adapted
// TPC-H templates on generated data — evidence that the relational
// substrate under the in-DBMS inference results is a real, working
// analytic engine (joins, aggregation, sorting), not a scoring shim.
//
// Each template runs at num_threads=1 and num_threads=4 (the morsel-
// parallel physical executor partitions scans, join probes and
// aggregation across the pool), and the per-operator rows/time breakdown
// — including segments scanned vs pruned by zone maps — is emitted as
// JSON, to stdout or to a file when a path is passed as argv[1]. A
// second section benchmarks selective range filters with zone-map
// pruning on vs off over a small-segmented table (the "scan_pruning"
// JSON array), asserting identical results and nonzero pruning.

#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "sql/engine.h"
#include "workload/tpch.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

struct QueryRun {
  size_t template_index = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  size_t rows = 0;
  // Breakdown from the parallel run (cumulative across workers).
  std::vector<flock::sql::OperatorMetricsSnapshot> operators;
};

/// One selective-filter scan measured with zone-map pruning on vs off
/// (identical results asserted by the harness before recording).
struct PruningRun {
  std::string label;
  double pruned_ms = 0.0;
  double full_ms = 0.0;
  size_t rows = 0;
  unsigned long long segments_scanned = 0;
  unsigned long long segments_pruned = 0;
};

void EmitJson(std::FILE* out, const std::vector<QueryRun>& runs,
              const std::vector<PruningRun>& pruning) {
  std::fprintf(out, "{\n  \"benchmark\": \"tpch_execution\",\n");
  std::fprintf(out, "  \"queries\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const QueryRun& run = runs[i];
    std::fprintf(out,
                 "    {\"q\": %zu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"rows\": %zu,\n"
                 "     \"operators\": [\n",
                 run.template_index + 1, run.serial_ms, run.parallel_ms,
                 run.rows);
    for (size_t j = 0; j < run.operators.size(); ++j) {
      const auto& op = run.operators[j];
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"depth\": %d, "
                   "\"rows_in\": %llu, \"rows_out\": %llu, "
                   "\"wall_ms\": %.3f, \"segments_scanned\": %llu, "
                   "\"segments_pruned\": %llu}%s\n",
                   JsonEscape(op.name).c_str(), op.depth,
                   static_cast<unsigned long long>(op.rows_in),
                   static_cast<unsigned long long>(op.rows_out), op.wall_ms,
                   static_cast<unsigned long long>(op.segments_scanned),
                   static_cast<unsigned long long>(op.segments_pruned),
                   j + 1 < run.operators.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"scan_pruning\": [\n");
  for (size_t i = 0; i < pruning.size(); ++i) {
    const PruningRun& run = pruning[i];
    std::fprintf(out,
                 "    {\"filter\": \"%s\", \"pruning_on_ms\": %.3f, "
                 "\"pruning_off_ms\": %.3f, \"rows\": %zu, "
                 "\"segments_scanned\": %llu, \"segments_pruned\": %llu}%s\n",
                 JsonEscape(run.label).c_str(), run.pruned_ms, run.full_ms,
                 run.rows, run.segments_scanned, run.segments_pruned,
                 i + 1 < pruning.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

/// Selective-filter scan benchmark: range predicates of decreasing
/// selectivity on a row-order-correlated column, over a table small-
/// segmented enough (1K rows/segment) that zone maps discriminate.
/// Results must be identical with pruning on and off.
bool RunPruningBench(std::vector<PruningRun>* out) {
  flock::storage::Database db;
  db.set_default_segment_capacity(1024);
  flock::sql::EngineOptions setup_options;
  setup_options.num_threads = 1;
  flock::sql::SqlEngine setup(&db, setup_options);
  if (!setup.Execute("CREATE TABLE events (id INT, ts DOUBLE, val DOUBLE)")
           .ok()) {
    return false;
  }
  constexpr int kRows = 200000;
  constexpr int kBatch = 1000;
  for (int base = 0; base < kRows; base += kBatch) {
    std::string insert = "INSERT INTO events VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      int id = base + i;
      if (i > 0) insert += ", ";
      // ts tracks insertion order (a timestamp); val is scrambled.
      insert += "(" + std::to_string(id) + ", " + std::to_string(id) +
                ".0, " + std::to_string((id * 37) % 1000) + ".5)";
    }
    if (!setup.Execute(insert).ok()) return false;
  }

  flock::sql::EngineOptions pruned_options;
  pruned_options.num_threads = 1;
  flock::sql::SqlEngine pruned_engine(&db, pruned_options);
  flock::sql::EngineOptions full_options;
  full_options.num_threads = 1;
  full_options.enable_zone_map_pruning = false;
  flock::sql::SqlEngine full_engine(&db, full_options);

  std::printf("selective-filter scan (200K rows, 1K-row segments):\n");
  std::printf("%22s %12s %12s %9s %10s %8s\n", "filter", "prune(ms)",
              "full(ms)", "speedup", "scanned", "pruned");
  for (double cutoff : {2000.0, 20000.0, 100000.0}) {
    std::string label = "ts < " + std::to_string(static_cast<int>(cutoff));
    std::string query =
        "SELECT COUNT(*), SUM(val) FROM events WHERE " + label;

    flock::Stopwatch pruned_timer;
    auto pruned_result = pruned_engine.Execute(query);
    double pruned_ms = pruned_timer.ElapsedMillis();
    flock::Stopwatch full_timer;
    auto full_result = full_engine.Execute(query);
    double full_ms = full_timer.ElapsedMillis();
    if (!pruned_result.ok() || !full_result.ok()) return false;
    // Identical results with pruning on and off, or the run is invalid.
    if (pruned_result->batch.ToString(10) != full_result->batch.ToString(10)) {
      std::fprintf(stderr, "pruning changed results for '%s'\n",
                   label.c_str());
      return false;
    }

    PruningRun run;
    run.label = label;
    run.pruned_ms = pruned_ms;
    run.full_ms = full_ms;
    run.rows = pruned_result->batch.num_rows();
    for (const auto& op : pruned_result->operator_metrics) {
      run.segments_scanned += op.segments_scanned;
      run.segments_pruned += op.segments_pruned;
    }
    if (run.segments_pruned == 0) {
      std::fprintf(stderr, "no segments pruned for '%s'\n", label.c_str());
      return false;
    }
    std::printf("%22s %12.2f %12.2f %8.2fx %10llu %8llu\n", label.c_str(),
                pruned_ms, full_ms, full_ms / pruned_ms,
                run.segments_scanned, run.segments_pruned);
    out->push_back(std::move(run));
  }
  std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  flock::storage::Database db;
  flock::workload::TpchWorkload tpch(7);
  if (!tpch.CreateSchema(&db).ok()) return 1;
  flock::Stopwatch load_timer;
  if (!tpch.PopulateData(&db, 10000).ok()) return 1;
  auto lineitem = db.GetTable("lineitem");
  std::printf("TPC-H execution benchmark: %zu lineitem rows loaded in "
              "%.0f ms\n\n",
              (*lineitem)->num_rows(), load_timer.ElapsedMillis());

  flock::sql::EngineOptions serial_options;
  serial_options.num_threads = 1;
  flock::sql::SqlEngine serial(&db, serial_options);
  flock::sql::EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  flock::sql::SqlEngine parallel(&db, parallel_options);

  std::printf("%4s %12s %12s %9s %10s\n", "Q", "1thr(ms)", "4thr(ms)",
              "speedup", "rows");
  std::vector<QueryRun> runs;
  double total_serial = 0.0;
  double total_parallel = 0.0;
  for (size_t t = 0; t < flock::workload::TpchWorkload::NumTemplates();
       ++t) {
    flock::workload::TpchWorkload generator(100 + t);
    std::string query = generator.Instantiate(t);

    flock::Stopwatch serial_timer;
    auto serial_result = serial.Execute(query);
    double serial_ms = serial_timer.ElapsedMillis();
    if (!serial_result.ok()) {
      std::fprintf(stderr, "Q%zu (1 thread) failed: %s\n", t + 1,
                   serial_result.status().ToString().c_str());
      return 1;
    }

    flock::Stopwatch parallel_timer;
    auto parallel_result = parallel.Execute(query);
    double parallel_ms = parallel_timer.ElapsedMillis();
    if (!parallel_result.ok()) {
      std::fprintf(stderr, "Q%zu (4 threads) failed: %s\n", t + 1,
                   parallel_result.status().ToString().c_str());
      return 1;
    }
    if (parallel_result->batch.num_rows() !=
        serial_result->batch.num_rows()) {
      std::fprintf(stderr, "Q%zu row-count mismatch: 1thr=%zu 4thr=%zu\n",
                   t + 1, serial_result->batch.num_rows(),
                   parallel_result->batch.num_rows());
      return 1;
    }

    total_serial += serial_ms;
    total_parallel += parallel_ms;
    std::printf("%4zu %12.2f %12.2f %8.2fx %10zu\n", t + 1, serial_ms,
                parallel_ms, serial_ms / parallel_ms,
                parallel_result->batch.num_rows());

    QueryRun run;
    run.template_index = t;
    run.serial_ms = serial_ms;
    run.parallel_ms = parallel_ms;
    run.rows = parallel_result->batch.num_rows();
    run.operators = std::move(parallel_result->operator_metrics);
    runs.push_back(std::move(run));
  }
  std::printf("\ntotal: %.1f ms serial, %.1f ms with 4 threads "
              "(%.2fx)\n\n",
              total_serial, total_parallel, total_serial / total_parallel);

  std::vector<PruningRun> pruning;
  if (!RunPruningBench(&pruning)) {
    std::fprintf(stderr, "selective-filter pruning benchmark failed\n");
    return 1;
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  EmitJson(out, runs, pruning);
  if (out != stdout) {
    std::fclose(out);
    std::printf("per-operator breakdown written to %s\n", argv[1]);
  }
  return 0;
}
