// Supplementary benchmark: end-to-end execution time of the 22 adapted
// TPC-H templates on generated data — evidence that the relational
// substrate under the in-DBMS inference results is a real, working
// analytic engine (joins, aggregation, sorting), not a scoring shim.
//
// Each template runs at num_threads=1 and num_threads=4 (the morsel-
// parallel physical executor partitions scans, join probes and
// aggregation across the pool), and the per-operator rows/time breakdown
// recorded by the physical operators is emitted as JSON — to stdout, or
// to a file when a path is passed as argv[1].

#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "sql/engine.h"
#include "workload/tpch.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

struct QueryRun {
  size_t template_index = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  size_t rows = 0;
  // Breakdown from the parallel run (cumulative across workers).
  std::vector<flock::sql::OperatorMetricsSnapshot> operators;
};

void EmitJson(std::FILE* out, const std::vector<QueryRun>& runs) {
  std::fprintf(out, "{\n  \"benchmark\": \"tpch_execution\",\n");
  std::fprintf(out, "  \"queries\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const QueryRun& run = runs[i];
    std::fprintf(out,
                 "    {\"q\": %zu, \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"rows\": %zu,\n"
                 "     \"operators\": [\n",
                 run.template_index + 1, run.serial_ms, run.parallel_ms,
                 run.rows);
    for (size_t j = 0; j < run.operators.size(); ++j) {
      const auto& op = run.operators[j];
      std::fprintf(out,
                   "      {\"name\": \"%s\", \"depth\": %d, "
                   "\"rows_in\": %llu, \"rows_out\": %llu, "
                   "\"wall_ms\": %.3f}%s\n",
                   JsonEscape(op.name).c_str(), op.depth,
                   static_cast<unsigned long long>(op.rows_in),
                   static_cast<unsigned long long>(op.rows_out), op.wall_ms,
                   j + 1 < run.operators.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  flock::storage::Database db;
  flock::workload::TpchWorkload tpch(7);
  if (!tpch.CreateSchema(&db).ok()) return 1;
  flock::Stopwatch load_timer;
  if (!tpch.PopulateData(&db, 10000).ok()) return 1;
  auto lineitem = db.GetTable("lineitem");
  std::printf("TPC-H execution benchmark: %zu lineitem rows loaded in "
              "%.0f ms\n\n",
              (*lineitem)->num_rows(), load_timer.ElapsedMillis());

  flock::sql::EngineOptions serial_options;
  serial_options.num_threads = 1;
  flock::sql::SqlEngine serial(&db, serial_options);
  flock::sql::EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  flock::sql::SqlEngine parallel(&db, parallel_options);

  std::printf("%4s %12s %12s %9s %10s\n", "Q", "1thr(ms)", "4thr(ms)",
              "speedup", "rows");
  std::vector<QueryRun> runs;
  double total_serial = 0.0;
  double total_parallel = 0.0;
  for (size_t t = 0; t < flock::workload::TpchWorkload::NumTemplates();
       ++t) {
    flock::workload::TpchWorkload generator(100 + t);
    std::string query = generator.Instantiate(t);

    flock::Stopwatch serial_timer;
    auto serial_result = serial.Execute(query);
    double serial_ms = serial_timer.ElapsedMillis();
    if (!serial_result.ok()) {
      std::fprintf(stderr, "Q%zu (1 thread) failed: %s\n", t + 1,
                   serial_result.status().ToString().c_str());
      return 1;
    }

    flock::Stopwatch parallel_timer;
    auto parallel_result = parallel.Execute(query);
    double parallel_ms = parallel_timer.ElapsedMillis();
    if (!parallel_result.ok()) {
      std::fprintf(stderr, "Q%zu (4 threads) failed: %s\n", t + 1,
                   parallel_result.status().ToString().c_str());
      return 1;
    }
    if (parallel_result->batch.num_rows() !=
        serial_result->batch.num_rows()) {
      std::fprintf(stderr, "Q%zu row-count mismatch: 1thr=%zu 4thr=%zu\n",
                   t + 1, serial_result->batch.num_rows(),
                   parallel_result->batch.num_rows());
      return 1;
    }

    total_serial += serial_ms;
    total_parallel += parallel_ms;
    std::printf("%4zu %12.2f %12.2f %8.2fx %10zu\n", t + 1, serial_ms,
                parallel_ms, serial_ms / parallel_ms,
                parallel_result->batch.num_rows());

    QueryRun run;
    run.template_index = t;
    run.serial_ms = serial_ms;
    run.parallel_ms = parallel_ms;
    run.rows = parallel_result->batch.num_rows();
    run.operators = std::move(parallel_result->operator_metrics);
    runs.push_back(std::move(run));
  }
  std::printf("\ntotal: %.1f ms serial, %.1f ms with 4 threads "
              "(%.2fx)\n\n",
              total_serial, total_parallel, total_serial / total_parallel);

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  EmitJson(out, runs);
  if (out != stdout) {
    std::fclose(out);
    std::printf("per-operator breakdown written to %s\n", argv[1]);
  }
  return 0;
}
