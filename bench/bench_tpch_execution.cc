// Supplementary benchmark: end-to-end execution time of the 22 adapted
// TPC-H templates on generated data — evidence that the relational
// substrate under the in-DBMS inference results is a real, working
// analytic engine (joins, aggregation, sorting), not a scoring shim.

#include <cstdio>

#include "common/stopwatch.h"
#include "sql/engine.h"
#include "workload/tpch.h"

int main() {
  flock::storage::Database db;
  flock::workload::TpchWorkload tpch(7);
  if (!tpch.CreateSchema(&db).ok()) return 1;
  flock::Stopwatch load_timer;
  if (!tpch.PopulateData(&db, 2000).ok()) return 1;
  auto lineitem = db.GetTable("lineitem");
  std::printf("TPC-H execution benchmark: %zu lineitem rows loaded in "
              "%.0f ms\n\n",
              (*lineitem)->num_rows(), load_timer.ElapsedMillis());

  flock::sql::EngineOptions options;
  options.num_threads = 0;
  flock::sql::SqlEngine engine(&db, options);

  std::printf("%4s %12s %10s\n", "Q", "time(ms)", "rows");
  double total = 0.0;
  for (size_t t = 0; t < flock::workload::TpchWorkload::NumTemplates();
       ++t) {
    flock::workload::TpchWorkload generator(100 + t);
    std::string query = generator.Instantiate(t);
    flock::Stopwatch timer;
    auto result = engine.Execute(query);
    double ms = timer.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s\n", t + 1,
                   result.status().ToString().c_str());
      return 1;
    }
    total += ms;
    std::printf("%4zu %12.2f %10zu\n", t + 1, ms,
                result->batch.num_rows());
  }
  std::printf("\ntotal: %.1f ms for all 22 queries\n", total);
  return 0;
}
