// Ablation C (DESIGN.md): the provenance-graph compression/summarization
// optimization the paper calls out under challenge C1 ("we develop
// optimized capture techniques, through compression and summarization").
// Reports raw vs compressed graph size on the Table-1 workloads.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "prov/catalog.h"
#include "prov/compression.h"
#include "prov/sql_capture.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"

namespace {

using flock::FormatWithCommas;

void Report(const std::string& name, const flock::prov::Catalog& raw) {
  flock::prov::Catalog compressed;
  flock::prov::CompressionStats stats;
  flock::Stopwatch timer;
  if (!flock::prov::CompressCatalog(raw, &compressed, &stats).ok()) {
    std::fprintf(stderr, "compression failed for %s\n", name.c_str());
    std::exit(1);
  }
  double ms = timer.ElapsedMillis();
  std::printf("%-8s %14s %14s %9.1f%% %12.2f\n", name.c_str(),
              FormatWithCommas(
                  static_cast<long long>(stats.SizeBefore()))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(stats.SizeAfter()))
                  .c_str(),
              100.0 * stats.Ratio(), ms);
}

}  // namespace

int main() {
  std::printf("Ablation C: provenance graph compression "
              "(template dedup + version-run summarization)\n\n");
  std::printf("%-8s %14s %14s %10s %12s\n", "Dataset", "raw(n+e)",
              "compressed", "ratio", "time(ms)");

  {
    flock::storage::Database db;
    flock::workload::TpchWorkload tpch(42);
    if (!tpch.CreateSchema(&db).ok()) return 1;
    flock::prov::Catalog catalog;
    flock::prov::SqlCaptureModule capture(&catalog, &db);
    for (const std::string& q : tpch.GenerateQueryStream(2208)) {
      (void)capture.CaptureStatement(q);
    }
    Report("TPC-H", catalog);
  }
  {
    flock::storage::Database db;
    flock::workload::TpccWorkload tpcc(42);
    if (!tpcc.CreateSchema(&db).ok()) return 1;
    flock::prov::Catalog catalog;
    flock::prov::SqlCaptureModule capture(&catalog, &db);
    for (const std::string& q : tpcc.GenerateQueryStream(2200)) {
      (void)capture.CaptureStatement(q);
    }
    Report("TPC-C", catalog);
  }

  std::printf("\nshape check: template-heavy workloads compress by an "
              "order of magnitude — queries collapse onto their "
              "templates and version chains onto runs, which is how the "
              "paper proposes keeping the provenance data model "
              "manageable (C1).\n");
  return 0;
}
