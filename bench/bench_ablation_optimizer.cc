// Ablation A (DESIGN.md): contribution of each cross-optimizer rule to
// the Figure-4 "SONNX-ext" speedup. Each configuration enables one rule
// (or all / none) and runs the Figure-4 threshold query.

#include <cstdio>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "flock/flock_engine.h"
#include "workload/synthetic.h"

namespace {

using flock::Stopwatch;
using flock::flock::CrossOptimizer;
using flock::flock::FlockEngine;
using flock::flock::FlockEngineOptions;

std::string TheQuery() {
  std::string args;
  for (int c = 0; c < 27; ++c) args += "f" + std::to_string(c) + ", ";
  args += "segment";
  return "SELECT COUNT(*) FROM clickstream WHERE f0 > 0.2 AND "
         "PREDICT(ctr, " + args + ") > 0.8";
}

struct Result {
  std::string name;
  double millis = 0.0;
  int64_t rows = 0;
  CrossOptimizer::Stats stats;  // from the spec-building (warm) rewrite
};

Result Run(FlockEngine* engine, const std::string& name, bool enabled,
           CrossOptimizer::Options options) {
  engine->set_enable_cross_optimizer(enabled);
  *engine->cross_optimizer()->mutable_options() = options;
  engine->models()->ClearSpecializations();
  std::string query = TheQuery();
  auto warm = engine->Execute(query);  // build specializations once
  if (!warm.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 warm.status().ToString().c_str());
    std::exit(1);
  }
  Result out;
  // The warm rewrite is the one that builds specializations and therefore
  // carries the interesting counters; later rewrites hit the cache.
  out.stats = engine->cross_optimizer()->stats();
  Stopwatch timer;
  auto result = engine->Execute(query);
  out.name = name;
  out.millis = timer.ElapsedMillis();
  out.rows = result->batch.column(0)->int_at(0);
  return out;
}

}  // namespace

int main() {
  FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 0;
  FlockEngine engine(engine_options);
  flock::workload::InferenceWorkloadOptions workload_options;
  workload_options.num_rows = 500000;
  auto workload =
      flock::workload::BuildInferenceWorkload(&engine, workload_options);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Ablation A: cross-optimizer rule contributions "
              "(500K rows, Figure-4 query)\n\n");
  std::printf("%-38s %12s %10s %10s\n", "configuration", "time(ms)",
              "speedup", "rows");

  CrossOptimizer::Options none;
  none.separate_ml_predicates = false;
  none.predicate_pushup = false;
  none.feature_pruning = false;
  none.model_compression = false;

  std::vector<Result> results;
  results.push_back(Run(&engine, "no cross-optimizer (SONNX)", false,
                        none));

  auto one = [&](const char* name, auto setter) {
    CrossOptimizer::Options options = none;
    setter(&options);
    results.push_back(Run(&engine, name, true, options));
  };
  one("+ ML-predicate separation only",
      [](CrossOptimizer::Options* o) { o->separate_ml_predicates = true; });
  one("+ predicate push-up only",
      [](CrossOptimizer::Options* o) { o->predicate_pushup = true; });
  one("+ feature pruning only",
      [](CrossOptimizer::Options* o) { o->feature_pruning = true; });
  one("+ model compression only",
      [](CrossOptimizer::Options* o) { o->model_compression = true; });

  CrossOptimizer::Options all;
  results.push_back(Run(&engine, "all rules (SONNX-ext)", true, all));

  double baseline = results[0].millis;
  for (const Result& result : results) {
    std::printf("%-38s %12.2f %9.2fx %10lld   "
                "(splits=%zu pushups=%zu pruned=%zu compressed=%zu)\n",
                result.name.c_str(), result.millis,
                baseline / result.millis,
                static_cast<long long>(result.rows),
                result.stats.filters_split,
                result.stats.predicates_pushed_up,
                result.stats.features_pruned,
                result.stats.tree_nodes_compressed);
    if (result.rows != results[0].rows) {
      std::fprintf(stderr, "MISMATCH in %s\n", result.name.c_str());
      return 1;
    }
  }
  return 0;
}
