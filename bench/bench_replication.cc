// Replication benchmark: how fast a replica catches up, how far it
// trails a writing primary at steady state, and what read latency looks
// like when read traffic fans out over 1/2/4 replicas.
//
// Three phases against one durable primary (users table + churn GBDT +
// a WAL fattened with single-row writes, so catch-up applies thousands
// of records):
//
//  * catch_up — a cold replica bootstraps from the snapshot and drains
//    the log; reported as records/s and MB/s of stream payload.
//  * steady_state — a replica streams in the background while the
//    primary keeps committing; the applier's lag gauge is sampled after
//    every commit, plus the time from the last commit to convergence.
//  * replica_reads — R caught-up replicas each behind their own
//    PredictionServer; 4 closed-loop clients send the mixed
//    SELECT/PREDICT template set round-robin across the fleet. Client-
//    side p50/p99 and aggregate qps per fleet size.
//
// Output: human-readable table on stdout plus JSON in the same schema
// family as the other benches (stdout, or a file when a path is passed
// as argv[1]).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "repl/applier.h"
#include "repl/publisher.h"
#include "serve/server.h"

namespace {

constexpr size_t kUserRows = 500;
constexpr size_t kWalFattenWrites = 2000;
constexpr size_t kSteadyWrites = 400;
constexpr size_t kReadClients = 4;
constexpr int kReadsPerClient = 400;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_bench_repl_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return std::string(dir);
}

/// users table + churn GBDT (the serving-bench shape), then
/// kWalFattenWrites single-row statements so the epoch log holds
/// thousands of records for the catch-up phase to chew through.
bool Check(const flock::Status& status, const char* what) {
  if (status.ok()) return true;
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return false;
}

bool BuildPrimary(flock::flock::FlockEngine* engine) {
  if (!Check(engine
                 ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                           "income DOUBLE, tenure DOUBLE, clicks DOUBLE, "
                           "plan VARCHAR)")
                 .status(),
             "create table")) {
    return false;
  }
  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(kUserRows, 5);
  std::vector<double> labels(kUserRows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < kUserRows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks;
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!Check(engine->Execute(insert).status(), "seed insert")) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 8;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  if (!Check(engine->DeployModel("churn", std::move(pipeline), "bench",
                                 "bench_replication"),
             "deploy model")) {
    return false;
  }

  for (size_t i = 0; i < kWalFattenWrites; ++i) {
    char sql[96];
    std::snprintf(sql, sizeof(sql),
                  "UPDATE users SET clicks = %.3f WHERE id = %zu",
                  static_cast<double>(i % 97), i % kUserRows);
    if (!Check(engine->Execute(sql).status(), "fatten write")) return false;
  }
  return true;
}

std::vector<std::string> ReadTemplates() {
  const std::string predict =
      "PREDICT(churn, age, income, tenure, clicks, plan)";
  std::vector<std::string> templates;
  for (int t : {100, 250, 400}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE id < " +
                        std::to_string(t));
  }
  for (const char* threshold : {"0.4", "0.6"}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE " + predict +
                        " > " + threshold);
  }
  for (int id : {17, 171}) {
    templates.push_back("SELECT id, " + predict + " FROM users WHERE id = " +
                        std::to_string(id));
  }
  return templates;
}

flock::flock::FlockEngineOptions SerialEngineOptions() {
  flock::flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

/// A memory-only replica wired to the primary's data directory.
struct Replica {
  std::unique_ptr<flock::flock::FlockEngine> engine;
  std::unique_ptr<flock::repl::ReplicationPublisher> publisher;
  std::unique_ptr<flock::repl::ReplicaApplier> applier;
};

Replica MakeReplica(const std::string& dir,
                    flock::repl::ReplicaApplierOptions options = {}) {
  Replica replica;
  replica.engine =
      std::make_unique<flock::flock::FlockEngine>(SerialEngineOptions());
  if (!replica.engine->OpenAsReplica().ok()) {
    std::fprintf(stderr, "OpenAsReplica failed\n");
    std::exit(1);
  }
  replica.publisher =
      std::make_unique<flock::repl::ReplicationPublisher>(dir);
  replica.applier = std::make_unique<flock::repl::ReplicaApplier>(
      replica.engine.get(), replica.publisher.get(), options);
  return replica;
}

struct CatchUpResult {
  uint64_t records = 0;
  uint64_t bytes = 0;
  double wall_ms = 0.0;
  double records_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

CatchUpResult RunCatchUp(const std::string& dir) {
  Replica replica = MakeReplica(dir);
  flock::Stopwatch wall;
  if (!replica.applier->CatchUp().ok()) {
    std::fprintf(stderr, "catch-up failed\n");
    std::exit(1);
  }
  CatchUpResult result;
  result.wall_ms = wall.ElapsedMillis();
  result.records = replica.applier->records_applied();
  result.bytes = replica.applier->bytes_received();
  result.records_per_sec = result.records / (result.wall_ms / 1000.0);
  result.mb_per_sec =
      (result.bytes / (1024.0 * 1024.0)) / (result.wall_ms / 1000.0);
  return result;
}

struct SteadyStateResult {
  uint64_t writes = 0;
  uint64_t max_lag = 0;
  double mean_lag = 0.0;
  double converge_ms = 0.0;
};

SteadyStateResult RunSteadyState(const std::string& dir,
                                 flock::flock::FlockEngine* primary) {
  flock::repl::ReplicaApplierOptions options;
  options.poll_interval_ms = 1;
  Replica replica = MakeReplica(dir, options);
  if (!replica.applier->CatchUp().ok()) {
    std::fprintf(stderr, "steady-state warmup failed\n");
    std::exit(1);
  }
  replica.applier->Start();

  SteadyStateResult result;
  result.writes = kSteadyWrites;
  uint64_t lag_sum = 0;
  for (size_t i = 0; i < kSteadyWrites; ++i) {
    char sql[96];
    std::snprintf(sql, sizeof(sql),
                  "UPDATE users SET tenure = %.3f WHERE id = %zu",
                  static_cast<double>(i % 11), i % kUserRows);
    if (!primary->Execute(sql).ok()) {
      std::fprintf(stderr, "steady-state write failed\n");
      std::exit(1);
    }
    uint64_t lag = replica.applier->lag_records();
    if (lag != UINT64_MAX) {
      lag_sum += lag;
      result.max_lag = std::max(result.max_lag, lag);
    }
  }
  result.mean_lag = static_cast<double>(lag_sum) / kSteadyWrites;
  flock::Stopwatch converge;
  while (!replica.applier->caught_up() ||
         replica.applier->lag_records() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.converge_ms = converge.ElapsedMillis();
  replica.applier->Stop();
  return result;
}

struct ReadResult {
  size_t replicas = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

ReadResult RunReads(const std::string& dir, size_t num_replicas) {
  std::vector<Replica> fleet;
  std::vector<std::unique_ptr<flock::serve::PredictionServer>> servers;
  for (size_t r = 0; r < num_replicas; ++r) {
    fleet.push_back(MakeReplica(dir));
    if (!fleet.back().applier->CatchUp().ok()) {
      std::fprintf(stderr, "replica %zu catch-up failed\n", r);
      std::exit(1);
    }
    servers.push_back(std::make_unique<flock::serve::PredictionServer>(
        fleet[r].engine.get()));
  }

  const std::vector<std::string> templates = ReadTemplates();
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(kReadClients);
  flock::Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kReadClients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(kReadsPerClient);
      // Each client pins to one replica round-robin by client index —
      // the fleet-level balancing a fronting proxy would do.
      flock::serve::LoopbackClient client(
          servers[c % num_replicas].get());
      if (!client.status().ok()) {
        errors.fetch_add(kReadsPerClient);
        return;
      }
      for (int i = 0; i < kReadsPerClient; ++i) {
        const std::string& sql = templates[(i + c * 3) % templates.size()];
        flock::Stopwatch request;
        auto result = client.Execute(sql);
        latencies[c].push_back(request.ElapsedMillis());
        if (!result.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = wall.ElapsedMillis();
  for (auto& server : servers) server->Shutdown();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  ReadResult result;
  result.replicas = num_replicas;
  result.requests = kReadClients * kReadsPerClient;
  result.errors = errors.load();
  result.wall_ms = wall_ms;
  result.qps = result.requests / (wall_ms / 1000.0);
  if (!all.empty()) {
    result.p50_ms = all[all.size() / 2];
    result.p99_ms = all[std::min(all.size() - 1,
                                 (all.size() * 99) / 100)];
  }
  return result;
}

void EmitJson(std::FILE* out, const CatchUpResult& catch_up,
              const SteadyStateResult& steady,
              const std::vector<ReadResult>& reads) {
  std::fprintf(out, "{\n  \"benchmark\": \"replication\",\n");
  std::fprintf(out,
               "  \"catch_up\": {\"records\": %llu, \"bytes\": %llu, "
               "\"wall_ms\": %.1f, \"records_per_sec\": %.0f, "
               "\"mb_per_sec\": %.2f},\n",
               static_cast<unsigned long long>(catch_up.records),
               static_cast<unsigned long long>(catch_up.bytes),
               catch_up.wall_ms, catch_up.records_per_sec,
               catch_up.mb_per_sec);
  std::fprintf(out,
               "  \"steady_state\": {\"writes\": %llu, "
               "\"mean_lag_records\": %.2f, \"max_lag_records\": %llu, "
               "\"converge_ms\": %.1f},\n",
               static_cast<unsigned long long>(steady.writes),
               steady.mean_lag,
               static_cast<unsigned long long>(steady.max_lag),
               steady.converge_ms);
  std::fprintf(out, "  \"replica_reads\": [\n");
  for (size_t i = 0; i < reads.size(); ++i) {
    const ReadResult& r = reads[i];
    std::fprintf(out,
                 "    {\"replicas\": %zu, \"clients\": %zu, "
                 "\"requests\": %llu, \"errors\": %llu, "
                 "\"wall_ms\": %.1f, \"qps\": %.0f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.replicas, kReadClients,
                 static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.errors), r.wall_ms,
                 r.qps, r.p50_ms, r.p99_ms,
                 i + 1 < reads.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = MakeTempDir();
  flock::flock::FlockEngine primary(SerialEngineOptions());
  if (!primary.Open(dir).ok()) {
    std::fprintf(stderr, "primary open failed\n");
    return 1;
  }
  std::printf("replication benchmark: %zu users + churn model, "
              "%zu catch-up records, %zu steady-state writes\n\n",
              kUserRows, kWalFattenWrites, kSteadyWrites);
  if (!BuildPrimary(&primary)) {
    std::fprintf(stderr, "primary setup failed\n");
    return 1;
  }

  CatchUpResult catch_up = RunCatchUp(dir);
  std::printf("catch-up:      %llu records in %.1f ms "
              "(%.0f records/s, %.2f MB/s)\n",
              static_cast<unsigned long long>(catch_up.records),
              catch_up.wall_ms, catch_up.records_per_sec,
              catch_up.mb_per_sec);

  SteadyStateResult steady = RunSteadyState(dir, &primary);
  std::printf("steady-state:  mean lag %.2f records, max %llu, "
              "converged %.1f ms after last write\n",
              steady.mean_lag,
              static_cast<unsigned long long>(steady.max_lag),
              steady.converge_ms);

  std::printf("\n%9s %8s %10s %10s %10s %6s\n", "replicas", "clients",
              "qps", "p50(ms)", "p99(ms)", "err");
  std::vector<ReadResult> reads;
  for (size_t replicas : {1, 2, 4}) {
    ReadResult r = RunReads(dir, replicas);
    std::printf("%9zu %8zu %10.0f %10.3f %10.3f %6llu\n", r.replicas,
                kReadClients, r.qps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.errors));
    reads.push_back(r);
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::printf("\nwriting JSON to %s\n", argv[1]);
  } else {
    std::printf("\n");
  }
  EmitJson(out, catch_up, steady, reads);
  if (out != stdout) std::fclose(out);
  return 0;
}
