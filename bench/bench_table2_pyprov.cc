// Reproduces Table 2 of §4.2 (Python provenance coverage):
//
//   Dataset    #Scripts  %Models Covered  %Training Datasets Covered
//   Kaggle     49        95%              61%
//   Microsoft  37        100%             100%
//
// Two synthetic corpora with generator-known ground truth stand in for the
// paper's Kaggle and Microsoft-internal script sets: the "Kaggle" corpus
// mixes in helper-function model construction and loaders outside the ML
// API knowledge base (the real coverage limits of static analysis), while
// the "internal" corpus uses only KB-known APIs.

#include <algorithm>
#include <cstdio>

#include "common/stopwatch.h"
#include "pyprov/analyzer.h"
#include "pyprov/py_parser.h"
#include "workload/scripts.h"

namespace {

using flock::pyprov::AnalysisResult;
using flock::pyprov::KnowledgeBase;
using flock::workload::GeneratedScript;

struct CoverageRow {
  std::string dataset;
  size_t scripts = 0;
  double models_pct = 0.0;
  double datasets_pct = 0.0;
  double analyze_ms = 0.0;
};

CoverageRow Measure(const std::string& name,
                    const std::vector<GeneratedScript>& corpus,
                    const KnowledgeBase& kb) {
  size_t true_models = 0, found_models = 0;
  size_t true_links = 0, found_links = 0;
  flock::Stopwatch timer;
  for (const GeneratedScript& generated : corpus) {
    auto script =
        flock::pyprov::ParseScript(generated.name, generated.source);
    if (!script.ok()) {
      std::fprintf(stderr, "parse failure in %s: %s\n",
                   generated.name.c_str(),
                   script.status().ToString().c_str());
      continue;
    }
    AnalysisResult result = flock::pyprov::Analyze(*script, kb);
    true_models += generated.true_models;
    found_models += std::min(result.models.size(), generated.true_models);
    true_links += generated.true_training_links;
    size_t links = 0;
    for (const auto& model : result.models) {
      if (!model.training_sources.empty()) ++links;
    }
    found_links += std::min(links, generated.true_training_links);
  }
  CoverageRow row;
  row.dataset = name;
  row.scripts = corpus.size();
  row.analyze_ms = timer.ElapsedMillis();
  row.models_pct = 100.0 * static_cast<double>(found_models) /
                   static_cast<double>(true_models);
  row.datasets_pct = 100.0 * static_cast<double>(found_links) /
                     static_cast<double>(true_links);
  return row;
}

}  // namespace

int main() {
  KnowledgeBase kb = KnowledgeBase::Default();
  std::printf("Table 2: Python provenance module coverage\n");
  std::printf("%-10s %9s %16s %27s\n", "Dataset", "#Scripts",
              "%Models Covered", "%Training Datasets Covered");

  CoverageRow kaggle =
      Measure("Kaggle", flock::workload::GenerateKaggleCorpus(42), kb);
  std::printf("%-10s %9zu %15.0f%% %26.0f%%   (paper: 95%% / 61%%)\n",
              kaggle.dataset.c_str(), kaggle.scripts, kaggle.models_pct,
              kaggle.datasets_pct);

  CoverageRow internal =
      Measure("Microsoft", flock::workload::GenerateInternalCorpus(42),
              kb);
  std::printf("%-10s %9zu %15.0f%% %26.0f%%   (paper: 100%% / 100%%)\n",
              internal.dataset.c_str(), internal.scripts,
              internal.models_pct, internal.datasets_pct);

  std::printf("\nanalysis latency: Kaggle %.2f ms total, internal %.2f ms "
              "total (knowledge base: %zu API entries)\n",
              kaggle.analyze_ms, internal.analyze_ms, kb.size());

  std::printf("\npaper shape checks:\n");
  std::printf("  disciplined corpus at 100/100: %s\n",
              (internal.models_pct == 100.0 &&
               internal.datasets_pct == 100.0)
                  ? "yes"
                  : "NO (unexpected)");
  std::printf("  messy corpus loses more dataset coverage than model "
              "coverage: %s\n",
              kaggle.datasets_pct < kaggle.models_pct ? "yes"
                                                      : "NO (unexpected)");
  return 0;
}
