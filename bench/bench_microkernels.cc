// Google-benchmark microkernel suite: throughput of the building blocks
// behind the Figure-4 macro numbers — interpreted vs vectorized scoring,
// tree traversal with and without threshold short-circuiting, table scan,
// predicate evaluation, and provenance capture per statement.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "flock/model_registry.h"
#include "flock/scoring.h"
#include "ml/pipeline.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "ml/tree.h"
#include "prov/catalog.h"
#include "prov/sql_capture.h"
#include "sql/engine.h"
#include "storage/database.h"
#include "workload/tpch.h"

namespace {

using flock::Random;

/// Shared fixture data: a trained GBDT pipeline over 12 numeric inputs.
struct Fixture {
  flock::ml::Pipeline pipeline;
  flock::ml::ModelGraph graph;
  flock::ml::Matrix raw;
  flock::flock::ModelEntry entry;

  Fixture() {
    const size_t features = 12;
    const size_t rows = 4096;
    Random rng(7);
    flock::ml::Dataset data;
    data.x = flock::ml::Matrix(rows, features);
    data.y.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < features; ++c) {
        data.x.at(r, c) = rng.NextGaussian();
      }
      data.y[r] = data.x.at(r, 0) - data.x.at(r, 1) > 0 ? 1.0 : 0.0;
    }
    std::vector<flock::ml::FeatureSpec> specs;
    for (size_t c = 0; c < features; ++c) {
      specs.push_back(flock::ml::FeatureSpec{
          "f" + std::to_string(c), flock::ml::FeatureKind::kNumeric, {}});
    }
    pipeline.SetInputs(std::move(specs));
    pipeline.FitFeaturizers(data.x, true, true);
    flock::ml::Dataset transformed;
    transformed.x = pipeline.Transform(data.x);
    transformed.y = data.y;
    flock::ml::GbtOptions gbt;
    gbt.num_trees = 30;
    gbt.max_depth = 5;
    pipeline.SetTreeModel(
        flock::ml::TrainGradientBoosting(transformed, gbt));
    graph = *pipeline.Compile();
    raw = data.x;

    entry.name = "bench";
    entry.pipeline = pipeline;
    entry.graph = graph;
    flock::flock::ModelRegistry::AnalyzeEntry(&entry);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_RowScorerInterpreted(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::RowScorer scorer(f.pipeline);
  std::vector<double> row(f.raw.cols());
  size_t i = 0;
  for (auto _ : state) {
    const double* src = f.raw.row(i % f.raw.rows());
    row.assign(src, src + f.raw.cols());
    benchmark::DoNotOptimize(scorer.Score(row));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RowScorerInterpreted);

void BM_GraphRuntimeVectorized(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::GraphRuntime runtime(&f.graph);
  for (auto _ : state) {
    auto scores = runtime.RunToScores(f.raw);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.raw.rows()));
}
BENCHMARK(BM_GraphRuntimeVectorized);

void BM_ThresholdShortCircuit(benchmark::State& state) {
  Fixture& f = GetFixture();
  double threshold = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto verdicts = flock::flock::ScoreThresholdBatch(
        f.entry, f.raw, threshold, flock::flock::ThresholdOp::kGt);
    benchmark::DoNotOptimize(verdicts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.raw.rows()));
}
BENCHMARK(BM_ThresholdShortCircuit)->Arg(50)->Arg(80)->Arg(95);

void BM_TableScan(benchmark::State& state) {
  flock::storage::Schema schema(
      {flock::storage::ColumnDef{"a", flock::storage::DataType::kDouble,
                                 false},
       flock::storage::ColumnDef{"b", flock::storage::DataType::kDouble,
                                 false}});
  flock::storage::Table table("t", schema);
  flock::storage::RecordBatch staging(schema);
  Random rng(3);
  for (int i = 0; i < 100000; ++i) {
    (void)staging.AppendRow({flock::storage::Value::Double(rng.NextDouble()),
                             flock::storage::Value::Double(rng.NextDouble())});
  }
  (void)table.AppendBatch(staging);
  for (auto _ : state) {
    for (size_t begin = 0; begin < table.num_rows(); begin += 2048) {
      auto batch = table.ScanRange(begin, begin + 2048);
      benchmark::DoNotOptimize(batch);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_TableScan);

void BM_SqlFilterQuery(benchmark::State& state) {
  static flock::storage::Database* db = [] {
    auto* database = new flock::storage::Database();
    flock::sql::EngineOptions options;
    options.num_threads = 1;
    flock::sql::SqlEngine setup(database, options);
    (void)setup.Execute("CREATE TABLE t (a DOUBLE, b DOUBLE)");
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 2000; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i % 97) + ".5, " +
                std::to_string(i % 31) + ".25)";
    }
    (void)setup.Execute(insert);
    return database;
  }();
  flock::sql::EngineOptions options;
  options.num_threads = 1;
  options.keep_query_log = false;
  flock::sql::SqlEngine engine(db, options);
  for (auto _ : state) {
    auto result =
        engine.Execute("SELECT COUNT(*) FROM t WHERE a > 50 AND b < 20");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlFilterQuery);

void BM_ProvenanceCapturePerQuery(benchmark::State& state) {
  static flock::storage::Database* db = [] {
    auto* database = new flock::storage::Database();
    flock::workload::TpchWorkload tpch;
    (void)tpch.CreateSchema(database);
    return database;
  }();
  flock::workload::TpchWorkload tpch(11);
  auto queries = tpch.GenerateQueryStream(22);
  flock::prov::Catalog catalog;
  flock::prov::SqlCaptureModule capture(&catalog, db);
  size_t i = 0;
  for (auto _ : state) {
    (void)capture.CaptureStatement(queries[i % queries.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProvenanceCapturePerQuery);

}  // namespace

BENCHMARK_MAIN();
