// Google-benchmark microkernel suite: throughput of the building blocks
// behind the Figure-4 macro numbers — interpreted vs compiled scoring
// (RowScorer vs GraphRuntime vs the dense-slot DenseKernel), tree
// traversal with and without threshold short-circuiting, table scan,
// predicate evaluation, and provenance capture per statement.
//
// Besides the google-benchmark tables, main() runs a dedicated
// kernel-vs-interpreted comparison and emits it as JSON (stdout, or a
// file when a non-flag path is passed as argv[1]) including the
// single-row and batch speedup factors of the dense kernel over the
// named-row interpreted path it replaced on the serving hot path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/model_registry.h"
#include "flock/scoring.h"
#include "ml/dense_kernel.h"
#include "ml/pipeline.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "ml/tree.h"
#include "prov/catalog.h"
#include "prov/sql_capture.h"
#include "sql/engine.h"
#include "storage/database.h"
#include "workload/tpch.h"

namespace {

using flock::Random;

/// Shared fixture data: a trained GBDT pipeline over 12 numeric inputs.
struct Fixture {
  flock::ml::Pipeline pipeline;
  flock::ml::ModelGraph graph;
  flock::ml::Matrix raw;
  flock::flock::ModelEntry entry;

  Fixture() {
    const size_t features = 12;
    const size_t rows = 4096;
    Random rng(7);
    flock::ml::Dataset data;
    data.x = flock::ml::Matrix(rows, features);
    data.y.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < features; ++c) {
        data.x.at(r, c) = rng.NextGaussian();
      }
      data.y[r] = data.x.at(r, 0) - data.x.at(r, 1) > 0 ? 1.0 : 0.0;
    }
    std::vector<flock::ml::FeatureSpec> specs;
    for (size_t c = 0; c < features; ++c) {
      specs.push_back(flock::ml::FeatureSpec{
          "f" + std::to_string(c), flock::ml::FeatureKind::kNumeric, {}});
    }
    pipeline.SetInputs(std::move(specs));
    pipeline.FitFeaturizers(data.x, true, true);
    flock::ml::Dataset transformed;
    transformed.x = pipeline.Transform(data.x);
    transformed.y = data.y;
    flock::ml::GbtOptions gbt;
    gbt.num_trees = 30;
    gbt.max_depth = 5;
    pipeline.SetTreeModel(
        flock::ml::TrainGradientBoosting(transformed, gbt));
    graph = *pipeline.Compile();
    raw = data.x;

    entry.name = "bench";
    entry.pipeline = pipeline;
    entry.graph = graph;
    flock::flock::ModelRegistry::AnalyzeEntry(&entry);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_RowScorerInterpreted(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::RowScorer scorer(f.pipeline);
  std::vector<double> row(f.raw.cols());
  size_t i = 0;
  for (auto _ : state) {
    const double* src = f.raw.row(i % f.raw.rows());
    row.assign(src, src + f.raw.cols());
    benchmark::DoNotOptimize(scorer.Score(row));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RowScorerInterpreted);

void BM_GraphRuntimeVectorized(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::GraphRuntime runtime(&f.graph);
  for (auto _ : state) {
    auto scores = runtime.RunToScores(f.raw);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.raw.rows()));
}
BENCHMARK(BM_GraphRuntimeVectorized);

void BM_DenseKernelSingleRow(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::DenseKernel kernel(f.graph);
  flock::ml::DenseKernelScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel.ScoreRow(f.raw.row(i % f.raw.rows()), &scratch));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseKernelSingleRow);

void BM_DenseKernelBatch(benchmark::State& state) {
  Fixture& f = GetFixture();
  flock::ml::DenseKernel kernel(f.graph);
  flock::ml::DenseKernelScratch scratch;
  std::vector<double> scores;
  for (auto _ : state) {
    (void)kernel.ScoreBatch(f.raw, &scratch, &scores);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.raw.rows()));
}
BENCHMARK(BM_DenseKernelBatch);

void BM_ThresholdShortCircuit(benchmark::State& state) {
  Fixture& f = GetFixture();
  double threshold = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto verdicts = flock::flock::ScoreThresholdBatch(
        f.entry, f.raw, threshold, flock::flock::ThresholdOp::kGt);
    benchmark::DoNotOptimize(verdicts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.raw.rows()));
}
BENCHMARK(BM_ThresholdShortCircuit)->Arg(50)->Arg(80)->Arg(95);

void BM_TableScan(benchmark::State& state) {
  flock::storage::Schema schema(
      {flock::storage::ColumnDef{"a", flock::storage::DataType::kDouble,
                                 false},
       flock::storage::ColumnDef{"b", flock::storage::DataType::kDouble,
                                 false}});
  flock::storage::Table table("t", schema);
  flock::storage::RecordBatch staging(schema);
  Random rng(3);
  for (int i = 0; i < 100000; ++i) {
    (void)staging.AppendRow({flock::storage::Value::Double(rng.NextDouble()),
                             flock::storage::Value::Double(rng.NextDouble())});
  }
  (void)table.AppendBatch(staging);
  for (auto _ : state) {
    for (size_t begin = 0; begin < table.num_rows(); begin += 2048) {
      auto batch = table.ScanRange(begin, begin + 2048);
      benchmark::DoNotOptimize(batch);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_TableScan);

void BM_SqlFilterQuery(benchmark::State& state) {
  static flock::storage::Database* db = [] {
    auto* database = new flock::storage::Database();
    flock::sql::EngineOptions options;
    options.num_threads = 1;
    flock::sql::SqlEngine setup(database, options);
    (void)setup.Execute("CREATE TABLE t (a DOUBLE, b DOUBLE)");
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 2000; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i % 97) + ".5, " +
                std::to_string(i % 31) + ".25)";
    }
    (void)setup.Execute(insert);
    return database;
  }();
  flock::sql::EngineOptions options;
  options.num_threads = 1;
  options.keep_query_log = false;
  flock::sql::SqlEngine engine(db, options);
  for (auto _ : state) {
    auto result =
        engine.Execute("SELECT COUNT(*) FROM t WHERE a > 50 AND b < 20");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlFilterQuery);

void BM_ProvenanceCapturePerQuery(benchmark::State& state) {
  static flock::storage::Database* db = [] {
    auto* database = new flock::storage::Database();
    flock::workload::TpchWorkload tpch;
    (void)tpch.CreateSchema(database);
    return database;
  }();
  flock::workload::TpchWorkload tpch(11);
  auto queries = tpch.GenerateQueryStream(22);
  flock::prov::Catalog catalog;
  flock::prov::SqlCaptureModule capture(&catalog, db);
  size_t i = 0;
  for (auto _ : state) {
    (void)capture.CaptureStatement(queries[i % queries.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProvenanceCapturePerQuery);

/// The headline comparison behind the dense-kernel PR: score the same
/// rows through the interpreted RowScorer (named-row maps, the old
/// serving path), the GraphRuntime (per-op matrices), and the DenseKernel
/// (slot-compiled, reused scratch), then report ns/row and speedups.
struct KernelComparison {
  double interpreted_ns_per_row = 0.0;
  double kernel_row_ns_per_row = 0.0;
  double graph_batch_ns_per_row = 0.0;
  double kernel_batch_ns_per_row = 0.0;
  size_t rows = 0;
  size_t passes = 0;

  double single_row_speedup() const {
    return kernel_row_ns_per_row > 0.0
               ? interpreted_ns_per_row / kernel_row_ns_per_row
               : 0.0;
  }
  double batch_speedup_vs_graph() const {
    return kernel_batch_ns_per_row > 0.0
               ? graph_batch_ns_per_row / kernel_batch_ns_per_row
               : 0.0;
  }
};

KernelComparison RunKernelComparison() {
  Fixture& f = GetFixture();
  KernelComparison result;
  result.rows = f.raw.rows();
  result.passes = 24;
  const size_t total_rows = result.rows * result.passes;

  flock::ml::RowScorer interpreted(f.pipeline);
  flock::ml::DenseKernel kernel(f.graph);
  flock::ml::GraphRuntime runtime(&f.graph);
  flock::ml::DenseKernelScratch scratch;
  std::vector<double> row(f.raw.cols());
  std::vector<double> scores;
  double sink = 0.0;

  // Warm every path (allocations, lazy caches) before timing.
  row.assign(f.raw.row(0), f.raw.row(0) + f.raw.cols());
  sink += interpreted.Score(row);
  sink += kernel.ScoreRow(f.raw.row(0), &scratch);
  (void)kernel.ScoreBatch(f.raw, &scratch, &scores);
  sink += runtime.RunToScores(f.raw).value()[0];

  flock::Stopwatch timer;
  for (size_t p = 0; p < result.passes; ++p) {
    for (size_t r = 0; r < f.raw.rows(); ++r) {
      const double* src = f.raw.row(r);
      row.assign(src, src + f.raw.cols());
      sink += interpreted.Score(row);
    }
  }
  result.interpreted_ns_per_row =
      timer.ElapsedMicros() * 1e3 / static_cast<double>(total_rows);

  timer = flock::Stopwatch();
  for (size_t p = 0; p < result.passes; ++p) {
    for (size_t r = 0; r < f.raw.rows(); ++r) {
      sink += kernel.ScoreRow(f.raw.row(r), &scratch);
    }
  }
  result.kernel_row_ns_per_row =
      timer.ElapsedMicros() * 1e3 / static_cast<double>(total_rows);

  timer = flock::Stopwatch();
  for (size_t p = 0; p < result.passes; ++p) {
    auto batch = runtime.RunToScores(f.raw);
    sink += (*batch)[0];
  }
  result.graph_batch_ns_per_row =
      timer.ElapsedMicros() * 1e3 / static_cast<double>(total_rows);

  timer = flock::Stopwatch();
  for (size_t p = 0; p < result.passes; ++p) {
    (void)kernel.ScoreBatch(f.raw, &scratch, &scores);
    sink += scores[0];
  }
  result.kernel_batch_ns_per_row =
      timer.ElapsedMicros() * 1e3 / static_cast<double>(total_rows);

  // Keep the scores alive so nothing is optimized away.
  if (sink == 0.12345) std::fprintf(stderr, "sink %f\n", sink);
  return result;
}

void EmitKernelJson(std::FILE* out, const KernelComparison& c) {
  std::fprintf(out, "{\n  \"benchmark\": \"scoring_kernel\",\n");
  std::fprintf(out, "  \"rows\": %zu,\n  \"passes\": %zu,\n", c.rows,
               c.passes);
  std::fprintf(out, "  \"interpreted_ns_per_row\": %.1f,\n",
               c.interpreted_ns_per_row);
  std::fprintf(out, "  \"dense_kernel_single_row_ns_per_row\": %.1f,\n",
               c.kernel_row_ns_per_row);
  std::fprintf(out, "  \"graph_runtime_batch_ns_per_row\": %.1f,\n",
               c.graph_batch_ns_per_row);
  std::fprintf(out, "  \"dense_kernel_batch_ns_per_row\": %.1f,\n",
               c.kernel_batch_ns_per_row);
  std::fprintf(out, "  \"kernel_single_row_speedup\": %.2f,\n",
               c.single_row_speedup());
  std::fprintf(out, "  \"kernel_batch_speedup_vs_graph\": %.2f\n",
               c.batch_speedup_vs_graph());
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  // A leading non-flag argument is the JSON output path (flags go to
  // google-benchmark untouched).
  const char* json_path = nullptr;
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    json_path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  KernelComparison comparison = RunKernelComparison();
  std::printf("\nkernel vs interpreted: %.1f ns/row -> %.1f ns/row "
              "single-row (%.1fx), %.1f ns/row -> %.1f ns/row batch vs "
              "graph runtime (%.1fx)\n",
              comparison.interpreted_ns_per_row,
              comparison.kernel_row_ns_per_row,
              comparison.single_row_speedup(),
              comparison.graph_batch_ns_per_row,
              comparison.kernel_batch_ns_per_row,
              comparison.batch_speedup_vs_graph());
  std::FILE* out = stdout;
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }
  EmitKernelJson(out, comparison);
  if (out != stdout) {
    std::fclose(out);
    std::printf("kernel comparison written to %s\n", json_path);
  }
  benchmark::Shutdown();
  return 0;
}
