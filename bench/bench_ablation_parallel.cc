// Ablation B (DESIGN.md): intra-query parallel scaling of the in-DBMS
// Predict operator — the mechanism behind the paper's "up to 5.5x over
// standalone ONNX (due to automatic parallelization of the inference task
// in SQL Server)".

#include <cstdio>
#include <thread>

#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "workload/synthetic.h"

namespace {

std::string TheQuery() {
  std::string args;
  for (int c = 0; c < 27; ++c) args += "f" + std::to_string(c) + ", ";
  args += "segment";
  return "SELECT COUNT(*) FROM clickstream WHERE PREDICT(ctr, " + args +
         ") > 0.8";
}

}  // namespace

int main() {
  const size_t hardware = std::thread::hardware_concurrency();
  std::printf("Ablation B: morsel-parallel scaling of in-DBMS inference "
              "(500K rows; host has %zu hardware threads)\n\n",
              hardware);
  std::printf("%8s %12s %10s %12s\n", "threads", "time(ms)", "speedup",
              "rows/sec");

  double serial_ms = 0.0;
  for (size_t threads = 1; threads <= hardware * 2; threads *= 2) {
    flock::flock::FlockEngineOptions options;
    options.sql.num_threads = threads;
    options.enable_cross_optimizer = false;  // isolate parallelism
    flock::flock::FlockEngine engine(options);
    flock::workload::InferenceWorkloadOptions workload_options;
    workload_options.num_rows = 500000;
    auto workload = flock::workload::BuildInferenceWorkload(
        &engine, workload_options);
    if (!workload.ok()) return 1;

    std::string query = TheQuery();
    (void)engine.Execute(query);  // warm
    flock::Stopwatch timer;
    auto result = engine.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double ms = timer.ElapsedMillis();
    if (threads == 1) serial_ms = ms;
    std::printf("%8zu %12.2f %9.2fx %12.0f\n", threads, ms,
                serial_ms / ms, 500000.0 / (ms / 1000.0));
  }
  if (hardware <= 1) {
    std::printf("\nNOTE: this host exposes a single hardware thread, so "
                "the parallel component of the paper's in-DB advantage "
                "is structurally capped at ~1x here (extra workers only "
                "add coordination overhead). Re-run on a multi-core "
                "machine to observe the scaling curve.\n");
  } else {
    std::printf("\nshape check: speedup grows with threads and saturates "
                "near the core count — the in-DB advantage the paper "
                "attributes to automatic parallelization.\n");
  }
  return 0;
}
