// Reproduces Figure 3 of §3: the competitive-landscape matrix ("ML Systems
// in the public cloud and major companies") and the two trends the paper
// reads off it.

#include <cstdio>

#include "workload/landscape.h"

int main() {
  flock::workload::Landscape landscape;
  std::printf("Figure 3: ML systems landscape "
              "(Good / OK / No / ? = unknown)\n\n");
  std::printf("%s\n", landscape.Render().c_str());

  std::printf("per-system category scores (0=No .. 2=Good):\n");
  std::printf("%-18s %10s %10s %10s\n", "system", "training", "serving",
              "data-mgmt");
  for (const auto& system : landscape.systems()) {
    std::printf("%-18s %10.2f %10.2f %10.2f %s\n",
                system.name.substr(0, 18).c_str(),
                landscape.CategoryScore(
                    system, flock::workload::FeatureCategory::kTraining),
                landscape.CategoryScore(
                    system, flock::workload::FeatureCategory::kServing),
                landscape.CategoryScore(
                    system,
                    flock::workload::FeatureCategory::kDataManagement),
                system.proprietary ? "(proprietary)" : "");
  }

  std::printf("\npaper trend checks:\n");
  std::printf("  1) 'mature proprietary solutions have stronger support "
              "for data management': gap = %+.2f (positive reproduces the "
              "trend)\n",
              landscape.ProprietaryDataManagementGap());
  std::printf("  2) 'providing complete and usable third-party solutions "
              "is non-trivial': only %.0f%% of cells are Good\n",
              100.0 * landscape.OverallGoodFraction());
  return 0;
}
