// Serving-layer load test: closed-loop clients drive a mixed read/PREDICT
// template workload through the concurrent prediction server (sessions +
// admission control + plan cache) at every combination of
// {1, 4, 8} client threads x {1, 4} serving workers.
//
// Each client loops over a small set of hot statement templates with a
// few literal variants (so the plan cache should serve >90 % of requests)
// and immediately issues the next request when one completes. Reported
// per configuration: throughput, latency percentiles from the serving
// histogram, shed/error counts and the plan-cache hit rate — as JSON in
// the same schema family as bench_tpch_execution (stdout, or a file when
// a path is passed as argv[1]).
//
// The engine executes each statement serially (sql.num_threads = 1), so
// any scaling comes from the serving worker pool; on a single-core host
// the 4-worker column measures admission overhead, not parallel speedup.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "serve/server.h"

namespace {

constexpr size_t kUserRows = 2000;
constexpr int kRequestsPerClient = 2000;

/// users table + churn GBDT, the demo shape shared with
/// examples/flock_server and the serving tests.
bool BuildDatabase(flock::flock::FlockEngine* engine) {
  if (!engine
           ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                     "income DOUBLE, tenure DOUBLE, clicks DOUBLE, "
                     "plan VARCHAR)")
           .ok()) {
    return false;
  }
  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(kUserRows, 5);
  std::vector<double> labels(kUserRows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < kUserRows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks;
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!engine->Execute(insert).ok()) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 10;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  return engine
      ->DeployModel("churn", std::move(pipeline), "bench",
                    "bench_serving_throughput")
      .ok();
}

/// Hot templates x a few literal variants each: repeated enough for the
/// plan cache, varied enough to exercise more than one entry. The mix is
/// scoring-heavy (half the statements call PREDICT).
std::vector<std::string> BuildTemplates() {
  const std::string predict =
      "PREDICT(churn, age, income, tenure, clicks, plan)";
  std::vector<std::string> templates;
  for (int t : {200, 400, 600, 800}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE id < " +
                        std::to_string(t));
  }
  for (const char* threshold : {"0.3", "0.5", "0.7", "0.9"}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE " + predict +
                        " > " + threshold);
  }
  for (int id : {17, 171, 1071}) {
    templates.push_back("SELECT id, " + predict + " FROM users WHERE id = " +
                        std::to_string(id));
  }
  for (const char* plan : {"basic", "pro"}) {
    templates.push_back(std::string("SELECT AVG(") + predict +
                        ") FROM users WHERE plan = '" + plan + "'");
  }
  return templates;
}

struct ConfigResult {
  size_t clients = 0;
  size_t workers = 0;
  bool traced = false;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
};

ConfigResult RunConfig(size_t clients, size_t workers,
                       bool traced = false) {
  // A fresh engine per configuration so plan-cache and latency stats are
  // not polluted by the previous run.
  flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::flock::FlockEngine engine(engine_options);
  if (!BuildDatabase(&engine)) {
    std::fprintf(stderr, "database setup failed\n");
    std::exit(1);
  }
  flock::serve::ServerOptions options;
  options.admission.num_workers = workers;
  // Closed-loop clients block on their own request, so the queue never
  // needs more than one waiting slot per client; no shedding expected.
  options.admission.max_queue_depth = clients * 2;
  flock::serve::PredictionServer server(&engine, options);

  const std::vector<std::string> templates = BuildTemplates();
  std::atomic<uint64_t> errors{0};
  flock::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      flock::serve::LoopbackClient client(&server);
      if (!client.status().ok()) {
        errors.fetch_add(kRequestsPerClient);
        return;
      }
      if (traced) {
        auto session = server.sessions()->Get(client.session_id());
        if (session.ok()) (*session)->set_trace(true);
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t q = (i + c * 3) % templates.size();
        auto result = client.Execute(templates[q]);
        if (!result.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = wall.ElapsedMillis();

  flock::serve::ServerMetricsSnapshot snapshot = server.Snapshot();
  ConfigResult result;
  result.clients = clients;
  result.workers = workers;
  result.traced = traced;
  result.requests = clients * kRequestsPerClient;
  result.errors = errors.load();
  result.shed = snapshot.requests_shed;
  result.wall_ms = wall_ms;
  result.qps = result.requests / (wall_ms / 1000.0);
  result.p50_ms = snapshot.p50_ms;
  result.p95_ms = snapshot.p95_ms;
  result.p99_ms = snapshot.p99_ms;
  result.cache_hit_rate = snapshot.plan_cache_hit_rate;
  return result;
}

void EmitJson(std::FILE* out, const std::vector<ConfigResult>& results,
              const ConfigResult& trace_off, const ConfigResult& trace_on) {
  std::fprintf(out, "{\n  \"benchmark\": \"serving_throughput\",\n");
  std::fprintf(out, "  \"requests_per_client\": %d,\n", kRequestsPerClient);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(out,
                 "    {\"clients\": %zu, \"workers\": %zu, "
                 "\"requests\": %llu, \"errors\": %llu, \"shed\": %llu,\n"
                 "     \"wall_ms\": %.1f, \"qps\": %.0f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 r.clients, r.workers,
                 static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.errors),
                 static_cast<unsigned long long>(r.shed), r.wall_ms, r.qps,
                 r.p50_ms, r.p95_ms, r.p99_ms, r.cache_hit_rate,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Tracing overhead: the same config run with span recording off vs on
  // (every request records a full span tree when on). Negative overhead
  // = measurement noise.
  const double overhead_pct =
      trace_off.qps > 0.0
          ? 100.0 * (trace_off.qps - trace_on.qps) / trace_off.qps
          : 0.0;
  std::fprintf(out,
               "  \"tracing_overhead\": {\"clients\": %zu, "
               "\"workers\": %zu,\n"
               "    \"qps_tracing_off\": %.0f, \"qps_tracing_on\": %.0f, "
               "\"p50_ms_tracing_off\": %.3f, \"p50_ms_tracing_on\": %.3f, "
               "\"overhead_pct\": %.2f}\n",
               trace_off.clients, trace_off.workers, trace_off.qps,
               trace_on.qps, trace_off.p50_ms, trace_on.p50_ms,
               overhead_pct);
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("serving throughput benchmark: %zu users, "
              "%d requests/client, mixed read/PREDICT templates\n\n",
              kUserRows, kRequestsPerClient);
  std::printf("%8s %8s %10s %10s %9s %9s %9s %6s %5s %9s\n", "clients",
              "workers", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
              "hit_rate", "shed", "err", "wall(ms)");

  std::vector<ConfigResult> results;
  for (size_t workers : {1, 4}) {
    for (size_t clients : {1, 4, 8}) {
      ConfigResult r = RunConfig(clients, workers);
      std::printf("%8zu %8zu %10.0f %10.3f %9.3f %9.3f %8.1f%% %6llu "
                  "%5llu %9.0f\n",
                  r.clients, r.workers, r.qps, r.p50_ms, r.p95_ms,
                  r.p99_ms, 100.0 * r.cache_hit_rate,
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.errors), r.wall_ms);
      results.push_back(r);
    }
  }

  // Tracing overhead at the saturated config: same load, spans recorded
  // for every request vs none. The acceptance bar is tracing-on staying
  // within a few percent of tracing-off.
  ConfigResult trace_off = RunConfig(4, 4, false);
  ConfigResult trace_on = RunConfig(4, 4, true);
  std::printf("\ntracing off: %8.0f qps   tracing on: %8.0f qps   "
              "overhead: %.2f%%\n",
              trace_off.qps, trace_on.qps,
              trace_off.qps > 0.0
                  ? 100.0 * (trace_off.qps - trace_on.qps) / trace_off.qps
                  : 0.0);

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::printf("\n");
  EmitJson(out, results, trace_off, trace_on);
  if (out != stdout) {
    std::fclose(out);
    std::printf("results written to %s\n", argv[1]);
  }
  return 0;
}
