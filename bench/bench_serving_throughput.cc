// Serving-layer load test: closed-loop clients drive a mixed read/PREDICT
// template workload through the concurrent prediction server (sessions +
// admission control + plan cache) at every combination of
// {1, 4, 8} client threads x {1, 4} serving workers.
//
// Each client loops over a small set of hot statement templates with a
// few literal variants (so the plan cache should serve >90 % of requests)
// and immediately issues the next request when one completes. Reported
// per configuration: throughput, latency percentiles from the serving
// histogram, shed/error counts and the plan-cache hit rate — as JSON in
// the same schema family as bench_tpch_execution (stdout, or a file when
// a path is passed as argv[1]).
//
// The engine executes each statement serially (sql.num_threads = 1), so
// any scaling comes from the serving worker pool; on a single-core host
// the 4-worker column measures admission overhead, not parallel speedup.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "serve/server.h"

namespace {

constexpr size_t kUserRows = 2000;
constexpr int kRequestsPerClient = 2000;

/// users table + churn GBDT, the demo shape shared with
/// examples/flock_server and the serving tests.
bool BuildDatabase(flock::flock::FlockEngine* engine) {
  if (!engine
           ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                     "income DOUBLE, tenure DOUBLE, clicks DOUBLE, "
                     "plan VARCHAR)")
           .ok()) {
    return false;
  }
  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(kUserRows, 5);
  std::vector<double> labels(kUserRows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < kUserRows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks;
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!engine->Execute(insert).ok()) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 10;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  return engine
      ->DeployModel("churn", std::move(pipeline), "bench",
                    "bench_serving_throughput")
      .ok();
}

/// Hot templates x a few literal variants each: repeated enough for the
/// plan cache, varied enough to exercise more than one entry. The mix is
/// scoring-heavy (half the statements call PREDICT).
std::vector<std::string> BuildTemplates() {
  const std::string predict =
      "PREDICT(churn, age, income, tenure, clicks, plan)";
  std::vector<std::string> templates;
  for (int t : {200, 400, 600, 800}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE id < " +
                        std::to_string(t));
  }
  for (const char* threshold : {"0.3", "0.5", "0.7", "0.9"}) {
    templates.push_back("SELECT COUNT(*) FROM users WHERE " + predict +
                        " > " + threshold);
  }
  for (int id : {17, 171, 1071}) {
    templates.push_back("SELECT id, " + predict + " FROM users WHERE id = " +
                        std::to_string(id));
  }
  for (const char* plan : {"basic", "pro"}) {
    templates.push_back(std::string("SELECT AVG(") + predict +
                        ") FROM users WHERE plan = '" + plan + "'");
  }
  return templates;
}

/// A second, much heavier churn model for the micro-batching section:
/// a large synthetic forest (deterministic random splits over the
/// transformed feature space — built in milliseconds where training one
/// this size would take minutes; the scores are arbitrary but exactly
/// reproducible, which is all the drift check needs). With thousands of
/// trees the per-request cost is scoring-dominated, which is the regime
/// cross-request coalescing is built for: shared tree-major kernel
/// invocations amortize tree-node memory traffic across the batch.
bool DeployDeepModel(flock::flock::FlockEngine* engine) {
  flock::Random rng(71);
  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  // Identity-ish featurizers: impute 0, center on rough column means.
  pipeline.SetImputer({45.0, 90.0, 5.0, 50.0, 1.0});
  pipeline.SetScaler({45.0, 90.0, 5.0, 50.0, 0.0},
                     {15.0, 35.0, 3.0, 30.0, 1.0});

  const size_t kTrees = 3000;
  const int kDepth = 6;
  const size_t kFeatureWidth = 7;  // 4 scaled numerics + 3 one-hot
  flock::ml::TreeEnsembleModel model;
  model.base = 0.0;
  model.average = false;
  model.logistic = true;
  model.trees.reserve(kTrees);
  for (size_t t = 0; t < kTrees; ++t) {
    flock::ml::Tree tree;
    const size_t internal = (1u << kDepth) - 1;  // complete binary tree
    const size_t total = (1u << (kDepth + 1)) - 1;
    tree.nodes.resize(total);
    for (size_t n = 0; n < total; ++n) {
      flock::ml::TreeNode& node = tree.nodes[n];
      if (n < internal) {
        node.feature = static_cast<int32_t>(rng.Uniform(kFeatureWidth));
        node.threshold = rng.NextGaussian() * 0.8;
        node.left = static_cast<int32_t>(2 * n + 1);
        node.right = static_cast<int32_t>(2 * n + 2);
      } else {
        node.feature = -1;
        node.value = (rng.NextDouble() - 0.5) * 0.01;
      }
    }
    model.trees.push_back(std::move(tree));
  }
  pipeline.SetTreeModel(std::move(model));
  return engine
      ->DeployModel("churn_deep", std::move(pipeline), "bench",
                    "bench_serving_throughput")
      .ok();
}

/// Single-row PREDICT statements against the deep model, via a tiny probe
/// table so the scan contributes almost nothing — each statement lands in
/// the coalescer's single-row path with scoring as the dominant cost.
constexpr size_t kProbeRows = 8;

bool BuildProbeTable(flock::flock::FlockEngine* engine) {
  if (!engine
           ->Execute("CREATE TABLE probe (id INT, age DOUBLE, "
                     "income DOUBLE, tenure DOUBLE, clicks DOUBLE, "
                     "plan VARCHAR)")
           .ok()) {
    return false;
  }
  flock::Random rng(29);
  const char* plans[] = {"basic", "plus", "pro"};
  std::string insert = "INSERT INTO probe VALUES ";
  for (size_t i = 0; i < kProbeRows; ++i) {
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, 20 + rng.NextDouble() * 50,
                  30 + rng.NextDouble() * 120, rng.NextDouble() * 10,
                  rng.NextDouble() * 100, plans[rng.Uniform(3)]);
    insert += row;
  }
  return engine->Execute(insert).ok();
}

std::vector<std::string> BuildPointPredictTemplates() {
  std::vector<std::string> templates;
  for (size_t id = 0; id < kProbeRows; ++id) {
    templates.push_back(
        "SELECT id, PREDICT(churn_deep, age, income, tenure, clicks, plan)"
        " FROM probe WHERE id = " +
        std::to_string(id));
  }
  return templates;
}

/// Exact textual canonicalization (%.17g doubles), used to prove the
/// coalesced run returns bit-identical answers.
std::string Canon(const flock::storage::RecordBatch& batch) {
  std::ostringstream out;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      flock::storage::Value v = batch.column(c)->GetValue(r);
      if (!v.is_null() && v.type() == flock::storage::DataType::kDouble) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    out << "\n";
  }
  return out.str();
}

struct ConfigResult {
  size_t clients = 0;
  size_t workers = 0;
  bool traced = false;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double cache_hit_rate = 0.0;
};

ConfigResult RunConfig(size_t clients, size_t workers,
                       bool traced = false,
                       double default_deadline_ms = 0.0) {
  // A fresh engine per configuration so plan-cache and latency stats are
  // not polluted by the previous run.
  flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::flock::FlockEngine engine(engine_options);
  if (!BuildDatabase(&engine)) {
    std::fprintf(stderr, "database setup failed\n");
    std::exit(1);
  }
  flock::serve::ServerOptions options;
  options.admission.num_workers = workers;
  // Closed-loop clients block on their own request, so the queue never
  // needs more than one waiting slot per client; no shedding expected.
  options.admission.max_queue_depth = clients * 2;
  // > 0 arms a deadline token on every request, so each morsel / row /
  // kernel-block boundary pays the real cooperative-cancellation poll.
  options.default_deadline_ms = default_deadline_ms;
  flock::serve::PredictionServer server(&engine, options);

  const std::vector<std::string> templates = BuildTemplates();
  std::atomic<uint64_t> errors{0};
  flock::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      flock::serve::LoopbackClient client(&server);
      if (!client.status().ok()) {
        errors.fetch_add(kRequestsPerClient);
        return;
      }
      if (traced) {
        auto session = server.sessions()->Get(client.session_id());
        if (session.ok()) (*session)->set_trace(true);
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t q = (i + c * 3) % templates.size();
        auto result = client.Execute(templates[q]);
        if (!result.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = wall.ElapsedMillis();

  flock::serve::ServerMetricsSnapshot snapshot = server.Snapshot();
  ConfigResult result;
  result.clients = clients;
  result.workers = workers;
  result.traced = traced;
  result.requests = clients * kRequestsPerClient;
  result.errors = errors.load();
  result.shed = snapshot.requests_shed;
  result.wall_ms = wall_ms;
  result.qps = result.requests / (wall_ms / 1000.0);
  result.p50_ms = snapshot.p50_ms;
  result.p95_ms = snapshot.p95_ms;
  result.p99_ms = snapshot.p99_ms;
  result.mean_ms = snapshot.mean_ms;
  result.cache_hit_rate = snapshot.plan_cache_hit_rate;
  return result;
}

struct MicroBatchResult {
  ConfigResult base;
  bool coalesced = false;
  uint64_t mismatches = 0;      // responses differing from serial truth
  uint64_t rows_coalesced = 0;  // rows that shared a kernel invocation
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  double avg_wait_ms = 0.0;
};

/// The micro-batching comparison: 8 closed-loop clients issuing
/// single-row PREDICTs against the deep model, with coalescing off vs on
/// (max_batch 8, 1 ms window, production-default solo bypass — under
/// 8-client load scoring calls always overlap, so batches form from
/// backlog rather than from a forced wait). Every response is checked
/// against serially-computed truth.
MicroBatchResult RunMicroBatchConfig(bool coalesce) {
  flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::flock::FlockEngine engine(engine_options);
  if (!BuildDatabase(&engine) || !BuildProbeTable(&engine) ||
      !DeployDeepModel(&engine)) {
    std::fprintf(stderr, "database setup failed\n");
    std::exit(1);
  }

  const std::vector<std::string> templates = BuildPointPredictTemplates();
  std::vector<std::string> expected;
  for (const std::string& sql : templates) {
    auto serial = engine.Execute(sql);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial truth failed: %s\n",
                   serial.status().ToString().c_str());
      std::exit(1);
    }
    expected.push_back(Canon(serial->batch));
  }

  const size_t clients = 8;
  flock::serve::ServerOptions options;
  options.admission.num_workers = 8;
  options.admission.max_queue_depth = clients * 2;
  options.microbatch.enabled = coalesce;
  options.microbatch.max_batch = 8;
  options.microbatch.max_wait_ms = 1.0;
  options.microbatch.bypass_solo = true;
  flock::serve::PredictionServer server(&engine, options);

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  // Latency is measured client-side (request issue to response) so the
  // off/on comparison sees the same boundary: the server histogram times
  // worker execution only, which would count the coalescer's in-worker
  // wait but not the admission-queue wait it replaces.
  std::vector<std::vector<double>> latencies(clients);
  flock::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      flock::serve::LoopbackClient client(&server);
      if (!client.status().ok()) {
        errors.fetch_add(kRequestsPerClient);
        return;
      }
      latencies[c].reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t q = (i + c * 3) % templates.size();
        flock::Stopwatch request;
        auto result = client.Execute(templates[q]);
        latencies[c].push_back(request.ElapsedMillis());
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (Canon(result->batch) != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double wall_ms = wall.ElapsedMillis();

  std::vector<double> all;
  all.reserve(clients * kRequestsPerClient);
  double sum = 0.0;
  for (const std::vector<double>& per_client : latencies) {
    for (double ms : per_client) {
      all.push_back(ms);
      sum += ms;
    }
  }
  std::sort(all.begin(), all.end());
  auto percentile = [&all](double p) {
    if (all.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (all.size() - 1));
    return all[idx];
  };

  flock::serve::ServerMetricsSnapshot snapshot = server.Snapshot();
  MicroBatchResult result;
  result.coalesced = coalesce;
  result.base.clients = clients;
  result.base.workers = options.admission.num_workers;
  result.base.requests = clients * kRequestsPerClient;
  result.base.errors = errors.load();
  result.base.shed = snapshot.requests_shed;
  result.base.wall_ms = wall_ms;
  result.base.qps = result.base.requests / (wall_ms / 1000.0);
  result.base.p50_ms = percentile(0.50);
  result.base.p95_ms = percentile(0.95);
  result.base.p99_ms = percentile(0.99);
  result.base.mean_ms = all.empty() ? 0.0 : sum / all.size();
  result.base.cache_hit_rate = snapshot.plan_cache_hit_rate;
  result.mismatches = mismatches.load();
  if (flock::serve::MicroBatcher* batcher = server.microbatcher()) {
    result.rows_coalesced = batcher->rows_coalesced();
    result.batches = batcher->batches_executed();
    const flock::obs::HistogramSnapshot sizes =
        batcher->batch_sizes().Snapshot();
    result.mean_batch_size = sizes.mean_ms;  // batch-size histogram: the
                                             // "ms" fields carry sizes
    result.avg_wait_ms = batcher->avg_wait_ms();
  }
  return result;
}

void EmitJson(std::FILE* out, const std::vector<ConfigResult>& results,
              const ConfigResult& trace_off, const ConfigResult& trace_on,
              const ConfigResult& deadline_off,
              const ConfigResult& deadline_on,
              const MicroBatchResult& mb_off,
              const MicroBatchResult& mb_on) {
  std::fprintf(out, "{\n  \"benchmark\": \"serving_throughput\",\n");
  std::fprintf(out, "  \"requests_per_client\": %d,\n", kRequestsPerClient);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(out,
                 "    {\"clients\": %zu, \"workers\": %zu, "
                 "\"requests\": %llu, \"errors\": %llu, \"shed\": %llu,\n"
                 "     \"wall_ms\": %.1f, \"qps\": %.0f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 r.clients, r.workers,
                 static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.errors),
                 static_cast<unsigned long long>(r.shed), r.wall_ms, r.qps,
                 r.p50_ms, r.p95_ms, r.p99_ms, r.cache_hit_rate,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Tracing overhead: the same config run with span recording off vs on
  // (every request records a full span tree when on). Negative overhead
  // = measurement noise.
  const double overhead_pct =
      trace_off.qps > 0.0
          ? 100.0 * (trace_off.qps - trace_on.qps) / trace_off.qps
          : 0.0;
  std::fprintf(out,
               "  \"tracing_overhead\": {\"clients\": %zu, "
               "\"workers\": %zu,\n"
               "    \"qps_tracing_off\": %.0f, \"qps_tracing_on\": %.0f, "
               "\"p50_ms_tracing_off\": %.3f, \"p50_ms_tracing_on\": %.3f, "
               "\"overhead_pct\": %.2f},\n",
               trace_off.clients, trace_off.workers, trace_off.qps,
               trace_on.qps, trace_off.p50_ms, trace_on.p50_ms,
               overhead_pct);
  // Deadline-token polling overhead: no deadline (null tokens, one
  // pointer test per poll site) vs a 10 s deadline that never fires
  // (every morsel / row / kernel-block boundary reads the token's
  // atomic + steady clock). Single-client/single-worker, best of three
  // alternating runs per column. The acceptance bar is < 1 %; negative
  // = measurement noise.
  const double deadline_overhead_pct =
      deadline_off.qps > 0.0
          ? 100.0 * (deadline_off.qps - deadline_on.qps) / deadline_off.qps
          : 0.0;
  std::fprintf(out,
               "  \"deadline_overhead\": {\"clients\": %zu, "
               "\"workers\": %zu, \"deadline_ms\": 10000,\n"
               "    \"qps_deadline_off\": %.0f, \"qps_deadline_on\": %.0f, "
               "\"p50_ms_deadline_off\": %.3f, "
               "\"p50_ms_deadline_on\": %.3f, "
               "\"overhead_pct\": %.2f},\n",
               deadline_off.clients, deadline_off.workers, deadline_off.qps,
               deadline_on.qps, deadline_off.p50_ms, deadline_on.p50_ms,
               deadline_overhead_pct);
  // Cross-request micro-batching: same point-PREDICT load against the
  // deep model with coalescing off vs on. mismatches must be 0 in both
  // columns (coalescing may only change latency, never answers).
  const double qps_gain_pct =
      mb_off.base.qps > 0.0
          ? 100.0 * (mb_on.base.qps - mb_off.base.qps) / mb_off.base.qps
          : 0.0;
  const double p99_gain_pct =
      mb_off.base.p99_ms > 0.0
          ? 100.0 * (mb_off.base.p99_ms - mb_on.base.p99_ms) /
                mb_off.base.p99_ms
          : 0.0;
  const double mean_gain_pct =
      mb_off.base.mean_ms > 0.0
          ? 100.0 * (mb_off.base.mean_ms - mb_on.base.mean_ms) /
                mb_off.base.mean_ms
          : 0.0;
  std::fprintf(
      out,
      "  \"microbatch\": {\"clients\": %zu, \"workers\": %zu, "
      "\"model\": \"churn_deep\",\n"
      "    \"qps_coalesce_off\": %.0f, \"qps_coalesce_on\": %.0f, "
      "\"qps_improvement_pct\": %.2f,\n"
      "    \"p99_ms_coalesce_off\": %.3f, \"p99_ms_coalesce_on\": %.3f, "
      "\"p99_improvement_pct\": %.2f,\n"
      "    \"mean_ms_coalesce_off\": %.3f, \"mean_ms_coalesce_on\": %.3f, "
      "\"mean_improvement_pct\": %.2f,\n"
      "    \"p50_ms_coalesce_off\": %.3f, \"p50_ms_coalesce_on\": %.3f,\n"
      "    \"mismatches_off\": %llu, \"mismatches_on\": %llu, "
      "\"errors_off\": %llu, \"errors_on\": %llu,\n"
      "    \"rows_coalesced\": %llu, \"batches\": %llu, "
      "\"mean_batch_size\": %.2f, \"avg_wait_ms\": %.3f}\n",
      mb_on.base.clients, mb_on.base.workers, mb_off.base.qps,
      mb_on.base.qps, qps_gain_pct, mb_off.base.p99_ms, mb_on.base.p99_ms,
      p99_gain_pct, mb_off.base.mean_ms, mb_on.base.mean_ms,
      mean_gain_pct, mb_off.base.p50_ms, mb_on.base.p50_ms,
      static_cast<unsigned long long>(mb_off.mismatches),
      static_cast<unsigned long long>(mb_on.mismatches),
      static_cast<unsigned long long>(mb_off.base.errors),
      static_cast<unsigned long long>(mb_on.base.errors),
      static_cast<unsigned long long>(mb_on.rows_coalesced),
      static_cast<unsigned long long>(mb_on.batches),
      mb_on.mean_batch_size, mb_on.avg_wait_ms);
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("serving throughput benchmark: %zu users, "
              "%d requests/client, mixed read/PREDICT templates\n\n",
              kUserRows, kRequestsPerClient);
  std::printf("%8s %8s %10s %10s %9s %9s %9s %6s %5s %9s\n", "clients",
              "workers", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
              "hit_rate", "shed", "err", "wall(ms)");

  std::vector<ConfigResult> results;
  for (size_t workers : {1, 4}) {
    for (size_t clients : {1, 4, 8}) {
      ConfigResult r = RunConfig(clients, workers);
      std::printf("%8zu %8zu %10.0f %10.3f %9.3f %9.3f %8.1f%% %6llu "
                  "%5llu %9.0f\n",
                  r.clients, r.workers, r.qps, r.p50_ms, r.p95_ms,
                  r.p99_ms, 100.0 * r.cache_hit_rate,
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.errors), r.wall_ms);
      results.push_back(r);
    }
  }

  // Tracing overhead at the saturated config: same load, spans recorded
  // for every request vs none. The acceptance bar is tracing-on staying
  // within a few percent of tracing-off.
  ConfigResult trace_off = RunConfig(4, 4, false);
  ConfigResult trace_on = RunConfig(4, 4, true);
  std::printf("\ntracing off: %8.0f qps   tracing on: %8.0f qps   "
              "overhead: %.2f%%\n",
              trace_off.qps, trace_on.qps,
              trace_off.qps > 0.0
                  ? 100.0 * (trace_off.qps - trace_on.qps) / trace_off.qps
                  : 0.0);

  // Deadline-token polling overhead: no deadline (null token, one
  // pointer test per poll site) vs a 10 s default deadline that never
  // fires (every morsel / row / kernel-block boundary reads the token's
  // atomic + steady clock). Measured single-client/single-worker — the
  // multi-threaded configs' scheduler jitter (several percent run to
  // run) swamps the effect being measured, and per-request polling cost
  // is a serial property anyway. Best of three alternating runs per
  // column; the bar is < 1 %.
  ConfigResult deadline_off = RunConfig(1, 1, false, 0.0);
  ConfigResult deadline_on = RunConfig(1, 1, false, 10000.0);
  for (int rep = 1; rep < 3; ++rep) {
    ConfigResult off = RunConfig(1, 1, false, 0.0);
    if (off.qps > deadline_off.qps) deadline_off = off;
    ConfigResult on = RunConfig(1, 1, false, 10000.0);
    if (on.qps > deadline_on.qps) deadline_on = on;
  }
  std::printf("\ndeadline off: %8.0f qps   deadline 10s: %8.0f qps   "
              "overhead: %.2f%%\n",
              deadline_off.qps, deadline_on.qps,
              deadline_off.qps > 0.0
                  ? 100.0 * (deadline_off.qps - deadline_on.qps) /
                        deadline_off.qps
                  : 0.0);

  // Cross-request micro-batching at 8 clients on the scoring-heavy
  // point-PREDICT workload (deep model), coalescing off vs on.
  std::printf("\nmicro-batching (8 clients, churn_deep point PREDICTs):\n");
  MicroBatchResult mb_off = RunMicroBatchConfig(false);
  MicroBatchResult mb_on = RunMicroBatchConfig(true);
  for (const MicroBatchResult* mb : {&mb_off, &mb_on}) {
    std::printf("  coalesce %-3s %8.0f qps   mean %7.3f ms   p99 %7.3f ms"
                "   mismatches %llu   coalesced rows %llu"
                "   mean batch %.2f\n",
                mb->coalesced ? "on" : "off", mb->base.qps,
                mb->base.mean_ms, mb->base.p99_ms,
                static_cast<unsigned long long>(mb->mismatches),
                static_cast<unsigned long long>(mb->rows_coalesced),
                mb->mean_batch_size);
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::printf("\n");
  EmitJson(out, results, trace_off, trace_on, deadline_off, deadline_on,
           mb_off, mb_on);
  if (out != stdout) {
    std::fclose(out);
    std::printf("results written to %s\n", argv[1]);
  }
  return 0;
}
